#!/usr/bin/env python3
"""Run the litmus gallery under all four schedulers.

Prints, for each litmus program, how often each algorithm produces the
outcome of interest over N runs.  Expected picture:

* SB / MP2 / MP(relaxed): weak outcomes — found by the weak-memory
  schedulers, never by the naive SC random walk;
* MP1 / MP(rel-acq) / LB / CoRR: protected or forbidden outcomes — never
  produced by anyone (the memory model forbids them).
"""

from repro import (
    C11TesterScheduler,
    NaiveRandomScheduler,
    PCTScheduler,
    PCTWMScheduler,
    run_once,
)
from repro.core.depth import estimate_parameters
from repro.litmus import ALL_LITMUS
from repro.memory.events import ACQ, REL
from repro.litmus import message_passing

TRIALS = 200


def rate(factory, scheduler_factory) -> float:
    hits = sum(
        run_once(factory(), scheduler_factory(seed),
                 keep_graph=False).bug_found
        for seed in range(TRIALS)
    )
    return 100.0 * hits / TRIALS


def main() -> None:
    cases = dict(ALL_LITMUS)
    cases["MP(rel-acq)"] = lambda: message_passing(
        flag_store_order=REL, flag_load_order=ACQ
    )
    header = (f"{'litmus':12s} {'naive':>8s} {'c11tester':>10s} "
              f"{'pct':>8s} {'pctwm':>8s}")
    print(header)
    print("-" * len(header))
    for name, factory in cases.items():
        est = estimate_parameters(factory(), runs=3)
        depth = 2
        row = [
            rate(factory, lambda s: NaiveRandomScheduler(seed=s)),
            rate(factory, lambda s: C11TesterScheduler(seed=s)),
            rate(factory, lambda s: PCTScheduler(depth, est.k, seed=s)),
            rate(factory, lambda s: PCTWMScheduler(depth, est.k_com,
                                                   history=2, seed=s)),
        ]
        print(f"{name:12s} " + " ".join(f"{r:7.1f}%" for r in row))


if __name__ == "__main__":
    main()
