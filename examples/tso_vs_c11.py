#!/usr/bin/env python3
"""Cross-model comparison: the same litmus tests under C11 and x86-TSO.

Demonstrates the paper's memory-model-agnostic claim (Section 5): the
testing recipe — bound the number of weakness choice points an execution
exercises — instantiates per model.  Under C11 the weaknesses are stale
reads (PCTWM's d communication relations); under TSO the only weakness is
the store buffer (our delayed-write scheduler's d delayed stores).

Expected output shape:

* SB is weak under both models; MP/MP2/IRIW/LB are weak only under C11
  relaxed atomics — TSO preserves W→W and R→R order and is multi-copy
  atomic;
* the bounded algorithms hit SB deterministically at full depth under
  both models (d=0 communications for C11 views; d=2 delayed stores for
  TSO).
"""

from repro import C11TesterScheduler, PCTWMScheduler, run_once
from repro.litmus import iriw, load_buffering, message_passing, mp2, \
    store_buffering
from repro.tso import TsoDelayedWriteScheduler, TsoNaiveScheduler, run_tso

TRIALS = 300

CASES = {
    "SB": store_buffering,
    "MP": message_passing,
    "MP2": mp2,
    "IRIW": iriw,
    "LB": load_buffering,
}


def c11_rate(factory, make):
    hits = sum(run_once(factory(), make(s), keep_graph=False).bug_found
               for s in range(TRIALS))
    return 100.0 * hits / TRIALS


def tso_rate(factory, make):
    hits = sum(run_tso(factory(), make(s), keep_graph=False).bug_found
               for s in range(TRIALS))
    return 100.0 * hits / TRIALS


def main() -> None:
    header = (f"{'litmus':6s} {'c11 random':>11s} {'c11 pctwm*':>11s} "
              f"{'tso random':>11s} {'tso delayed*':>13s}")
    print(header)
    print("-" * len(header))
    for name, factory in CASES.items():
        row = [
            c11_rate(factory, lambda s: C11TesterScheduler(seed=s)),
            c11_rate(factory, lambda s: PCTWMScheduler(2, 6, 2, seed=s)),
            tso_rate(factory, lambda s: TsoNaiveScheduler(seed=s)),
            tso_rate(factory,
                     lambda s: TsoDelayedWriteScheduler(2, 4, seed=s)),
        ]
        print(f"{name:6s} " + " ".join(f"{r:10.1f}%" for r in row))
    print("\n(*) bounded algorithms at representative depths; SB under "
          "'tso delayed' with\nd = k_writes = 2 is deterministic — the "
          "Section 5.4 guarantee instantiated for TSO.")


if __name__ == "__main__":
    main()
