#!/usr/bin/env python3
"""A miniature Figure 5: best hit rates of the three algorithms.

Runs C11Tester, PCT and PCTWM on one or more benchmarks (all nine by
default, which takes a few minutes) and prints the best observed hit rate
per algorithm, like the paper's Figure 5 bar chart.

Usage:  python compare_schedulers.py [benchmark ...] [--trials N]
"""

import argparse

from repro.harness import figure5, render_figure5
from repro.workloads import BENCHMARK_ORDER


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmarks", nargs="*", default=None,
                        help=f"subset of {BENCHMARK_ORDER}")
    parser.add_argument("--trials", type=int, default=150,
                        help="runs per configuration (paper: 1000)")
    args = parser.parse_args()

    names = args.benchmarks or None
    bars = figure5(trials=args.trials, benchmarks=names)
    print(render_figure5(bars))
    print("\nExpected shape (paper): PCTWM >= PCT >= C11Tester on most "
          "benchmarks;\nseqlock is the exception where the bounded "
          "algorithms trail random testing.")


if __name__ == "__main__":
    main()
