#!/usr/bin/env python3
"""Find a bug, save its trace as JSON, replay it deterministically.

Randomized testing is only as useful as the reproducibility of what it
finds.  ``repro.replay`` records every scheduler decision of a run; the
resulting trace replays the exact execution — same rf choices, same
interleaving, same assertion failure — and survives serialization, so a
bug report can ship the trace alongside the program.
"""

from repro import PCTWMScheduler
from repro.analysis import format_trace
from repro.replay import Trace, find_and_record, replay_run
from repro.workloads import BENCHMARKS


def main() -> None:
    info = BENCHMARKS["mpmcqueue"]
    print(f"[1] hunting a bug in {info.name} with PCTWM "
          f"(d={info.measured_depth + 1}, h=1)...")
    found = find_and_record(
        info.build,
        lambda seed: PCTWMScheduler(info.measured_depth + 1,
                                    info.paper_k_com, 1, seed=seed),
        max_attempts=500,
    )
    if found is None:
        print("    no bug in 500 attempts (unexpected); try more seeds")
        return
    seed, result, trace = found
    print(f"    found at seed {seed}: {result.bug_message}")
    print(f"    trace: {len(trace)} decisions")

    payload = trace.to_json()
    print(f"[2] serialized trace: {len(payload)} bytes of JSON")

    print("[3] replaying from JSON...")
    replayed = replay_run(info.build(), Trace.from_json(payload))
    assert replayed.bug_found == result.bug_found
    assert replayed.bug_message == result.bug_message
    print(f"    reproduced: {replayed.bug_message}")

    print("[4] the replayed execution:")
    for line in format_trace(replayed.graph).splitlines():
        print(f"      {line}")


if __name__ == "__main__":
    main()
