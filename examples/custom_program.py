#!/usr/bin/env python3
"""Writing and testing your own weak-memory program with the DSL.

Builds a small ticket-spinlock protecting a two-word record, first with a
*broken* relaxed unlock, then with the correct release/acquire orders, and
shows that PCTWM flags only the broken one.

The bug has depth 2: one communication to observe the lock handoff (the
``now_serving`` read) and one to observe a single field fresh while the
other stays stale in the local view — a torn record inside the lock.
"""

from repro import ACQ, REL, RLX, PCTWMScheduler, Program, require, run_once
from repro.core.depth import estimate_parameters
from repro.harness import pctwm_factory, run_campaign


def make_spinlock_program(broken: bool) -> Program:
    unlock_order = RLX if broken else REL
    wait_order = RLX if broken else ACQ
    p = Program(f"ticketlock({'broken' if broken else 'correct'})")
    next_ticket = p.atomic("next_ticket", 0)
    now_serving = p.atomic("now_serving", 0)
    field_a = p.atomic("field_a", 0)
    field_b = p.atomic("field_b", 0)

    def worker(wid: int):
        ticket = yield next_ticket.fetch_add(1, RLX)
        for _ in range(6):  # bounded wait for our turn
            serving = yield now_serving.load(wait_order)
            if serving == ticket:
                break
        else:
            return None
        # Critical section: keep the two fields equal.
        a = yield field_a.load(RLX)
        b = yield field_b.load(RLX)
        require(a == b, f"record torn inside the lock: a={a} b={b}")
        yield field_a.store(a + 1, RLX)
        yield field_b.store(b + 1, RLX)
        yield now_serving.store(ticket + 1, unlock_order)
        return ticket

    p.add_thread(worker, 0, name="w0")
    p.add_thread(worker, 1, name="w1")
    return p


def main() -> None:
    for broken in (True, False):
        def build(b=broken):
            return make_spinlock_program(b)

        est = estimate_parameters(build(), runs=5)
        campaign = run_campaign(build, pctwm_factory(2, est.k_com, 1),
                                trials=300)
        label = "broken (relaxed unlock)" if broken else "correct (rel/acq)"
        print(f"{label:28s} d=2 campaign: {campaign.hit_rate:5.1f}% "
              f"({est})")

    print("\nA buggy trace from the broken lock:")
    for seed in range(2000):
        result = run_once(make_spinlock_program(True),
                          PCTWMScheduler(2, 10, 1, seed=seed))
        if result.bug_found:
            print(f"  seed={seed}: {result.bug_message}")
            break


if __name__ == "__main__":
    main()
