#!/usr/bin/env python3
"""Table 4 in miniature: race detection and overhead on the app models.

Runs the Iris / Mabain / Silo models under C11Tester and PCTWM, reports
whether the seeded data races are detected (the paper: "both C11Tester and
PCTWM detect data races in all of these applications") and compares the
testing time, showing PCTWM's view-maintenance overhead.
"""

from repro.harness import render_table4, table4


def main() -> None:
    rows = table4(runs=10, scale=2)
    print(render_table4(rows))
    print(
        "\nExpected shape (paper): both algorithms detect races in every "
        "run;\nPCTWM is ~10-20% slower on the time/s metric (view "
        "maintenance);\nsingle vs multiple cores does not matter — the "
        "framework runs one thread at a time."
    )


if __name__ == "__main__":
    main()
