#!/usr/bin/env python3
"""Testing a concurrent data structure the way a user of this library would.

Workflow (mirrors the paper's methodology):

1. estimate the test parameters k and k_com with a few instrumented runs;
2. search for the empirical bug depth with increasing ``d``;
3. run a PCTWM campaign at that depth and inspect a buggy trace.

The subject is the Michael-Scott queue benchmark, whose seeded bug
publishes a node before writing its payload.
"""

import sys

from repro import PCTWMScheduler, run_once
from repro.analysis import audit_run, format_trace
from repro.core.depth import empirical_bug_depth, estimate_parameters
from repro.harness import pctwm_factory, run_campaign
from repro.workloads import BENCHMARKS


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "msqueue"
    info = BENCHMARKS[name]

    est = estimate_parameters(info.build(), runs=5)
    print(f"[1] parameter estimation for {name}: {est}")

    depth = empirical_bug_depth(info.build(), max_depth=4, trials=150,
                                k_com=est.k_com)
    print(f"[2] empirical bug depth: d = {depth} "
          f"(paper reports d = {info.paper_depth})")
    if depth is None:
        print("    no bug found up to d = 4; stopping")
        return

    campaign = run_campaign(
        info.build,
        pctwm_factory(depth, est.k_com, info.best_history),
        trials=200,
    )
    print(f"[3] campaign: {campaign}")

    # Find and display one buggy execution.
    for seed in range(1000):
        result = run_once(info.build(),
                          PCTWMScheduler(depth, est.k_com,
                                         info.best_history, seed=seed))
        if result.bug_found:
            report = audit_run(result)
            print(f"[4] buggy run (seed={seed}): {result.bug_message}")
            print(f"    graph consistent: {report.consistent}, "
                  f"com edges: {report.communication_edges}")
            print("    trace:")
            for line in format_trace(result.graph).splitlines():
                print(f"      {line}")
            break


if __name__ == "__main__":
    main()
