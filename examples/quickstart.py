#!/usr/bin/env python3
"""Quickstart: find a weak-memory bug that no interleaving can produce.

The store-buffering (SB) litmus test from Section 2.1 of the paper:

        X = Y = 0
    T1: X = 1; a = Y        T2: Y = 1; b = X
        assert(a == 1 or b == 1)

Under sequential consistency the assertion always holds.  Under C11 relaxed
atomics both threads may read 0.  PCTWM finds this with bug depth d = 0 —
the buggy outcome needs *zero* communication between the threads — on every
single run, while an SC-only random walk can never find it.
"""

from repro import NaiveRandomScheduler, PCTWMScheduler, run_once
from repro.analysis import format_trace
from repro.litmus import store_buffering


def main() -> None:
    print("SB under PCTWM with d=0 (no communication allowed):")
    result = run_once(store_buffering(), PCTWMScheduler(depth=0, k_com=4,
                                                        history=1, seed=1))
    print(f"  bug found: {result.bug_found} -> {result.bug_message}")
    print(f"  thread returns: {result.thread_results}")
    print("  execution trace:")
    for line in format_trace(result.graph).splitlines():
        print(f"    {line}")

    print("\nSB under naive random testing (interleavings only), 100 runs:")
    hits = sum(
        run_once(store_buffering(), NaiveRandomScheduler(seed=i)).bug_found
        for i in range(100)
    )
    print(f"  bug found in {hits}/100 runs "
          "(expected 0: the outcome is not producible by any interleaving)")


if __name__ == "__main__":
    main()
