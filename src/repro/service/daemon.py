"""The campaign-job daemon: a supervised fleet behind a local HTTP API.

``python -m repro serve`` runs one of these.  It owns three things:

* a durable :class:`~repro.service.queue.JobQueue` under ``--state-dir``
  (job records + per-job checkpoint journals),
* a single worker thread executing jobs FIFO through
  :func:`repro.service.jobs.run_job` — which is the same supervised,
  watchdogged :func:`~repro.harness.parallel.run_campaign_parallel`
  engine the CLI uses, and
* a :class:`ThreadingHTTPServer` (see :mod:`repro.service.api`) for
  ``submit``/``status``/``result``/``cancel``/``drain`` plus a
  ``/healthz`` liveness endpoint that surfaces live watchdog stats.

Robustness contract:

* **Campaign pools never fork a threaded daemon.**  The daemon holds
  HTTP threads, so campaigns default to the ``forkserver`` start method
  (``spawn`` where unavailable) instead of inheriting the fork default.
* **Every job checkpoints.**  Trials stream into
  ``<state_dir>/journals/<job>.jsonl`` as shards complete; cancel,
  daemon shutdown, and daemon death all leave a resumable journal.
* **Restart resumes.**  On startup, jobs found ``running`` (daemon
  died) or ``interrupted`` (daemon stopped) re-queue ahead of newer
  work and resume from their journal — the finished result is
  bit-identical to an uninterrupted run because trial seeds derive from
  ``(base_seed, index)``.
* **Stop is graceful.**  SIGTERM/SIGINT ask the running campaign to
  stop at the next shard boundary (journaled, marked ``interrupted``),
  then the daemon exits.  ``POST /drain`` instead refuses new work,
  lets the current job *finish*, and exits leaving the rest queued.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
from typing import Dict, List, Optional

from ..harness.watchdog import WatchdogStats
from .api import make_server
from .jobs import JobSpec, result_summary, run_job
from .queue import JobQueue, TokenBucket

__all__ = ["DEFAULT_PORT", "CampaignDaemon"]

DEFAULT_PORT = 8642


def _default_start_method() -> str:
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return "forkserver" if "forkserver" in methods else "spawn"


class CampaignDaemon:
    """Queue + worker + HTTP front-end; one instance per state dir."""

    def __init__(self, state_dir: str,
                 host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 rate_per_s: float = 2.0, burst: int = 10,
                 start_method: Optional[str] = None,
                 watchdog_poll_s: Optional[float] = None,
                 quiet: bool = False):
        self.queue = JobQueue(state_dir)
        self.host = host
        self.port = port
        self.bucket = TokenBucket(rate_per_s, burst)
        self.stats = WatchdogStats()
        self.start_method = start_method or _default_start_method()
        self.watchdog_poll_s = watchdog_poll_s
        self.quiet = quiet
        self.started_at = time.time()
        self._lock = threading.Lock()
        self._current: Optional[str] = None
        self._draining = threading.Event()
        self._shutdown = threading.Event()
        self._wake = threading.Event()
        self._worker = threading.Thread(
            target=self._worker_loop, name="campaignd-worker", daemon=True)

    # -- observability -------------------------------------------------------

    def log(self, message: str) -> None:
        if not self.quiet:
            print(f"  [campaignd] {message}", file=sys.stderr, flush=True)

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def health(self) -> dict:
        with self._lock:
            current = self._current
        return {
            "status": "draining" if self.draining else "ok",
            "pid": os.getpid(),
            "uptime_s": round(time.time() - self.started_at, 3),
            "state_dir": self.queue.state_dir,
            "start_method": self.start_method,
            "current_job": current,
            "jobs": self.queue.counts(),
            "watchdog": self.stats.snapshot(),
        }

    # -- API surface (shared by HTTP handler and direct callers) -------------

    def submit(self, spec_obj: dict) -> dict:
        """Validate and enqueue a job spec; raises ``ValueError``."""
        if self.draining:
            raise ValueError("daemon is draining; not accepting new jobs")
        spec = JobSpec.from_dict(spec_obj)
        spec.validate()
        job = self.queue.submit(spec.to_dict())
        self.log(f"{job.id}: queued "
                 f"({spec.benchmark}/{spec.scheduler} x{spec.trials})")
        self._wake.set()
        return job.to_dict()

    def job_status(self, job_id: str) -> Optional[dict]:
        job = self.queue.get(job_id)
        return None if job is None else job.to_dict()

    def list_jobs(self) -> List[dict]:
        return [job.to_dict() for job in self.queue.list_jobs()]

    def cancel(self, job_id: str) -> Optional[dict]:
        job = self.queue.request_cancel(job_id)
        if job is not None:
            self.log(f"{job_id}: cancel requested (status {job.status})")
        return None if job is None else job.to_dict()

    def drain(self) -> None:
        """Refuse new work; finish the current job; then exit serve."""
        if not self._draining.is_set():
            self.log("drain requested: finishing the current job, "
                     "leaving the rest queued")
        self._draining.set()
        self._wake.set()

    def request_shutdown(self) -> None:
        """Stop now: interrupt the running job at its next shard."""
        self._shutdown.set()
        self._wake.set()

    # -- job execution -------------------------------------------------------

    def process_one(self) -> Optional[dict]:
        """Claim and run the next job synchronously (test/CLI helper)."""
        job = self.queue.claim_next()
        if job is None:
            return None
        self._execute(job)
        return job.to_dict()

    def _worker_loop(self) -> None:
        while not self._shutdown.is_set():
            job = self.queue.claim_next() \
                if not self._draining.is_set() else None
            if job is None:
                if self._draining.is_set():
                    return  # drained: serve loop notices and exits
                self._wake.wait(timeout=0.2)
                self._wake.clear()
                continue
            self._execute(job)

    def _execute(self, job) -> None:
        with self._lock:
            self._current = job.id
        try:
            spec = JobSpec.from_dict(job.spec)
            # Re-validate: the record may predate a registry change, or
            # have been written by an older daemon with laxer rules.
            spec.validate()
            checkpoint = self.queue.journal_path(job.id)
            resume = os.path.exists(checkpoint)
            self.log(f"{job.id}: running (attempt {job.attempts}"
                     + (", resuming journal" if resume else "") + ")")

            last_persist = [0.0]

            def on_progress(progress) -> None:
                job.progress_trials = progress.completed_trials
                now = time.monotonic()
                if now - last_persist[0] > 1.0:
                    last_persist[0] = now
                    self.queue.update(job)
                if job.cancel_event.is_set() or self._shutdown.is_set():
                    raise KeyboardInterrupt

            result = run_job(
                spec, checkpoint=checkpoint, resume=resume,
                progress=on_progress, watchdog_stats=self.stats,
                start_method=self.start_method)
        except ValueError as exc:
            job.status = "failed"
            job.error = str(exc)
            job.finished_at = time.time()
        except KeyboardInterrupt:
            # Interrupted before the first shard completed; the journal
            # still holds whatever was already durable.
            job.status = "cancelled" if job.cancel_event.is_set() \
                else "interrupted"
            job.finished_at = time.time() \
                if job.status == "cancelled" else None
        except Exception as exc:  # noqa: BLE001 - a job must never kill us
            job.status = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            job.finished_at = time.time()
        else:
            job.result = result_summary(result)
            job.progress_trials = result.completed
            if result.interrupted:
                job.status = "cancelled" if job.cancel_event.is_set() \
                    else "interrupted"
                job.finished_at = time.time() \
                    if job.status == "cancelled" else None
            else:
                job.status = "done"
                job.finished_at = time.time()
        finally:
            self.queue.update(job)
            with self._lock:
                self._current = None
            self.log(f"{job.id}: {job.status}"
                     + (f" ({job.error})" if job.error else ""))

    # -- serving -------------------------------------------------------------

    def serve_forever(self) -> None:
        """Bind, serve, and supervise until shutdown or drain."""
        server = make_server(self, self.host, self.port)
        self.port = server.server_address[1]
        self._write_endpoint_file()
        http_thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.2},
            name="campaignd-http", daemon=True)
        http_thread.start()
        self._worker.start()
        self.log(f"listening on http://{self.host}:{self.port} "
                 f"(state: {self.queue.state_dir}, "
                 f"start method: {self.start_method})")

        previous = self._install_signal_handlers()
        try:
            while not self._shutdown.wait(timeout=0.2):
                if not self._worker.is_alive():
                    break  # drain completed
        finally:
            self._restore_signal_handlers(previous)
            self._shutdown.set()
            self._wake.set()
            # The running campaign (if any) stops at its next shard
            # boundary via the progress hook; wait for it to journal.
            self._worker.join()
            server.shutdown()
            server.server_close()
            self._remove_endpoint_file()
            self.log("stopped")

    def _endpoint_path(self) -> str:
        return os.path.join(self.queue.state_dir, "endpoint.json")

    def _write_endpoint_file(self) -> None:
        """Advertise the bound address (useful with ``--port 0``)."""
        with open(self._endpoint_path(), "w") as fh:
            json.dump({"url": f"http://{self.host}:{self.port}",
                       "pid": os.getpid()}, fh)

    def _remove_endpoint_file(self) -> None:
        try:
            os.unlink(self._endpoint_path())
        except OSError:
            pass

    def _install_signal_handlers(self) -> Dict[int, object]:
        """SIGTERM/SIGINT -> graceful stop (main thread only)."""
        if threading.current_thread() is not threading.main_thread():
            return {}

        def handler(signum, frame):
            self.log(f"received {signal.Signals(signum).name}; stopping")
            self.request_shutdown()

        return {signum: signal.signal(signum, handler)
                for signum in (signal.SIGTERM, signal.SIGINT)}

    @staticmethod
    def _restore_signal_handlers(previous: Dict[int, object]) -> None:
        for signum, old in previous.items():
            signal.signal(signum, old)
