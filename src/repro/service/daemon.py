"""The campaign-job daemon: a multi-tenant fleet behind a local HTTP API.

``python -m repro serve`` runs one of these.  It owns four things:

* a durable :class:`~repro.service.queue.JobQueue` under ``--state-dir``
  (CRC-stamped job records + per-job checkpoint journals; torn records
  are quarantined on reload, never trusted),
* an admission layer (:mod:`repro.service.tenants`): with a
  ``--tenants`` file every request must carry a bearer token, and
  per-tenant rate limits, queued-job quotas, and trial budgets gate the
  submit path; every request is appended to the audit log,
* a **concurrent job scheduler** (:mod:`repro.service.scheduler`):
  up to ``--max-concurrent-jobs`` campaigns run at once, each holding a
  worker *grant* carved from the global ``--worker-budget`` with
  weighted-fair, deficit-carrying selection across tenants — and
  shard-boundary preemption when a tenant would otherwise starve, and
* a :class:`ThreadingHTTPServer` (see :mod:`repro.service.api`) for
  ``submit``/``status``/``result``/``cancel``/``drain`` plus a
  ``/healthz`` endpoint surfacing queue depth, per-tenant load, live
  worker counts against the budget, and watchdog stats.

Robustness contract:

* **Campaign pools never fork a threaded daemon.**  The daemon holds
  HTTP threads, so campaigns default to the ``forkserver`` start method
  (``spawn`` where unavailable) instead of inheriting the fork default.
* **Every job checkpoints.**  Trials stream into
  ``<state_dir>/journals/<job>.jsonl`` as shards complete; cancel,
  preemption, daemon shutdown, and daemon death all leave a resumable
  journal.
* **Restart resumes.**  On startup, jobs found ``running`` (daemon
  died) or ``interrupted`` (daemon stopped, or the job yielded) re-queue
  ahead of newer work and resume from their journal — the finished
  result is bit-identical to an uninterrupted run because trial seeds
  derive from ``(base_seed, index)``.
* **Preemption is invisible in results.**  A job asked to yield drains
  at its next shard boundary exactly like a graceful shutdown; only
  its ``preemptions`` counter betrays that it happened.
* **Stop is graceful.**  SIGTERM/SIGINT ask every running campaign to
  stop at the next shard boundary (journaled, marked ``interrupted``),
  then the daemon exits.  ``POST /drain`` instead refuses new work,
  lets the running jobs *finish*, and exits leaving the rest queued.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
from typing import Dict, List, Optional

from ..harness import faultrig
from ..harness.fsutil import durable_replace
from ..harness.watchdog import WatchdogStats
from .api import make_server
from .jobs import JobSpec, result_summary, run_job
from .queue import Job, JobQueue, TokenBucket
from .scheduler import JobScheduler, WorkerBudget
from .tenants import (ANONYMOUS_TENANT, AdmissionController, AdmissionDenied,
                      AuditLog, TenantRegistry)

__all__ = ["DEFAULT_PORT", "CampaignDaemon"]

DEFAULT_PORT = 8642


def _default_start_method() -> str:
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return "forkserver" if "forkserver" in methods else "spawn"


def _default_worker_budget() -> int:
    return max(4, os.cpu_count() or 1)


class _JobRun:
    """One running job's thread, worker grant, and private stats."""

    __slots__ = ("job", "grant", "stats", "thread")

    def __init__(self, job: Job, grant: int):
        self.job = job
        self.grant = grant
        self.stats = WatchdogStats()
        self.thread: Optional[threading.Thread] = None


class CampaignDaemon:
    """Queue + scheduler + HTTP front-end; one instance per state dir."""

    def __init__(self, state_dir: str,
                 host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 rate_per_s: float = 2.0, burst: int = 10,
                 start_method: Optional[str] = None,
                 watchdog_poll_s: Optional[float] = None,
                 quiet: bool = False,
                 tenants_file: Optional[str] = None,
                 audit_log_path: Optional[str] = None,
                 worker_budget: Optional[int] = None,
                 max_concurrent_jobs: int = 2):
        # Service-layer fault directives (torn-write/enospc/slow-client)
        # fire inside *this* process, so the rig must be loaded here, not
        # just in pool workers.
        faultrig.load_directives()
        self.queue = JobQueue(state_dir)
        self.host = host
        self.port = port
        self.bucket = TokenBucket(rate_per_s, burst)
        self.stats = WatchdogStats()
        self.start_method = start_method or _default_start_method()
        self.watchdog_poll_s = watchdog_poll_s
        self.quiet = quiet
        self.started_at = time.time()

        self.registry = (TenantRegistry.load(tenants_file)
                         if tenants_file else None)
        self.admission = AdmissionController(self.registry)
        self.audit = AuditLog(audit_log_path)
        if self.registry is not None:
            # Rebuild trial-budget spend from the durable job records so
            # bouncing the daemon cannot reset a tenant's quota.
            for tenant_id in self.registry.tenants:
                spent = self.queue.trials_submitted_for(tenant_id)
                if spent:
                    self.admission.charge_trials(tenant_id, spent)

        self.budget = WorkerBudget(worker_budget
                                   if worker_budget is not None
                                   else _default_worker_budget())
        self.scheduler = JobScheduler(
            self.budget,
            weight_of=(self.registry.weight if self.registry is not None
                       else (lambda _t: 1.0)),
            max_concurrent_jobs=max_concurrent_jobs,
            tenant_job_cap=self._tenant_job_cap)

        self._lock = threading.Lock()
        self._runs: Dict[str, _JobRun] = {}
        self._workers_live = 0
        self._workers_live_peak = 0
        self._draining = threading.Event()
        self._shutdown = threading.Event()
        self._wake = threading.Event()
        self._scheduler_thread = threading.Thread(
            target=self._scheduler_loop, name="campaignd-sched", daemon=True)

    def _tenant_job_cap(self, tenant_id: str) -> int:
        if self.registry is None:
            return 1 << 30
        config = self.registry.get(tenant_id)
        return config.max_concurrent_jobs if config is not None else 1 << 30

    # -- observability -------------------------------------------------------

    def log(self, message: str) -> None:
        if not self.quiet:
            print(f"  [campaignd] {message}", file=sys.stderr, flush=True)

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def _watchdog_snapshot(self) -> dict:
        """Fleet totals plus the live counters of running jobs."""
        snap = self.stats.snapshot()
        with self._lock:
            live = [run.stats for run in self._runs.values()]
        for stats in live:
            snap["scans"] += stats.scans
            snap["hang_kills"] += stats.hang_kills
            snap["rss_kills"] += stats.rss_kills
        return snap

    def health(self) -> dict:
        with self._lock:
            running = sorted(self._runs)
            live = self._workers_live
            peak = self._workers_live_peak
        counts = self.queue.counts()
        budget_total = self.budget.total
        granted = self.budget.used
        return {
            "status": "draining" if self.draining else "ok",
            "pid": os.getpid(),
            "uptime_s": round(time.time() - self.started_at, 3),
            "state_dir": self.queue.state_dir,
            "start_method": self.start_method,
            "auth": self.admission.enabled,
            "current_job": running[0] if running else None,
            "running_jobs": running,
            "jobs": counts,
            "queue_depth": counts["queued"] + counts["interrupted"],
            "tenants": self.queue.tenant_counts(),
            "quarantined_records": len(self.queue.quarantined),
            "workers": {
                "budget": budget_total,
                "granted": granted,
                "live": live,
                "live_peak": peak,
                "utilization_pct": round(100.0 * granted / budget_total, 1),
            },
            "watchdog": self._watchdog_snapshot(),
        }

    # -- API surface (shared by HTTP handler and direct callers) -------------

    def submit(self, spec_obj: dict, tenant: str = ANONYMOUS_TENANT,
               idempotency_key: Optional[str] = None) -> dict:
        """Validate, admit, and enqueue a job spec.

        Raises ``ValueError`` for an invalid spec and
        :class:`AdmissionDenied` for a quota/rate/conflict refusal.  With
        an ``idempotency_key`` the tenant has used before, the existing
        job is returned (marked ``"replayed": True``) when the spec
        matches, and a 409 :class:`AdmissionDenied` is raised when it
        does not — a retried submit can never double-enqueue.
        """
        if self.draining:
            raise ValueError("daemon is draining; not accepting new jobs")
        spec = JobSpec.from_dict(spec_obj)
        spec.validate()
        if idempotency_key:
            existing = self.queue.find_idempotent(tenant, idempotency_key)
            if existing is not None:
                if existing.spec == spec.to_dict():
                    self.log(f"{existing.id}: idempotent replay "
                             f"(key {idempotency_key!r})")
                    return dict(existing.to_dict(), replayed=True)
                raise AdmissionDenied(
                    409,
                    f"idempotency key {idempotency_key!r} was already "
                    f"used for a different spec (job {existing.id})")
        self.admission.check_submit(
            tenant, spec.trials, self.queue.queued_for(tenant))
        job = self.queue.submit(spec.to_dict(), tenant=tenant,
                                idempotency_key=idempotency_key)
        self.log(f"{job.id}: queued by {tenant} "
                 f"({spec.benchmark}/{spec.scheduler} x{spec.trials})")
        self._wake.set()
        return job.to_dict()

    def job_status(self, job_id: str) -> Optional[dict]:
        job = self.queue.get(job_id)
        return None if job is None else job.to_dict()

    def list_jobs(self, tenant: Optional[str] = None) -> List[dict]:
        return [job.to_dict() for job in self.queue.list_jobs(tenant)]

    def cancel(self, job_id: str) -> Optional[dict]:
        job = self.queue.request_cancel(job_id)
        if job is not None:
            self.log(f"{job_id}: cancel requested (status {job.status})")
        return None if job is None else job.to_dict()

    def drain(self) -> None:
        """Refuse new work; finish the running jobs; then exit serve."""
        if not self._draining.is_set():
            self.log("drain requested: finishing running jobs, "
                     "leaving the rest queued")
        self._draining.set()
        self._wake.set()

    def request_shutdown(self) -> None:
        """Stop now: interrupt running jobs at their next shard."""
        self._shutdown.set()
        self._wake.set()

    # -- job execution -------------------------------------------------------

    def _on_pool_change(self, delta: int) -> None:
        with self._lock:
            self._workers_live += delta
            self._workers_live_peak = max(self._workers_live_peak,
                                          self._workers_live)

    def process_one(self) -> Optional[dict]:
        """Claim and run the next job synchronously (test/CLI helper)."""
        job = self.queue.claim_next()
        if job is None:
            return None
        self._execute(job)
        return job.to_dict()

    def _scheduler_loop(self) -> None:
        """Start jobs against the budget until shutdown or drained."""
        while True:
            self._reap()
            if self._shutdown.is_set():
                return  # serve_forever joins the still-running jobs
            if self._draining.is_set():
                with self._lock:
                    drained = not self._runs
                if drained:
                    return  # serve loop notices and exits
            elif self._start_next():
                continue  # a start happened; try to pack more in
            self._wake.wait(timeout=0.1)
            self._wake.clear()

    def _reap(self) -> None:
        with self._lock:
            finished = [job_id for job_id, run in self._runs.items()
                        if run.thread is not None
                        and not run.thread.is_alive()]
            runs = [self._runs.pop(job_id) for job_id in finished]
        for run in runs:
            run.thread.join()

    def _start_next(self) -> bool:
        """Ask the policy for one start (or one preemption); True if a
        job was actually launched."""
        with self._lock:
            running_jobs = [run.job for run in self._runs.values()]
        runnable = self.queue.runnable()
        decision = self.scheduler.next_start(runnable, running_jobs)
        if decision is None:
            victim = self.scheduler.preemption_target(
                runnable, running_jobs)
            if victim is not None:
                victim.preemptions += 1
                victim.yield_event.set()
                self.log(f"{victim.id}: yielding {victim.granted_workers} "
                         f"worker(s) at the next shard boundary "
                         f"(fair-share preemption)")
            return False
        job, grant = decision
        if not self.budget.acquire(grant):
            return False  # lost a race with a concurrent release/acquire
        job.granted_workers = grant
        claimed = self.queue.claim(job.id)
        if claimed is None:
            self.budget.release(grant)
            return False
        run = _JobRun(claimed, grant)
        run.thread = threading.Thread(
            target=self._run_job_thread, args=(run,),
            name=f"campaignd-{claimed.id}", daemon=True)
        with self._lock:
            self._runs[claimed.id] = run
        run.thread.start()
        return True

    def _run_job_thread(self, run: _JobRun) -> None:
        try:
            self._execute(run.job, grant=run.grant, stats=run.stats)
        finally:
            self.budget.release(run.grant)
            self.scheduler.job_stopped(run.job)
            self._wake.set()

    def _execute(self, job: Job, grant: Optional[int] = None,
                 stats: Optional[WatchdogStats] = None) -> None:
        if stats is None:
            stats = WatchdogStats()
        try:
            spec = JobSpec.from_dict(job.spec)
            # Re-validate: the record may predate a registry change, or
            # have been written by an older daemon with laxer rules.
            spec.validate()
            if grant is None:
                grant = max(1, spec.jobs)
            checkpoint = self.queue.journal_path(job.id)
            resume = os.path.exists(checkpoint)
            self.log(f"{job.id}: running with {grant} worker(s) "
                     f"(attempt {job.attempts}"
                     + (", resuming journal" if resume else "") + ")")

            last_persist = [0.0]

            def on_progress(progress) -> None:
                job.progress_trials = progress.completed_trials
                now = time.monotonic()
                if now - last_persist[0] > 1.0:
                    last_persist[0] = now
                    self.queue.update(job)
                if (job.cancel_event.is_set() or self._shutdown.is_set()
                        or job.yield_event.is_set()):
                    raise KeyboardInterrupt

            result = run_job(
                spec, checkpoint=checkpoint, resume=resume,
                progress=on_progress, watchdog_stats=stats,
                start_method=self.start_method,
                jobs_override=grant,
                on_pool_change=self._on_pool_change)
        except ValueError as exc:
            job.status = "failed"
            job.error = str(exc)
            job.finished_at = time.time()
        except KeyboardInterrupt:
            # Interrupted before the first shard completed; the journal
            # still holds whatever was already durable.
            job.status = "cancelled" if job.cancel_event.is_set() \
                else "interrupted"
            job.finished_at = time.time() \
                if job.status == "cancelled" else None
        except Exception as exc:  # noqa: BLE001 - a job must never kill us
            job.status = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            job.finished_at = time.time()
        else:
            job.result = result_summary(result)
            job.progress_trials = result.completed
            if result.interrupted:
                job.status = "cancelled" if job.cancel_event.is_set() \
                    else "interrupted"
                job.finished_at = time.time() \
                    if job.status == "cancelled" else None
            else:
                job.status = "done"
                job.finished_at = time.time()
        finally:
            job.granted_workers = 0
            self.queue.update(job)
            # Fold this campaign's watchdog counters into fleet totals.
            self.stats.scans += stats.scans
            self.stats.hang_kills += stats.hang_kills
            self.stats.rss_kills += stats.rss_kills
            self.log(f"{job.id}: {job.status}"
                     + (f" ({job.error})" if job.error else ""))

    # -- serving -------------------------------------------------------------

    def serve_forever(self) -> None:
        """Bind, serve, and supervise until shutdown or drain."""
        server = make_server(self, self.host, self.port)
        self.port = server.server_address[1]
        self._write_endpoint_file()
        http_thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.2},
            name="campaignd-http", daemon=True)
        http_thread.start()
        self._scheduler_thread.start()
        self.log(f"listening on http://{self.host}:{self.port} "
                 f"(state: {self.queue.state_dir}, "
                 f"start method: {self.start_method}, "
                 f"worker budget: {self.budget.total}, "
                 f"max concurrent jobs: "
                 f"{self.scheduler.max_concurrent_jobs}, "
                 f"auth: {'on' if self.admission.enabled else 'off'})")

        previous = self._install_signal_handlers()
        try:
            while not self._shutdown.wait(timeout=0.2):
                if not self._scheduler_thread.is_alive():
                    break  # drain completed
        finally:
            self._restore_signal_handlers(previous)
            self._shutdown.set()
            self._wake.set()
            # Running campaigns (if any) stop at their next shard
            # boundary via the progress hook; wait for them to journal.
            self._scheduler_thread.join()
            with self._lock:
                runs = list(self._runs.values())
            for run in runs:
                if run.thread is not None:
                    run.thread.join()
            server.shutdown()
            server.server_close()
            self._remove_endpoint_file()
            self.audit.close()
            self.log("stopped")

    def _endpoint_path(self) -> str:
        return os.path.join(self.queue.state_dir, "endpoint.json")

    def _write_endpoint_file(self) -> None:
        """Advertise the bound address (useful with ``--port 0``).

        Written via atomic rename + directory fsync so a discovery
        client never reads a torn endpoint file, even across a crash.
        """
        path = self._endpoint_path()
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump({"url": f"http://{self.host}:{self.port}",
                       "pid": os.getpid()}, fh)
            fh.flush()
            os.fsync(fh.fileno())
        durable_replace(tmp, path)

    def _remove_endpoint_file(self) -> None:
        try:
            os.unlink(self._endpoint_path())
        except OSError:
            pass

    def _install_signal_handlers(self) -> Dict[int, object]:
        """SIGTERM/SIGINT -> graceful stop (main thread only)."""
        if threading.current_thread() is not threading.main_thread():
            return {}

        def handler(signum, frame):
            self.log(f"received {signal.Signals(signum).name}; stopping")
            self.request_shutdown()

        return {signum: signal.signal(signum, handler)
                for signum in (signal.SIGTERM, signal.SIGINT)}

    @staticmethod
    def _restore_signal_handlers(previous: Dict[int, object]) -> None:
        for signum, old in previous.items():
            signal.signal(signum, old)
