"""Thin stdlib HTTP client for the campaign daemon.

Backs ``python -m repro job ...``; also convenient from tests and
scripts.  The base URL resolves, in order: explicit argument, the
``REPRO_SERVICE_URL`` environment variable, the default local address.
The bearer token resolves the same way: explicit argument, then
``REPRO_SERVICE_TOKEN`` (only needed when the daemon runs with a
tenants file).

Retry semantics — conservative on purpose:

* Connection failures and ``5xx`` responses retry with capped
  exponential backoff (the daemon may be mid-restart, or a persist hit
  a transient I/O error).  Every submit carries an ``Idempotency-Key``
  — auto-generated when the caller does not supply one — so a retried
  submit whose first attempt actually landed returns the *existing* job
  instead of double-enqueueing.
* ``4xx`` responses never retry: the request itself is wrong (or
  denied), and repeating it verbatim cannot help.  ``429`` surfaces the
  server's ``Retry-After`` on the raised :class:`ServiceError` so the
  *caller* can decide to wait — honouring it automatically would turn
  the client into exactly the polite-looking retry storm rate limiting
  exists to prevent.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
import uuid
from typing import Optional

from .daemon import DEFAULT_PORT

__all__ = ["DEFAULT_URL", "ServiceClient", "ServiceError"]

DEFAULT_URL = f"http://127.0.0.1:{DEFAULT_PORT}"
URL_ENV = "REPRO_SERVICE_URL"
TOKEN_ENV = "REPRO_SERVICE_TOKEN"

#: Job statuses that will never progress without outside action.
TERMINAL_STATUSES = ("done", "failed", "cancelled")

#: Retry ladder defaults: ``RETRIES`` attempts after the first, backoff
#: starting at ``BACKOFF_S`` and doubling up to ``BACKOFF_CAP_S``.
RETRIES = 3
BACKOFF_S = 0.2
BACKOFF_CAP_S = 2.0


class ServiceError(Exception):
    """An HTTP-level or daemon-reported failure.

    ``retry_after_s`` carries the server's ``Retry-After`` header on
    throttled (429) responses, ``None`` otherwise.
    """

    def __init__(self, code: int, message: str,
                 retry_after_s: Optional[float] = None):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.retry_after_s = retry_after_s


class ServiceClient:
    def __init__(self, base_url: Optional[str] = None,
                 timeout_s: float = 10.0,
                 token: Optional[str] = None,
                 retries: int = RETRIES,
                 backoff_s: float = BACKOFF_S):
        self.base_url = (base_url or os.environ.get(URL_ENV)
                         or DEFAULT_URL).rstrip("/")
        self.timeout_s = timeout_s
        self.token = token if token is not None \
            else os.environ.get(TOKEN_ENV)
        self.retries = retries
        self.backoff_s = backoff_s

    def _request_once(self, method: str, path: str,
                      payload: Optional[dict] = None,
                      headers: Optional[dict] = None) -> dict:
        data = None
        all_headers = {"Accept": "application/json"}
        if self.token:
            all_headers["Authorization"] = f"Bearer {self.token}"
        if headers:
            all_headers.update(headers)
        if payload is not None:
            data = json.dumps(payload).encode()
            all_headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=all_headers,
            method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as resp:
                return json.loads(resp.read().decode() or "{}")
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode()).get(
                    "error", exc.reason)
            except (ValueError, AttributeError):
                message = str(exc.reason)
            retry_after = None
            raw = exc.headers.get("Retry-After") if exc.headers else None
            if raw is not None:
                try:
                    retry_after = float(raw)
                except ValueError:
                    pass
            raise ServiceError(exc.code, message,
                               retry_after_s=retry_after) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                0, f"cannot reach campaign daemon at {self.base_url}: "
                   f"{exc.reason}") from None

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None,
                 headers: Optional[dict] = None) -> dict:
        """One request with bounded retries on connection errors / 5xx.

        ``4xx`` raises immediately — retrying a request the server
        understood and refused cannot change the answer.
        """
        delay = self.backoff_s
        for attempt in range(self.retries + 1):
            try:
                return self._request_once(method, path, payload=payload,
                                          headers=headers)
            except ServiceError as exc:
                transient = exc.code == 0 or exc.code >= 500
                if not transient or attempt == self.retries:
                    raise
            time.sleep(min(delay, BACKOFF_CAP_S))
            delay *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    # -- endpoints -----------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(self, spec: dict,
               idempotency_key: Optional[str] = None) -> dict:
        """Submit a job spec; always carries an ``Idempotency-Key``.

        An auto-generated key makes the built-in retry loop safe: if the
        first attempt enqueued the job but its response was lost, the
        retry returns the existing job instead of a duplicate.
        """
        key = idempotency_key or f"auto-{uuid.uuid4().hex}"
        return self._request("POST", "/jobs", payload=spec,
                             headers={"Idempotency-Key": key})

    def list_jobs(self) -> list:
        return self._request("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def drain(self) -> dict:
        return self._request("POST", "/drain")

    def wait(self, job_id: str, timeout_s: Optional[float] = None,
             poll_s: float = 0.5) -> dict:
        """Poll until the job reaches a terminal status; returns it.

        ``interrupted`` is *not* terminal — a restarted daemon will
        resume it — but with no daemon running it would wait forever,
        so respect ``timeout_s``.
        """
        deadline = None if timeout_s is None \
            else time.monotonic() + timeout_s
        while True:
            job = self.status(job_id)
            if job["status"] in TERMINAL_STATUSES:
                return job
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    0, f"timed out waiting for {job_id} "
                       f"(status {job['status']})")
            time.sleep(poll_s)
