"""Thin stdlib HTTP client for the campaign daemon.

Backs ``python -m repro job ...``; also convenient from tests and
scripts.  The base URL resolves, in order: explicit argument, the
``REPRO_SERVICE_URL`` environment variable, the default local address.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from typing import Optional

from .daemon import DEFAULT_PORT

__all__ = ["DEFAULT_URL", "ServiceClient", "ServiceError"]

DEFAULT_URL = f"http://127.0.0.1:{DEFAULT_PORT}"
URL_ENV = "REPRO_SERVICE_URL"

#: Job statuses that will never progress without outside action.
TERMINAL_STATUSES = ("done", "failed", "cancelled")


class ServiceError(Exception):
    """An HTTP-level or daemon-reported failure."""

    def __init__(self, code: int, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class ServiceClient:
    def __init__(self, base_url: Optional[str] = None,
                 timeout_s: float = 10.0):
        self.base_url = (base_url or os.environ.get(URL_ENV)
                         or DEFAULT_URL).rstrip("/")
        self.timeout_s = timeout_s

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as resp:
                return json.loads(resp.read().decode() or "{}")
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode()).get(
                    "error", exc.reason)
            except (ValueError, AttributeError):
                message = str(exc.reason)
            raise ServiceError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                0, f"cannot reach campaign daemon at {self.base_url}: "
                   f"{exc.reason}") from None

    # -- endpoints -----------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(self, spec: dict) -> dict:
        return self._request("POST", "/jobs", payload=spec)

    def list_jobs(self) -> list:
        return self._request("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def drain(self) -> dict:
        return self._request("POST", "/drain")

    def wait(self, job_id: str, timeout_s: Optional[float] = None,
             poll_s: float = 0.5) -> dict:
        """Poll until the job reaches a terminal status; returns it.

        ``interrupted`` is *not* terminal — a restarted daemon will
        resume it — but with no daemon running it would wait forever,
        so respect ``timeout_s``.
        """
        deadline = None if timeout_s is None \
            else time.monotonic() + timeout_s
        while True:
            job = self.status(job_id)
            if job["status"] in TERMINAL_STATUSES:
                return job
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    0, f"timed out waiting for {job_id} "
                       f"(status {job['status']})")
            time.sleep(poll_s)
