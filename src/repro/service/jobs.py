"""Campaign job specs: validated, serializable units of service work.

A :class:`JobSpec` is everything needed to run one hit-rate campaign —
the same knobs ``python -m repro campaign`` exposes, as one
JSON-serializable record.  The CLI and the campaign daemon share this
module so a spec rejected interactively is rejected identically over
HTTP (same messages, same rules), and a spec accepted by either runs
through the exact same :func:`repro.harness.run_campaign_parallel`
engine with the same seed-deterministic results.

Split of responsibilities:

* :meth:`JobSpec.validate` — cheap structural/registry checks, safe to
  run in an HTTP handler thread at submit time.
* :func:`resolve_factories` — turns a valid spec into picklable
  ``(ProgramSpec, SchedulerSpec)`` factories, running the scheduler
  parameter estimation (``estimate_parameters``) the CLI has always
  done.  Estimation executes the benchmark a few times, so the daemon
  defers it to the worker thread, not the submit path.
* :func:`run_job` — executes the campaign for a spec, wiring in the
  service's checkpoint journal and watchdog stats.
* :func:`result_summary` — the JSON projection of a
  :class:`~repro.harness.campaign.CampaignResult` stored on the job
  record and returned by the results endpoint.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Callable, Optional

from ..harness.campaign import TRIAL_TIMEOUT_MIN_S, CampaignResult
from ..harness.parallel import CampaignProgress, run_campaign_parallel
from ..harness.watchdog import WatchdogStats

__all__ = [
    "JobSpec",
    "resolve_factories",
    "result_summary",
    "run_job",
]

_SANITIZE_CHOICES = ("off", "sampled", "all")
_MODEL_CHOICES = ("c11", "tso")
_RECORD_MODES = ("on_failure", "always")


@dataclass
class JobSpec:
    """One campaign request; every field round-trips through JSON."""

    benchmark: str
    scheduler: str = "pctwm"
    trials: int = 100
    seed: int = 0
    jobs: int = 1
    depth: Optional[int] = None
    history: Optional[int] = None
    max_steps: int = 20000
    trial_timeout_s: Optional[float] = None
    hang_timeout_s: Optional[float] = None
    memory_limit_mb: Optional[float] = None
    max_retries: int = 2
    sanitize: str = "off"
    model: str = "c11"
    record_mode: str = "on_failure"
    artifact_dir: Optional[str] = None

    @classmethod
    def from_dict(cls, obj: dict) -> "JobSpec":
        """Build a spec from untrusted JSON; unknown keys are rejected."""
        if not isinstance(obj, dict):
            raise ValueError("job spec must be a JSON object")
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = sorted(set(obj) - known)
        if unknown:
            raise ValueError(
                f"unknown job spec field(s): {', '.join(unknown)}")
        if "benchmark" not in obj:
            raise ValueError("job spec requires a 'benchmark'")
        return cls(**obj)

    def to_dict(self) -> dict:
        return asdict(self)

    def validate(self) -> None:
        """Raise ``ValueError`` on any invalid field.

        Messages match what ``python -m repro campaign`` has always
        printed for the registry checks, so CLI output stays stable now
        that both paths share this method.
        """
        from ..core.factory import SCHEDULER_REGISTRY
        from ..memory.model import resolve_model
        from ..workloads import BENCHMARKS

        if self.scheduler not in SCHEDULER_REGISTRY:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; known: "
                + ", ".join(sorted(SCHEDULER_REGISTRY)))
        if self.model not in _MODEL_CHOICES:
            raise ValueError(
                f"unknown model {self.model!r}; known: "
                + ", ".join(_MODEL_CHOICES))
        model = resolve_model(self.model)
        if not model.supports_scheduler(self.scheduler):
            raise ValueError(
                f"scheduler {self.scheduler!r} is not supported under the "
                f"{model.name} memory model; supported: "
                + ", ".join(model.scheduler_allowlist))
        if self.benchmark not in BENCHMARKS:
            raise ValueError(
                f"unknown benchmark {self.benchmark!r}; known: "
                + ", ".join(sorted(BENCHMARKS)))
        if not isinstance(self.trials, int) or self.trials < 1:
            raise ValueError("trials must be an integer >= 1")
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ValueError("seed must be an integer >= 0")
        if not isinstance(self.jobs, int) or self.jobs < 1:
            raise ValueError("jobs must be an integer >= 1")
        if not isinstance(self.max_steps, int) or self.max_steps < 1:
            raise ValueError("max_steps must be an integer >= 1")
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise ValueError("max_retries must be an integer >= 0")
        if self.trial_timeout_s is not None \
                and self.trial_timeout_s < TRIAL_TIMEOUT_MIN_S:
            raise ValueError(
                f"trial_timeout_s must be >= {TRIAL_TIMEOUT_MIN_S} "
                f"(one scheduler-step quantum)")
        if self.hang_timeout_s is not None and self.hang_timeout_s <= 0:
            raise ValueError("hang_timeout_s must be positive")
        if self.memory_limit_mb is not None and self.memory_limit_mb <= 0:
            raise ValueError("memory_limit_mb must be positive")
        if (self.hang_timeout_s is not None
                and self.trial_timeout_s is not None
                and self.hang_timeout_s <= self.trial_timeout_s):
            raise ValueError(
                "hang_timeout_s must exceed trial_timeout_s: the "
                "cooperative per-trial budget should fire before the "
                "preemptive one")
        if self.sanitize not in _SANITIZE_CHOICES:
            raise ValueError(
                f"unknown sanitize mode {self.sanitize!r}; known: "
                + ", ".join(_SANITIZE_CHOICES))
        if self.record_mode not in _RECORD_MODES:
            raise ValueError(
                f"unknown record mode {self.record_mode!r}; known: "
                + ", ".join(_RECORD_MODES))


def resolve_factories(spec: JobSpec):
    """Picklable ``(program, scheduler)`` factories for a valid spec.

    Runs the per-benchmark parameter estimation (``k``/``k_com``) the
    schedulers need — a few real program executions, so call this from
    the thread that will run the campaign, not from a request handler.
    """
    from ..core.depth import estimate_parameters
    from ..core.factory import SchedulerSpec
    from ..workloads import BENCHMARKS, ProgramSpec

    info = BENCHMARKS[spec.benchmark]
    program = ProgramSpec(info.name)
    depth = spec.depth if spec.depth is not None else info.measured_depth
    history = spec.history if spec.history is not None \
        else info.best_history
    params = {}
    if spec.scheduler in ("pctwm", "pctwm-fullbag", "pctwm-eager",
                          "pctwm-nodelay"):
        est = estimate_parameters(info.build(), runs=3, seed=spec.seed,
                                  model=spec.model)
        params = {"depth": depth, "k_com": est.k_com, "history": history}
    elif spec.scheduler == "pctwm-nohistory":
        est = estimate_parameters(info.build(), runs=3, seed=spec.seed,
                                  model=spec.model)
        params = {"depth": depth, "k_com": est.k_com}
    elif spec.scheduler in ("pct", "ppct"):
        est = estimate_parameters(info.build(), runs=3, seed=spec.seed,
                                  model=spec.model)
        params = {"depth": max(depth, 1), "k_events": est.k}
    return program, SchedulerSpec(spec.scheduler, params)


def run_job(spec: JobSpec,
            checkpoint: Optional[str] = None,
            resume: bool = False,
            progress: Optional[Callable[[CampaignProgress], None]] = None,
            watchdog_stats: Optional[WatchdogStats] = None,
            start_method: Optional[str] = None,
            jobs_override: Optional[int] = None,
            on_pool_change: Optional[Callable[[int], None]] = None,
            ) -> CampaignResult:
    """Execute one campaign job; the service's single entry point.

    ``start_method`` matters in the daemon: it holds live HTTP threads,
    and forking a threaded process is unsafe, so the daemon passes
    ``forkserver``/``spawn`` explicitly rather than inheriting the
    fork default.

    ``jobs_override`` is the scheduler's worker *grant*: the daemon may
    run this campaign with fewer workers than ``spec.jobs`` asked for
    when the global worker budget is shared across concurrent jobs.
    Results are unaffected — campaign aggregates are bit-identical for
    any worker count.  ``on_pool_change`` forwards pool-worker deltas
    (see :func:`run_campaign_parallel`) so the daemon can meter live
    workers against its budget.
    """
    program, scheduler = resolve_factories(spec)
    jobs = spec.jobs if jobs_override is None else jobs_override
    return run_campaign_parallel(
        program, scheduler,
        trials=spec.trials, base_seed=spec.seed,
        max_steps=spec.max_steps, jobs=jobs,
        progress=progress,
        trial_timeout_s=spec.trial_timeout_s,
        checkpoint=checkpoint, resume=resume,
        max_retries=spec.max_retries,
        start_method=start_method,
        sanitize=spec.sanitize,
        artifact_dir=spec.artifact_dir,
        record_mode=spec.record_mode,
        model=spec.model,
        hang_timeout_s=spec.hang_timeout_s,
        memory_limit_mb=spec.memory_limit_mb,
        watchdog_stats=watchdog_stats,
        on_pool_change=on_pool_change,
    )


def result_summary(result: CampaignResult) -> dict:
    """JSON projection of a campaign result for job records and HTTP.

    Deliberately the deterministic aggregates plus operational metrics —
    not the bounded per-trial samples, which are a post-mortem aid the
    journal already holds in full.
    """
    return {
        "program": result.program,
        "scheduler": result.scheduler,
        "trials": result.trials,
        "completed": result.completed,
        "hits": result.hits,
        "hit_rate_pct": round(result.hit_rate, 3),
        "inconclusive": result.inconclusive,
        "total_steps": result.total_steps,
        "total_events": result.total_events,
        "errors": result.errors,
        "timeouts": result.timeouts,
        "inconsistent": result.inconsistent,
        "interrupted": result.interrupted,
        "resumed_trials": result.resumed_trials,
        "elapsed_s": round(result.elapsed_s, 3),
        "jobs": result.jobs,
        "hang_preemptions": result.hang_preemptions,
        "rss_recycles": result.rss_recycles,
        "artifacts": list(result.artifacts),
    }
