"""Concurrent job scheduling: worker budget, fairness, and preemption.

PR 7's daemon ran one job at a time; the whole ``--jobs`` worker fleet
belonged to whichever job reached the front of the FIFO.  This module
gives the daemon a real scheduler:

* :class:`WorkerBudget` — the global cap on live pool workers
  (``--worker-budget``).  Every running job holds a *grant* carved out
  of the budget; grants are released when the job finishes, fails, is
  cancelled, or yields.  The budget is the invariant the chaos suite
  polls: live workers never exceed it, no matter how many jobs run.
* :class:`DeficitRoundRobin` — weighted-fair tenant selection.  Each
  selection round credits every tenant with pending work
  ``quantum * weight``; the tenant with the largest accumulated deficit
  wins and is charged the cost of the job it starts.  Deficits *carry*:
  a tenant that kept losing while its jobs were large eventually
  accumulates enough credit to win, so no tenant starves regardless of
  job-size mix.
* :class:`JobScheduler` — the pure decision policy.  Given the runnable
  and running job sets it answers two questions: *which job starts
  next, with how many workers* (:meth:`next_start`), and *which running
  job should yield* to unblock a starved tenant
  (:meth:`preemption_target`).  It owns no threads and touches no I/O,
  so every fairness property is unit-testable without a daemon.

Preemption is cooperative and cheap because of how campaigns already
work: the daemon sets the victim job's ``yield_event``, the campaign's
progress hook raises at the next *shard boundary*, the job journals and
re-queues as ``interrupted``, and its resume re-runs nothing (trial
seeds derive from ``(base_seed, index)``) — so a preempted-and-resumed
job folds to a bit-identical result.  That is what lets the fairness
guarantee be phrased as "a starved tenant's job starts within one shard
boundary" rather than "eventually".

Grants are *fair-capped* when more than one tenant has active work:
``grant = min(spec.jobs, budget available, max(1, budget * weight /
sum of active weights))``.  A lone tenant still gets the whole budget;
the moment a second tenant shows up, new grants shrink to fair shares
and — if the budget is fully held — the scheduler preempts exactly one
over-share job.  Preempting only when the waiting tenant has *zero*
running jobs, and never signalling the same job twice, prevents
preemption thrash (A yields for B, B saturates, A preempts B, ...).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .queue import Job

__all__ = ["WorkerBudget", "DeficitRoundRobin", "JobScheduler"]


class WorkerBudget:
    """Global cap on concurrently live pool workers across all jobs."""

    def __init__(self, total: int):
        if total < 1:
            raise ValueError("worker budget must be >= 1")
        self.total = total
        self._used = 0
        self._lock = threading.Lock()

    @property
    def used(self) -> int:
        with self._lock:
            return self._used

    @property
    def available(self) -> int:
        with self._lock:
            return self.total - self._used

    def acquire(self, workers: int) -> bool:
        """Reserve ``workers`` from the budget; False if it won't fit."""
        if workers < 1:
            raise ValueError("grants are at least one worker")
        with self._lock:
            if self._used + workers > self.total:
                return False
            self._used += workers
            return True

    def release(self, workers: int) -> None:
        with self._lock:
            self._used = max(0, self._used - workers)


class DeficitRoundRobin:
    """Weighted-fair tenant picker with carried deficits.

    ``weight_of`` maps a tenant id to its fair-share weight (tenants
    absent from the registry weigh 1.0).  Costs are charged in *worker
    grants*, so a tenant that just received a large grant has to wait
    for its deficit to refill before winning again.
    """

    def __init__(self, weight_of: Callable[[str], float],
                 quantum: float = 1.0):
        self._weight_of = weight_of
        self._quantum = quantum
        self._deficit: Dict[str, float] = {}

    def select(self, tenants: Sequence[str]) -> Optional[str]:
        """Credit every contender one quantum and return the richest.

        Deficits of tenants with no pending work are dropped — credit
        accrues only while a tenant is actually waiting, so an idle
        tenant cannot bank an unbounded claim on the future.
        """
        contenders = list(dict.fromkeys(tenants))
        if not contenders:
            return None
        for gone in set(self._deficit) - set(contenders):
            del self._deficit[gone]
        for tenant in contenders:
            self._deficit[tenant] = (
                self._deficit.get(tenant, 0.0)
                + self._quantum * self._weight_of(tenant))
        # Ties break by tenant id so selection is deterministic.
        return sorted(contenders,
                      key=lambda t: (-self._deficit[t], t))[0]

    def charge(self, tenant: str, cost: float) -> None:
        if tenant in self._deficit:
            self._deficit[tenant] -= cost


class JobScheduler:
    """Pure policy: which job starts next, and who yields for whom."""

    def __init__(self, budget: WorkerBudget,
                 weight_of: Callable[[str], float] = lambda _t: 1.0,
                 max_concurrent_jobs: int = 4,
                 tenant_job_cap: Callable[[str], int] = lambda _t: 1 << 30):
        if max_concurrent_jobs < 1:
            raise ValueError("max_concurrent_jobs must be >= 1")
        self.budget = budget
        self.weight_of = weight_of
        self.max_concurrent_jobs = max_concurrent_jobs
        self.tenant_job_cap = tenant_job_cap
        self._drr = DeficitRoundRobin(weight_of)
        #: Jobs already asked to yield — never signal the same job twice.
        self._yielding: set = set()

    # -- helpers -------------------------------------------------------------

    def _eligible(self, runnable: List[Job],
                  running: List[Job]) -> List[Job]:
        """Runnable jobs whose tenant is under its concurrency cap."""
        running_per_tenant: Dict[str, int] = {}
        for job in running:
            running_per_tenant[job.tenant] = (
                running_per_tenant.get(job.tenant, 0) + 1)
        return [job for job in runnable
                if running_per_tenant.get(job.tenant, 0)
                < self.tenant_job_cap(job.tenant)]

    def fair_cap(self, tenant: str, active_tenants: Sequence[str]) -> int:
        """The tenant's fair worker share of the whole budget.

        With a single active tenant there is nobody to be fair *to*, so
        the cap is the full budget; otherwise it is the weighted
        proportional share, floored at one worker.
        """
        distinct = set(active_tenants)
        distinct.add(tenant)
        if len(distinct) <= 1:
            return self.budget.total
        total_weight = sum(self.weight_of(t) for t in distinct)
        share = self.budget.total * self.weight_of(tenant) / total_weight
        return max(1, int(share))

    # -- decisions -----------------------------------------------------------

    def next_start(self, runnable: List[Job],
                   running: List[Job]) -> Optional[Tuple[Job, int]]:
        """The job to start next and its worker grant, or ``None``.

        ``None`` means *no start right now*: the job slots are full, no
        runnable job's tenant is under its cap, or the budget has no
        spare worker (in which case :meth:`preemption_target` decides
        whether someone should yield).
        """
        if len(running) >= self.max_concurrent_jobs:
            return None
        eligible = self._eligible(runnable, running)
        if not eligible:
            return None
        available = self.budget.available
        if available < 1:
            return None
        tenant = self._drr.select([job.tenant for job in eligible])
        job = next(j for j in eligible if j.tenant == tenant)
        active = [j.tenant for j in running] + [tenant]
        wanted = max(1, int(job.spec.get("jobs", 1) or 1))
        grant = min(wanted, available, self.fair_cap(tenant, active))
        self._drr.charge(tenant, float(grant))
        return job, grant

    def preemption_target(self, runnable: List[Job],
                          running: List[Job]) -> Optional[Job]:
        """The running job that should yield for a starved tenant.

        A preemption is warranted only when *all* of: a runnable job is
        waiting, its tenant has **zero** running jobs (tenants with any
        footprint wait their turn — this is the anti-thrash rule), the
        budget is exhausted, and some other tenant's job holds more than
        its fair share.  The victim is the over-share tenant's job with
        the largest grant; a job already signalled is never re-picked.
        """
        if self.budget.available > 0 or not running:
            return None
        eligible = self._eligible(runnable, running)
        running_tenants = {job.tenant for job in running}
        waiters = [job for job in eligible
                   if job.tenant not in running_tenants]
        if not waiters:
            return None
        waiter_tenant = waiters[0].tenant
        active = list(running_tenants) + [waiter_tenant]
        victims = [
            job for job in running
            if job.id not in self._yielding
            and job.granted_workers > self.fair_cap(job.tenant, active)
        ]
        if not victims:
            return None
        victim = max(victims, key=lambda j: (j.granted_workers, j.id))
        self._yielding.add(victim.id)
        return victim

    def job_stopped(self, job: Job) -> None:
        """Forget yield state when a job leaves ``running``."""
        self._yielding.discard(job.id)
