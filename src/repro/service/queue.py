"""Durable multi-tenant job queue and the submit-path token bucket.

The campaign daemon must survive its own death: every job is a JSON
file under ``<state_dir>/jobs/`` (written atomically via rename *and*
a parent-directory fsync, so the rename itself is crash-durable), and
each job's trials stream into a checkpoint journal under
``<state_dir>/journals/``.  Restarting the daemon reloads the job
files; a job that was ``running`` when the process died comes back as
``interrupted`` and is re-queued ahead of newer work, where the journal
``--resume`` path skips every already-completed trial — so a restarted
job folds to the same bit-identical result as an uninterrupted one.

Hardening on top of that contract:

* **Records are CRC-stamped.**  Each job file carries a ``crc32`` of
  its canonical JSON; a record that fails to parse *or* fails its
  checksum on reload is moved to ``<state_dir>/quarantine/`` — never
  trusted, never fatal.  Pre-CRC records (no stamp) remain loadable.
* **Persists are tiered.**  ``submit`` must be durable before the
  client hears 201, so its persist propagates errors; lifecycle
  persists (claim, progress, finish) are best-effort — a transient
  ``ENOSPC`` degrades to a warning and a stale-but-valid record, which
  the crash-recovery path already knows how to reconcile.
* **Jobs carry a tenant and an idempotency key.**  The tenant scopes
  quotas, fairness, and visibility; the key makes retried submits safe
  (the daemon returns the existing job instead of double-enqueueing).

:class:`TokenBucket` guards the submit endpoint: campaigns are heavy,
so a misbehaving client gets ``429`` long before it can pile up real
work.  The clock is injectable for tests.
"""

from __future__ import annotations

import errno
import json
import os
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..harness import faultrig
from ..harness.fsutil import durable_replace, stamp_crc, verify_crc

__all__ = ["Job", "JobQueue", "TokenBucket", "JOB_STATUSES"]

#: Job lifecycle: ``queued`` -> ``running`` -> one of the terminal
#: states (``done``, ``failed``, ``cancelled``) — or back through
#: ``interrupted`` (daemon stopped mid-job) to ``running`` on restart.
JOB_STATUSES = ("queued", "running", "done", "failed", "cancelled",
                "interrupted")

_ACTIVE = ("queued", "running", "interrupted")


class TokenBucket:
    """Classic token bucket; thread-safe, injectable monotonic clock."""

    def __init__(self, rate_per_s: float, burst: int,
                 clock: Callable[[], float] = time.monotonic):
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()
        self._lock = threading.Lock()

    def try_acquire(self) -> bool:
        """Take one token; False means the caller should be throttled."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                float(self.burst),
                self._tokens + (now - self._last) * self.rate_per_s)
            self._last = now
            if self._tokens < 1.0:
                return False
            self._tokens -= 1.0
            return True

    def retry_after_s(self) -> float:
        """Seconds until one token will be available (0.0 = now).

        The basis of the ``Retry-After`` header on 429 responses: an
        honest client that waits this long will find a token (absent
        competing traffic).
        """
        with self._lock:
            now = self._clock()
            tokens = min(
                float(self.burst),
                self._tokens + (now - self._last) * self.rate_per_s)
            if tokens >= 1.0:
                return 0.0
            return (1.0 - tokens) / self.rate_per_s


@dataclass
class Job:
    """One queued campaign and its lifecycle bookkeeping."""

    id: str
    spec: dict
    status: str = "queued"
    #: Owning tenant; "default" in open (no tenants file) mode.
    tenant: str = "default"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: :func:`repro.service.jobs.result_summary` of the finished (or
    #: partially finished, for cancelled/interrupted) campaign.
    result: Optional[dict] = None
    error: Optional[str] = None
    #: Trials journaled so far, refreshed as shards complete.
    progress_trials: int = 0
    #: Times this job entered ``running`` (1 = never restarted).
    attempts: int = 0
    #: Client-supplied submit key: resubmits with the same key return
    #: this job instead of enqueueing a duplicate.
    idempotency_key: Optional[str] = None
    #: Worker processes granted by the scheduler for the current run.
    granted_workers: int = 0
    #: Times the scheduler preempted this job at a shard boundary to
    #: make room for a starved tenant (each one resumed bit-identically).
    preemptions: int = 0
    #: In-memory only: set to make the running campaign drain at the
    #: next shard boundary.
    cancel_event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False)
    #: In-memory only: scheduler preemption request — like cancel, but
    #: the job re-queues as ``interrupted`` and resumes later.
    yield_event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False)

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "spec": self.spec,
            "status": self.status,
            "tenant": self.tenant,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "result": self.result,
            "error": self.error,
            "progress_trials": self.progress_trials,
            "attempts": self.attempts,
            "idempotency_key": self.idempotency_key,
            "granted_workers": self.granted_workers,
            "preemptions": self.preemptions,
        }

    @classmethod
    def from_dict(cls, obj: dict) -> "Job":
        return cls(
            id=str(obj["id"]),
            spec=dict(obj["spec"]),
            status=obj.get("status", "queued"),
            tenant=str(obj.get("tenant", "default")),
            submitted_at=float(obj.get("submitted_at", 0.0)),
            started_at=obj.get("started_at"),
            finished_at=obj.get("finished_at"),
            result=obj.get("result"),
            error=obj.get("error"),
            progress_trials=int(obj.get("progress_trials", 0)),
            attempts=int(obj.get("attempts", 0)),
            idempotency_key=obj.get("idempotency_key"),
            granted_workers=int(obj.get("granted_workers", 0)),
            preemptions=int(obj.get("preemptions", 0)),
        )


class JobQueue:
    """Persistent FIFO of campaign jobs under one state directory."""

    def __init__(self, state_dir: str):
        self.state_dir = state_dir
        self.jobs_dir = os.path.join(state_dir, "jobs")
        self.journals_dir = os.path.join(state_dir, "journals")
        self.quarantine_dir = os.path.join(state_dir, "quarantine")
        os.makedirs(self.jobs_dir, exist_ok=True)
        os.makedirs(self.journals_dir, exist_ok=True)
        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._next_serial = 1
        #: Records moved aside on reload (torn/corrupt); file names.
        self.quarantined: List[str] = []
        self._load()

    # -- persistence ---------------------------------------------------------

    def _job_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def journal_path(self, job_id: str) -> str:
        """Checkpoint journal backing a job's campaign trials."""
        return os.path.join(self.journals_dir, f"{job_id}.jsonl")

    def _load(self) -> None:
        """Reload persisted jobs; a dead daemon's running job resumes.

        ``running`` on disk means the previous daemon died mid-job (a
        clean stop persists ``interrupted`` first); both re-queue, and
        the journal resume path keeps the rerun bit-identical.  A record
        that fails to parse or fails its CRC is *quarantined* — moved to
        ``<state_dir>/quarantine/`` so the corruption stays inspectable
        without ever being trusted or crashing the reload.
        """
        for name in sorted(os.listdir(self.jobs_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.jobs_dir, name)
            try:
                with open(path) as fh:
                    obj = json.load(fh)
                if not isinstance(obj, dict) or not verify_crc(obj):
                    raise ValueError("job record failed its CRC check")
                job = Job.from_dict(obj)
            except (OSError, ValueError, KeyError, TypeError) as exc:
                self._quarantine(path, exc)
                continue
            if job.status == "running":
                job.status = "interrupted"
                self._persist(job, required=False)
            self._jobs[job.id] = job
            serial = _job_serial(job.id)
            if serial is not None:
                self._next_serial = max(self._next_serial, serial + 1)

    def _quarantine(self, path: str, reason: Exception) -> None:
        """Move a torn/corrupt record aside; never fatal."""
        os.makedirs(self.quarantine_dir, exist_ok=True)
        name = os.path.basename(path)
        try:
            durable_replace(path, os.path.join(self.quarantine_dir, name))
        except OSError:
            return
        self.quarantined.append(name)
        print(f"  [jobqueue] quarantined torn job record {name} "
              f"({type(reason).__name__}: {reason})",
              file=sys.stderr, flush=True)

    def _persist(self, job: Job, required: bool = True) -> None:
        """Atomic, CRC-stamped, rename-durable write of one job record.

        A crash mid-persist leaves the previous state; the parent
        directory is fsynced after the rename so the rename itself
        survives power loss.  ``required=False`` marks lifecycle
        persists (claim/progress/finish) where an I/O error — a full
        disk, say — degrades to a warning and a stale record, which the
        existing crash-recovery path reconciles; submit-time persists
        stay ``required`` because the client is about to be promised
        durability.
        """
        try:
            fired = faultrig.should_fire("enospc")
            if fired is not None:
                raise OSError(errno.ENOSPC,
                              "injected: no space left on device")
            path = self._job_path(job.id)
            tmp = path + ".tmp"
            with open(tmp, "w") as fh:
                json.dump(stamp_crc(job.to_dict()), fh,
                          sort_keys=True, indent=1)
                fh.flush()
                os.fsync(fh.fileno())
            durable_replace(tmp, path)
        except OSError as exc:
            if required:
                raise
            print(f"  [jobqueue] persist of {job.id} failed "
                  f"({exc}); record is stale until the next update",
                  file=sys.stderr, flush=True)

    # -- queue operations ----------------------------------------------------

    def submit(self, spec: dict, tenant: str = "default",
               idempotency_key: Optional[str] = None) -> Job:
        with self._lock:
            job_id = f"job-{self._next_serial:06d}"
            self._next_serial += 1
            job = Job(id=job_id, spec=spec, tenant=tenant,
                      submitted_at=time.time(),
                      idempotency_key=idempotency_key)
            self._persist(job)  # required: the client is promised 201
            self._jobs[job_id] = job
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def find_idempotent(self, tenant: str, key: str) -> Optional[Job]:
        """The tenant's existing job submitted under ``key``, if any."""
        with self._lock:
            for job in self._jobs.values():
                if job.tenant == tenant and job.idempotency_key == key:
                    return job
            return None

    def list_jobs(self, tenant: Optional[str] = None) -> List[Job]:
        with self._lock:
            jobs = [j for j in self._jobs.values()
                    if tenant is None or j.tenant == tenant]
            return sorted(jobs, key=lambda j: j.id)

    def runnable(self) -> List[Job]:
        """Claimable jobs: interrupted first (they predate the restart
        and hold journal state), then queued, FIFO within each."""
        with self._lock:
            candidates = [j for j in self._jobs.values()
                          if j.status in ("queued", "interrupted")]
            candidates.sort(
                key=lambda j: (j.status != "interrupted", j.id))
            return candidates

    def claim(self, job_id: str) -> Optional[Job]:
        """Transition one specific runnable job to ``running``."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.status not in ("queued", "interrupted"):
                return None
            job.status = "running"
            job.started_at = time.time()
            job.attempts += 1
            job.yield_event.clear()
            self._persist(job, required=False)
            return job

    def claim_next(self) -> Optional[Job]:
        """Pop the next runnable job (FIFO; interrupted jobs first)."""
        with self._lock:
            candidates = self.runnable()
            if not candidates:
                return None
            return self.claim(candidates[0].id)

    def update(self, job: Job) -> None:
        """Persist a mutated job record (best-effort; see _persist)."""
        with self._lock:
            self._persist(job, required=False)

    def request_cancel(self, job_id: str) -> Optional[Job]:
        """Cancel a job: queued dies now, running drains at next shard."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.status in ("queued", "interrupted"):
                job.status = "cancelled"
                job.finished_at = time.time()
                self._persist(job, required=False)
            elif job.status == "running":
                job.cancel_event.set()
            return job

    def counts(self) -> Dict[str, int]:
        with self._lock:
            out = {status: 0 for status in JOB_STATUSES}
            for job in self._jobs.values():
                out[job.status] = out.get(job.status, 0) + 1
            return out

    def tenant_counts(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant queued (incl. interrupted) and running job counts."""
        with self._lock:
            out: Dict[str, Dict[str, int]] = {}
            for job in self._jobs.values():
                row = out.setdefault(job.tenant, {"queued": 0, "running": 0})
                if job.status in ("queued", "interrupted"):
                    row["queued"] += 1
                elif job.status == "running":
                    row["running"] += 1
            return out

    def queued_for(self, tenant: str) -> int:
        """The tenant's queued+interrupted job count (quota input)."""
        with self._lock:
            return sum(1 for j in self._jobs.values()
                       if j.tenant == tenant
                       and j.status in ("queued", "interrupted"))

    def trials_submitted_for(self, tenant: str) -> int:
        """Total trials the tenant ever submitted (budget accounting);
        rebuilt from durable records so restarts cannot reset spend."""
        with self._lock:
            return sum(int(j.spec.get("trials", 0))
                       for j in self._jobs.values() if j.tenant == tenant)

    def has_active(self) -> bool:
        with self._lock:
            return any(j.status in _ACTIVE for j in self._jobs.values())


def _job_serial(job_id: str) -> Optional[int]:
    if not job_id.startswith("job-"):
        return None
    try:
        return int(job_id[4:])
    except ValueError:
        return None
