"""Durable FIFO job queue and the submit-path token bucket.

The campaign daemon must survive its own death: every job is a JSON
file under ``<state_dir>/jobs/`` (written atomically via rename), and
each job's trials stream into a checkpoint journal under
``<state_dir>/journals/``.  Restarting the daemon reloads the job
files; a job that was ``running`` when the process died comes back as
``interrupted`` and is re-queued ahead of newer work, where the journal
``--resume`` path skips every already-completed trial — so a restarted
job folds to the same bit-identical result as an uninterrupted one.

:class:`TokenBucket` guards the submit endpoint: campaigns are heavy,
so a misbehaving client gets ``429`` long before it can pile up real
work.  The clock is injectable for tests.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = ["Job", "JobQueue", "TokenBucket", "JOB_STATUSES"]

#: Job lifecycle: ``queued`` -> ``running`` -> one of the terminal
#: states (``done``, ``failed``, ``cancelled``) — or back through
#: ``interrupted`` (daemon stopped mid-job) to ``running`` on restart.
JOB_STATUSES = ("queued", "running", "done", "failed", "cancelled",
                "interrupted")

_ACTIVE = ("queued", "running", "interrupted")


class TokenBucket:
    """Classic token bucket; thread-safe, injectable monotonic clock."""

    def __init__(self, rate_per_s: float, burst: int,
                 clock: Callable[[], float] = time.monotonic):
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()
        self._lock = threading.Lock()

    def try_acquire(self) -> bool:
        """Take one token; False means the caller should be throttled."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                float(self.burst),
                self._tokens + (now - self._last) * self.rate_per_s)
            self._last = now
            if self._tokens < 1.0:
                return False
            self._tokens -= 1.0
            return True


@dataclass
class Job:
    """One queued campaign and its lifecycle bookkeeping."""

    id: str
    spec: dict
    status: str = "queued"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: :func:`repro.service.jobs.result_summary` of the finished (or
    #: partially finished, for cancelled/interrupted) campaign.
    result: Optional[dict] = None
    error: Optional[str] = None
    #: Trials journaled so far, refreshed as shards complete.
    progress_trials: int = 0
    #: Times this job entered ``running`` (1 = never restarted).
    attempts: int = 0
    #: In-memory only: set to make the running campaign drain at the
    #: next shard boundary.
    cancel_event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False)

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "spec": self.spec,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "result": self.result,
            "error": self.error,
            "progress_trials": self.progress_trials,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, obj: dict) -> "Job":
        return cls(
            id=str(obj["id"]),
            spec=dict(obj["spec"]),
            status=obj.get("status", "queued"),
            submitted_at=float(obj.get("submitted_at", 0.0)),
            started_at=obj.get("started_at"),
            finished_at=obj.get("finished_at"),
            result=obj.get("result"),
            error=obj.get("error"),
            progress_trials=int(obj.get("progress_trials", 0)),
            attempts=int(obj.get("attempts", 0)),
        )


class JobQueue:
    """Persistent FIFO of campaign jobs under one state directory."""

    def __init__(self, state_dir: str):
        self.state_dir = state_dir
        self.jobs_dir = os.path.join(state_dir, "jobs")
        self.journals_dir = os.path.join(state_dir, "journals")
        os.makedirs(self.jobs_dir, exist_ok=True)
        os.makedirs(self.journals_dir, exist_ok=True)
        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._next_serial = 1
        self._load()

    # -- persistence ---------------------------------------------------------

    def _job_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def journal_path(self, job_id: str) -> str:
        """Checkpoint journal backing a job's campaign trials."""
        return os.path.join(self.journals_dir, f"{job_id}.jsonl")

    def _load(self) -> None:
        """Reload persisted jobs; a dead daemon's running job resumes.

        ``running`` on disk means the previous daemon died mid-job (a
        clean stop persists ``interrupted`` first); both re-queue, and
        the journal resume path keeps the rerun bit-identical.
        """
        for name in sorted(os.listdir(self.jobs_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.jobs_dir, name)
            try:
                with open(path) as fh:
                    job = Job.from_dict(json.load(fh))
            except (OSError, ValueError, KeyError, TypeError):
                continue  # torn write or foreign file; never fatal
            if job.status == "running":
                job.status = "interrupted"
                self._persist(job)
            self._jobs[job.id] = job
            serial = _job_serial(job.id)
            if serial is not None:
                self._next_serial = max(self._next_serial, serial + 1)

    def _persist(self, job: Job) -> None:
        """Atomic write: a crash mid-persist leaves the previous state."""
        path = self._job_path(job.id)
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(job.to_dict(), fh, sort_keys=True, indent=1)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    # -- queue operations ----------------------------------------------------

    def submit(self, spec: dict) -> Job:
        with self._lock:
            job_id = f"job-{self._next_serial:06d}"
            self._next_serial += 1
            job = Job(id=job_id, spec=spec, submitted_at=time.time())
            self._persist(job)
            self._jobs[job_id] = job
            return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def list_jobs(self) -> List[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.id)

    def claim_next(self) -> Optional[Job]:
        """Pop the next runnable job (FIFO; interrupted jobs first).

        Interrupted jobs predate everything queued after the restart
        *and* already hold journal state, so finishing them first keeps
        the service's completion order close to submission order.
        """
        with self._lock:
            candidates = [j for j in self._jobs.values()
                          if j.status in ("queued", "interrupted")]
            if not candidates:
                return None
            candidates.sort(
                key=lambda j: (j.status != "interrupted", j.id))
            job = candidates[0]
            job.status = "running"
            job.started_at = time.time()
            job.attempts += 1
            self._persist(job)
            return job

    def update(self, job: Job) -> None:
        """Persist a mutated job record."""
        with self._lock:
            self._persist(job)

    def request_cancel(self, job_id: str) -> Optional[Job]:
        """Cancel a job: queued dies now, running drains at next shard."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.status in ("queued", "interrupted"):
                job.status = "cancelled"
                job.finished_at = time.time()
                self._persist(job)
            elif job.status == "running":
                job.cancel_event.set()
            return job

    def counts(self) -> Dict[str, int]:
        with self._lock:
            out = {status: 0 for status in JOB_STATUSES}
            for job in self._jobs.values():
                out[job.status] = out.get(job.status, 0) + 1
            return out

    def has_active(self) -> bool:
        with self._lock:
            return any(j.status in _ACTIVE for j in self._jobs.values())


def _job_serial(job_id: str) -> Optional[int]:
    if not job_id.startswith("job-"):
        return None
    try:
        return int(job_id[4:])
    except ValueError:
        return None
