"""Local HTTP/JSON API for the campaign daemon (stdlib only).

Endpoints (all JSON in, JSON out):

==========================  ============================================
``GET  /healthz``           liveness: daemon state, queue counts, live
                            watchdog stats, the current job id
``GET  /jobs``              every known job, submission order
``POST /jobs``              submit a campaign job spec; ``201`` + job
                            record, ``400`` invalid, ``429`` throttled,
                            ``503`` draining
``GET  /jobs/<id>``         one job record
``GET  /jobs/<id>/result``  the result summary; ``409`` while the job
                            is still pending/running
``POST /jobs/<id>/cancel``  cancel: queued dies now, running drains at
                            the next shard boundary
``POST /drain``             stop accepting work, finish the current
                            job, then exit the serve loop
==========================  ============================================

The handler is deliberately thin: every decision lives on the daemon
object, so tests can drive the same logic without a socket.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

__all__ = ["make_handler", "make_server"]

#: Submissions larger than this are rejected outright; a campaign spec
#: is a handful of scalars.
MAX_BODY_BYTES = 64 * 1024


def make_handler(daemon):
    """A request-handler class bound to one daemon instance."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-campaignd/1"
        protocol_version = "HTTP/1.1"

        # -- plumbing --------------------------------------------------------

        def log_message(self, format, *args):  # noqa: A002
            daemon.log(f"http {self.address_string()} "
                       + (format % args))

        def _reply(self, code: int, payload: dict) -> None:
            body = json.dumps(payload, sort_keys=True).encode()
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(self, code: int, message: str) -> None:
            self._reply(code, {"error": message})

        def _read_json(self) -> Optional[dict]:
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                self._error(400, "bad Content-Length")
                return None
            if length > MAX_BODY_BYTES:
                self._error(413, "request body too large")
                return None
            raw = self.rfile.read(length) if length else b"{}"
            try:
                obj = json.loads(raw.decode() or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError):
                self._error(400, "request body is not valid JSON")
                return None
            if not isinstance(obj, dict):
                self._error(400, "request body must be a JSON object")
                return None
            return obj

        def _job_route(self) -> Tuple[Optional[str], Optional[str]]:
            """``/jobs/<id>[/<verb>]`` -> ``(job_id, verb)``."""
            parts = [p for p in self.path.split("/") if p]
            if len(parts) >= 2 and parts[0] == "jobs":
                return parts[1], parts[2] if len(parts) > 2 else None
            return None, None

        # -- verbs -----------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802
            if self.path == "/healthz":
                self._reply(200, daemon.health())
                return
            if self.path == "/jobs":
                self._reply(200, {"jobs": daemon.list_jobs()})
                return
            job_id, verb = self._job_route()
            if job_id is not None and verb is None:
                job = daemon.job_status(job_id)
                if job is None:
                    self._error(404, f"no such job {job_id!r}")
                    return
                self._reply(200, job)
                return
            if job_id is not None and verb == "result":
                job = daemon.job_status(job_id)
                if job is None:
                    self._error(404, f"no such job {job_id!r}")
                    return
                if job.get("result") is None:
                    self._error(
                        409, f"job {job_id!r} is {job['status']}; "
                             f"no result yet")
                    return
                self._reply(200, {"id": job_id, "status": job["status"],
                                  "result": job["result"]})
                return
            self._error(404, f"unknown endpoint {self.path!r}")

        def do_POST(self) -> None:  # noqa: N802
            if self.path == "/jobs":
                if daemon.draining:
                    self._error(503, "daemon is draining; "
                                     "not accepting new jobs")
                    return
                if not daemon.bucket.try_acquire():
                    self._error(429, "job submissions are rate-limited; "
                                     "retry later")
                    return
                spec = self._read_json()
                if spec is None:
                    return
                try:
                    job = daemon.submit(spec)
                except ValueError as exc:
                    self._error(400, str(exc))
                    return
                self._reply(201, job)
                return
            if self.path == "/drain":
                daemon.drain()
                self._reply(202, {"status": "draining"})
                return
            job_id, verb = self._job_route()
            if job_id is not None and verb == "cancel":
                job = daemon.cancel(job_id)
                if job is None:
                    self._error(404, f"no such job {job_id!r}")
                    return
                self._reply(200, job)
                return
            self._error(404, f"unknown endpoint {self.path!r}")

    return Handler


def make_server(daemon, host: str, port: int) -> ThreadingHTTPServer:
    """A threading HTTP server bound to ``host:port`` for ``daemon``."""
    server = ThreadingHTTPServer((host, port), make_handler(daemon))
    server.daemon_threads = True
    return server
