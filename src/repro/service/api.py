"""Local HTTP/JSON API for the campaign daemon (stdlib only).

Endpoints (all JSON in, JSON out):

==========================  ============================================
``GET  /healthz``           liveness: daemon state, queue depth,
                            per-tenant load, worker budget utilization,
                            live watchdog stats
``GET  /jobs``              the caller's jobs (every job for operators
                            and in open mode), submission order
``POST /jobs``              submit a campaign job spec; ``201`` + job
                            record, ``200`` idempotent replay, ``400``
                            invalid, ``401``/``403`` denied, ``409``
                            idempotency-key conflict, ``429`` throttled
                            (with ``Retry-After``), ``503`` draining
``GET  /jobs/<id>``         one job record (``403`` if it belongs to
                            another tenant)
``GET  /jobs/<id>/result``  the result summary; ``409`` while the job
                            is still pending/running
``POST /jobs/<id>/cancel``  cancel: queued dies now, running drains at
                            the next shard boundary
``POST /drain``             stop accepting work, finish running jobs,
                            then exit the serve loop (operators only
                            when a tenants file is configured)
==========================  ============================================

Authentication: with a tenants file configured, **every** route —
including ``/healthz`` — requires ``Authorization: Bearer <token>``;
unknown or missing tokens get ``401``.  Without a tenants file the
service is open and every caller is the anonymous default tenant.

Idempotency: ``POST /jobs`` honours an ``Idempotency-Key`` header.  The
same tenant resubmitting the same key with the same spec gets the
existing job back with ``200``; the same key with a *different* spec is
a ``409`` — a retried submit can never double-enqueue.

Auditing: every request (including failed authentication) appends one
line to the daemon's audit log via the single ``_reply`` choke point.

The handler is deliberately thin: every decision lives on the daemon
object, so tests can drive the same logic without a socket.
"""

from __future__ import annotations

import json
import math
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from ..harness import faultrig
from .tenants import ANONYMOUS_TENANT, AdmissionDenied

__all__ = ["make_handler", "make_server"]

#: Submissions larger than this are rejected outright; a campaign spec
#: is a handful of scalars.
MAX_BODY_BYTES = 64 * 1024


def make_handler(daemon):
    """A request-handler class bound to one daemon instance."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-campaignd/1"
        protocol_version = "HTTP/1.1"

        #: Tenant id of the authenticated caller for the request being
        #: handled; ``None`` until authentication runs (audit records
        #: failed auth attempts with a null tenant).
        _tenant: Optional[str] = None

        # -- plumbing --------------------------------------------------------

        def log_message(self, format, *args):  # noqa: A002
            daemon.log(f"http {self.address_string()} "
                       + (format % args))

        def _reply(self, code: int, payload: dict,
                   retry_after_s: Optional[float] = None) -> None:
            body = json.dumps(payload, sort_keys=True).encode()
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if retry_after_s is not None:
                self.send_header("Retry-After",
                                 str(max(1, math.ceil(retry_after_s))))
            self.end_headers()
            self.wfile.write(body)
            job_id = payload.get("id") if isinstance(payload, dict) else None
            daemon.audit.record(self._tenant, self.command, self.path,
                                code, job_id=job_id)

        def _error(self, code: int, message: str,
                   retry_after_s: Optional[float] = None) -> None:
            self._reply(code, {"error": message},
                        retry_after_s=retry_after_s)

        def _read_json(self) -> Optional[dict]:
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                self._error(400, "bad Content-Length")
                return None
            if length > MAX_BODY_BYTES:
                self._error(413, "request body too large")
                return None
            raw = self.rfile.read(length) if length else b"{}"
            try:
                obj = json.loads(raw.decode() or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError):
                self._error(400, "request body is not valid JSON")
                return None
            if not isinstance(obj, dict):
                self._error(400, "request body must be a JSON object")
                return None
            return obj

        def _job_route(self) -> Tuple[Optional[str], Optional[str]]:
            """``/jobs/<id>[/<verb>]`` -> ``(job_id, verb)``."""
            parts = [p for p in self.path.split("/") if p]
            if len(parts) >= 2 and parts[0] == "jobs":
                return parts[1], parts[2] if len(parts) > 2 else None
            return None, None

        # -- admission -------------------------------------------------------

        def _authenticate(self) -> bool:
            """Resolve the caller's tenant; False means 401 was sent."""
            self._tenant = None
            fired = faultrig.should_fire("slow-client")
            if fired is not None:
                # Chaos mode: pin this handler thread the way a stalled
                # client would; the threaded server must keep serving.
                time.sleep(fired[2] if fired[2] is not None else 2.0)
            if not daemon.admission.enabled:
                self._tenant = ANONYMOUS_TENANT
                return True
            header = self.headers.get("Authorization") or ""
            token = header[7:].strip() \
                if header.startswith("Bearer ") else None
            config = daemon.registry.authenticate(token)
            if config is None:
                self._error(401, "missing or invalid bearer token")
                return False
            self._tenant = config.id
            return True

        def _is_operator(self) -> bool:
            if not daemon.admission.enabled:
                return True
            config = daemon.registry.get(self._tenant)
            return config is not None and config.operator

        def _owns_or_operator(self, job: dict) -> bool:
            if not daemon.admission.enabled or self._is_operator():
                return True
            return job.get("tenant") == self._tenant

        # -- verbs -----------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802
            if not self._authenticate():
                return
            try:
                self._get()
            except Exception as exc:  # noqa: BLE001 - never kill the server
                self._error(500, f"{type(exc).__name__}: {exc}")

        def do_POST(self) -> None:  # noqa: N802
            if not self._authenticate():
                return
            try:
                self._post()
            except Exception as exc:  # noqa: BLE001 - never kill the server
                self._error(500, f"{type(exc).__name__}: {exc}")

        def _get(self) -> None:
            if self.path == "/healthz":
                self._reply(200, daemon.health())
                return
            if self.path == "/jobs":
                tenant = None if self._is_operator() else self._tenant
                self._reply(200, {"jobs": daemon.list_jobs(tenant)})
                return
            job_id, verb = self._job_route()
            if job_id is not None and verb is None:
                job = daemon.job_status(job_id)
                if job is None:
                    self._error(404, f"no such job {job_id!r}")
                    return
                if not self._owns_or_operator(job):
                    self._error(403, f"job {job_id!r} belongs to "
                                     f"another tenant")
                    return
                self._reply(200, job)
                return
            if job_id is not None and verb == "result":
                job = daemon.job_status(job_id)
                if job is None:
                    self._error(404, f"no such job {job_id!r}")
                    return
                if not self._owns_or_operator(job):
                    self._error(403, f"job {job_id!r} belongs to "
                                     f"another tenant")
                    return
                if job.get("result") is None:
                    self._error(
                        409, f"job {job_id!r} is {job['status']}; "
                             f"no result yet")
                    return
                self._reply(200, {"id": job_id, "status": job["status"],
                                  "result": job["result"]})
                return
            self._error(404, f"unknown endpoint {self.path!r}")

        def _post(self) -> None:
            if self.path == "/jobs":
                if daemon.draining:
                    self._error(503, "daemon is draining; "
                                     "not accepting new jobs")
                    return
                if not daemon.bucket.try_acquire():
                    self._error(429, "job submissions are rate-limited; "
                                     "retry later",
                                retry_after_s=daemon.bucket.retry_after_s())
                    return
                spec = self._read_json()
                if spec is None:
                    return
                key = self.headers.get("Idempotency-Key") or None
                try:
                    job = daemon.submit(spec, tenant=self._tenant,
                                        idempotency_key=key)
                except AdmissionDenied as exc:
                    self._error(exc.status, exc.message,
                                retry_after_s=exc.retry_after_s)
                    return
                except ValueError as exc:
                    self._error(400, str(exc))
                    return
                replayed = job.pop("replayed", False)
                self._reply(200 if replayed else 201, job)
                return
            if self.path == "/drain":
                if not self._is_operator():
                    self._error(403, "drain is restricted to operator "
                                     "tenants")
                    return
                daemon.drain()
                self._reply(202, {"status": "draining"})
                return
            job_id, verb = self._job_route()
            if job_id is not None and verb == "cancel":
                job = daemon.job_status(job_id)
                if job is None:
                    self._error(404, f"no such job {job_id!r}")
                    return
                if not self._owns_or_operator(job):
                    self._error(403, f"job {job_id!r} belongs to "
                                     f"another tenant")
                    return
                job = daemon.cancel(job_id)
                self._reply(200, job)
                return
            self._error(404, f"unknown endpoint {self.path!r}")

    return Handler


def make_server(daemon, host: str, port: int) -> ThreadingHTTPServer:
    """A threading HTTP server bound to ``host:port`` for ``daemon``."""
    server = ThreadingHTTPServer((host, port), make_handler(daemon))
    server.daemon_threads = True
    return server
