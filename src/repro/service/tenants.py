"""Multi-tenant admission control: who may submit how much, and when.

The campaign daemon serves expensive work — one job is hundreds to
thousands of CPU-bound trials — so admission is where multi-tenancy is
actually enforced:

* :class:`TenantRegistry` loads a **tenants file** (JSON) mapping bearer
  tokens to :class:`TenantConfig` records: per-tenant rate limits,
  queued-job caps, concurrent-job caps, trial budgets, fair-share
  weights, and an ``operator`` bit for control-plane verbs (drain).
  With no tenants file the service runs *open* exactly as before —
  every caller is the anonymous default tenant and only the global
  token bucket applies.
* :class:`AdmissionController` turns a submit attempt into a decision:
  token-bucket rate limiting (429 with a computed ``Retry-After``),
  queued-job quotas (429 — the queue will drain, retrying helps), and
  trial budgets (403 — the budget will not refill itself, retrying is
  pointless).  Budgets are charged by *submitted* trials and rebuilt
  from the durable job records on restart, so a bounced daemon cannot
  be used to reset a tenant's spend.
* :class:`AuditLog` appends one JSONL line per API request — tenant,
  method, route, outcome, and job id where one is involved — giving
  operators a durable, grep-able trail of every authenticated (and
  every rejected) call.

Tenants file format::

    {"tenants": [
      {"id": "alice", "token": "alice-secret-token",
       "rate_per_s": 2.0, "burst": 10,
       "max_queued_jobs": 16, "max_concurrent_jobs": 2,
       "trial_budget": 1000000, "weight": 1.0, "operator": false},
      {"id": "ops", "token": "ops-token", "operator": true}
    ]}

Only ``id`` and ``token`` are required; everything else defaults to
permissive values.  ``trial_budget: null`` (or absent) means unlimited.
"""

from __future__ import annotations

import hmac
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional

from .queue import TokenBucket

__all__ = [
    "ANONYMOUS_TENANT",
    "AdmissionDenied",
    "AdmissionController",
    "AuditLog",
    "TenantConfig",
    "TenantRegistry",
]

#: Tenant identity used when no tenants file is configured (open mode).
ANONYMOUS_TENANT = "default"


class AdmissionDenied(Exception):
    """A submit (or other request) refused by admission control.

    ``status`` is the HTTP status the API should return; ``retry_after_s``
    is set for throttling denials (429) so the handler can emit a
    ``Retry-After`` header.
    """

    def __init__(self, status: int, message: str,
                 retry_after_s: Optional[float] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's identity and quotas (see the module docstring)."""

    id: str
    token: str
    rate_per_s: float = 2.0
    burst: int = 10
    max_queued_jobs: int = 16
    max_concurrent_jobs: int = 4
    trial_budget: Optional[int] = None
    weight: float = 1.0
    operator: bool = False

    @classmethod
    def from_dict(cls, obj: dict) -> "TenantConfig":
        if not isinstance(obj, dict):
            raise ValueError("each tenants entry must be a JSON object")
        unknown = sorted(set(obj) - set(cls.__dataclass_fields__))
        if unknown:
            raise ValueError(
                f"unknown tenant field(s): {', '.join(unknown)}")
        for required in ("id", "token"):
            if not obj.get(required) or not isinstance(obj[required], str):
                raise ValueError(
                    f"tenants entries need a non-empty string {required!r}")
        config = cls(**obj)
        if config.rate_per_s <= 0:
            raise ValueError(f"tenant {config.id!r}: rate_per_s must be > 0")
        if config.burst < 1:
            raise ValueError(f"tenant {config.id!r}: burst must be >= 1")
        if config.max_queued_jobs < 1:
            raise ValueError(
                f"tenant {config.id!r}: max_queued_jobs must be >= 1")
        if config.max_concurrent_jobs < 1:
            raise ValueError(
                f"tenant {config.id!r}: max_concurrent_jobs must be >= 1")
        if config.trial_budget is not None and config.trial_budget < 1:
            raise ValueError(
                f"tenant {config.id!r}: trial_budget must be >= 1 or null")
        if config.weight <= 0:
            raise ValueError(f"tenant {config.id!r}: weight must be > 0")
        return config


class TenantRegistry:
    """Token -> tenant resolution loaded from a tenants file.

    Token comparison uses :func:`hmac.compare_digest`: the daemon is a
    local/infra service, but there is no reason to hand out a timing
    oracle for free.
    """

    def __init__(self, tenants: Dict[str, TenantConfig]):
        self.tenants = dict(tenants)
        self._by_token = {cfg.token: cfg for cfg in tenants.values()}
        if len(self._by_token) != len(tenants):
            raise ValueError("tenants file reuses a token across tenants")

    @classmethod
    def load(cls, path: str) -> "TenantRegistry":
        with open(path) as fh:
            try:
                obj = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"tenants file {path!r} is not valid JSON: {exc}"
                ) from None
        entries = obj.get("tenants") if isinstance(obj, dict) else None
        if not isinstance(entries, list) or not entries:
            raise ValueError(
                f"tenants file {path!r} needs a non-empty 'tenants' list")
        tenants: Dict[str, TenantConfig] = {}
        for entry in entries:
            config = TenantConfig.from_dict(entry)
            if config.id in tenants:
                raise ValueError(
                    f"tenants file defines tenant {config.id!r} twice")
            tenants[config.id] = config
        return cls(tenants)

    def authenticate(self, token: Optional[str]) -> Optional[TenantConfig]:
        """The tenant owning ``token``, or ``None`` (401 material)."""
        if not token:
            return None
        for candidate, config in self._by_token.items():
            if hmac.compare_digest(candidate, token):
                return config
        return None

    def get(self, tenant_id: str) -> Optional[TenantConfig]:
        return self.tenants.get(tenant_id)

    def weight(self, tenant_id: str) -> float:
        config = self.tenants.get(tenant_id)
        return config.weight if config is not None else 1.0


class AdmissionController:
    """Per-tenant rate limits and quotas in front of the job queue."""

    def __init__(self, registry: Optional[TenantRegistry]):
        self.registry = registry
        self._buckets: Dict[str, TokenBucket] = {}
        self._spent_trials: Dict[str, int] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether a tenants file is configured (auth required)."""
        return self.registry is not None

    # -- restart accounting --------------------------------------------------

    def charge_trials(self, tenant_id: str, trials: int) -> None:
        """Record submitted trials against the tenant's budget."""
        with self._lock:
            self._spent_trials[tenant_id] = (
                self._spent_trials.get(tenant_id, 0) + trials)

    def spent_trials(self, tenant_id: str) -> int:
        with self._lock:
            return self._spent_trials.get(tenant_id, 0)

    # -- the decision --------------------------------------------------------

    def _bucket(self, config: TenantConfig) -> TokenBucket:
        bucket = self._buckets.get(config.id)
        if bucket is None:
            bucket = TokenBucket(config.rate_per_s, config.burst)
            self._buckets[config.id] = bucket
        return bucket

    def check_submit(self, tenant_id: str, trials: int,
                     queued_now: int) -> None:
        """Admit or refuse one submit; raises :class:`AdmissionDenied`.

        ``queued_now`` is the tenant's current queued+interrupted job
        count.  On success the trial budget is charged immediately: the
        job is about to be durably enqueued, and charging before the
        enqueue means a crash in between errs on the side of the quota,
        never against it.
        """
        if self.registry is None:
            return
        config = self.registry.get(tenant_id)
        if config is None:
            raise AdmissionDenied(403, f"unknown tenant {tenant_id!r}")
        with self._lock:
            bucket = self._bucket(config)
            if not bucket.try_acquire():
                retry = bucket.retry_after_s()
                raise AdmissionDenied(
                    429,
                    f"tenant {tenant_id!r} is rate-limited "
                    f"({config.rate_per_s:g}/s sustained, "
                    f"burst {config.burst}); retry later",
                    retry_after_s=retry)
            if queued_now >= config.max_queued_jobs:
                raise AdmissionDenied(
                    429,
                    f"tenant {tenant_id!r} already has {queued_now} "
                    f"queued job(s) (quota {config.max_queued_jobs}); "
                    f"retry when the queue drains",
                    retry_after_s=5.0)
            spent = self._spent_trials.get(tenant_id, 0)
            if (config.trial_budget is not None
                    and spent + trials > config.trial_budget):
                raise AdmissionDenied(
                    403,
                    f"tenant {tenant_id!r} trial budget exhausted: "
                    f"{spent} of {config.trial_budget} trials spent, "
                    f"{trials} more requested")
            self._spent_trials[tenant_id] = spent + trials


class AuditLog:
    """Append-only JSONL trail of every API request.

    One line per request: wall-clock timestamp, tenant (``null`` when
    authentication failed), HTTP method and path, response status, and
    the job id where the request concerned one.  Lines are flushed per
    append so a tail is live; full fsync durability is deliberately not
    promised — the audit log is an operator trail, not a ledger.
    """

    def __init__(self, path: Optional[str]):
        self.path = path
        self._lock = threading.Lock()
        self._fh = open(path, "a") if path else None

    def record(self, tenant: Optional[str], method: str, path: str,
               status: int, job_id: Optional[str] = None) -> None:
        if self._fh is None:
            return
        entry = {
            "ts": round(time.time(), 3),
            "tenant": tenant,
            "method": method,
            "path": path,
            "status": status,
        }
        if job_id is not None:
            entry["job"] = job_id
        line = json.dumps(entry, sort_keys=True)
        with self._lock:
            try:
                self._fh.write(line + "\n")
                self._fh.flush()
            except (OSError, ValueError):
                pass  # auditing must never take the service down

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.flush()
                    os.fsync(self._fh.fileno())
                except (OSError, ValueError):
                    pass
                self._fh.close()
                self._fh = None
