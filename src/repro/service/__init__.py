"""Campaign-as-a-service: a supervised job daemon over the harness.

``python -m repro serve`` runs :class:`~repro.service.daemon
.CampaignDaemon`; ``python -m repro job ...`` talks to it through
:class:`~repro.service.client.ServiceClient`.  Specs, queueing, and the
HTTP surface live in :mod:`~repro.service.jobs`,
:mod:`~repro.service.queue`, and :mod:`~repro.service.api`.
"""

from .client import DEFAULT_URL, ServiceClient, ServiceError
from .daemon import DEFAULT_PORT, CampaignDaemon
from .jobs import JobSpec, result_summary, run_job
from .queue import Job, JobQueue, TokenBucket
from .scheduler import DeficitRoundRobin, JobScheduler, WorkerBudget
from .tenants import (AdmissionController, AdmissionDenied, AuditLog,
                      TenantConfig, TenantRegistry)

__all__ = [
    "AdmissionController",
    "AdmissionDenied",
    "AuditLog",
    "CampaignDaemon",
    "DEFAULT_PORT",
    "DEFAULT_URL",
    "DeficitRoundRobin",
    "Job",
    "JobQueue",
    "JobScheduler",
    "JobSpec",
    "ServiceClient",
    "ServiceError",
    "TenantConfig",
    "TenantRegistry",
    "TokenBucket",
    "WorkerBudget",
    "result_summary",
    "run_job",
]
