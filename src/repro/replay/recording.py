"""Recording and replaying test executions.

:class:`RecordingScheduler` wraps any scheduler, forwarding every decision
to it and logging the outcome into a :class:`repro.replay.trace.Trace`;
:class:`ReplayScheduler` re-executes a trace deterministically.  Replay
works because the executor is deterministic given the decision sequence:
the candidate write lists a read chooses from are a pure function of the
decisions taken so far.

    result, trace = record_run(program_factory(), PCTWMScheduler(2, 10))
    again = replay_run(program_factory(), trace)
    assert again.bug_found == result.bug_found
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from ..memory.events import Event
from ..runtime.errors import ReplayDivergenceError, ReproError
from ..runtime.executor import RunResult, run_once
from ..runtime.program import Program
from ..runtime.scheduler import ReadContext, Scheduler
from .trace import READ, THREAD, Trace


class RecordingScheduler(Scheduler):
    """Wraps an inner scheduler and logs its decisions."""

    def __init__(self, inner: Scheduler):
        super().__init__(seed=0)
        self.inner = inner
        self.name = f"record({inner.name})"
        self.trace = Trace(scheduler=inner.name)

    def reseed(self, seed=None) -> None:
        """Forward to the wrapped scheduler (recording consumes no RNG)."""
        self.inner.reseed(seed)

    def on_run_start(self, state) -> None:
        self.trace = Trace(program=state.program.name,
                           scheduler=self.inner.name)
        self.inner.on_run_start(state)

    def choose_thread(self, state) -> int:
        tid = self.inner.choose_thread(state)
        self.trace.record_thread(tid)
        return tid

    def choose_read_from(self, state, ctx: ReadContext) -> Event:
        source = self.inner.choose_read_from(state, ctx)
        candidates = ctx.candidates
        # Candidate lists are contiguous mo slices (the coherence-visible
        # suffix), so the recorded index is the mo-distance from the first
        # candidate — O(1) instead of a list scan.  The identity check
        # falls back to scanning for exotic hand-built contexts.
        index = source.mo_index - candidates[0].mo_index if candidates else -1
        if not 0 <= index < len(candidates) \
                or candidates[index] is not source:
            try:
                index = list(candidates).index(source)
            except ValueError:
                raise ReproError(
                    f"{self.inner.name} chose a source outside the "
                    "candidate list; cannot record"
                )
        self.trace.record_read(index)
        return source

    def on_event_executed(self, state, event, info) -> None:
        self.inner.on_event_executed(state, event, info)

    def on_thread_created(self, state, tid, parent_tid) -> None:
        # Not forwarding this hook would desync any priority/view-keeping
        # inner scheduler the moment the program spawns a thread.
        self.inner.on_thread_created(state, tid, parent_tid)

    def on_thread_finished(self, state, tid) -> None:
        self.inner.on_thread_finished(state, tid)


class ReplayScheduler(Scheduler):
    """Feeds a recorded trace back to the executor, decision by decision."""

    name = "replay"

    def __init__(self, trace: Trace):
        super().__init__(seed=0)
        self._decisions = list(trace.decisions)
        self._cursor = 0

    def _next(self, expected_kind: str) -> int:
        if self._cursor >= len(self._decisions):
            raise ReproError(
                "trace exhausted: the replayed program diverged from the "
                "recorded one (more decisions needed)"
            )
        kind, value = self._decisions[self._cursor]
        if kind != expected_kind:
            raise ReproError(
                f"trace divergence at step {self._cursor}: recorded "
                f"{kind!r}, execution asked for {expected_kind!r}"
            )
        self._cursor += 1
        return value

    def choose_thread(self, state) -> int:
        return self._next(THREAD)

    def choose_read_from(self, state, ctx: ReadContext) -> Event:
        index = self._next(READ)
        if index >= len(ctx.candidates):
            raise ReproError(
                f"trace divergence: recorded candidate #{index} but only "
                f"{len(ctx.candidates)} are visible"
            )
        return ctx.candidates[index]

    @property
    def fully_consumed(self) -> bool:
        return self._cursor == len(self._decisions)

    @property
    def consumed(self) -> int:
        """How many recorded decisions the replay has used so far."""
        return self._cursor

    @property
    def remaining(self) -> int:
        return len(self._decisions) - self._cursor


def record_run(program: Program, scheduler: Scheduler,
               max_steps: int = 20000,
               spin_threshold: int = 8) -> Tuple[RunResult, Trace]:
    """Run once under ``scheduler`` while recording every decision.

    The trace remembers ``spin_threshold``: replaying under a different
    threshold changes the livelock heuristic's read promotions and can
    diverge silently, so :func:`replay_run` defaults to the recorded one.
    """
    recorder = RecordingScheduler(scheduler)
    result = run_once(program, recorder, max_steps=max_steps,
                      spin_threshold=spin_threshold)
    recorder.trace.spin_threshold = spin_threshold
    return result, recorder.trace


def replay_run(program: Program, trace: Trace,
               max_steps: int = 20000,
               spin_threshold: Optional[int] = None,
               strict: bool = True,
               sanitize: bool = False) -> RunResult:
    """Deterministically re-execute a recorded trace.

    Runs under the trace's recorded ``spin_threshold`` unless overridden.
    With ``strict`` (the default), a run that finishes without consuming
    the whole trace raises :class:`ReplayDivergenceError` — leftover
    decisions mean the replayed program is not the recorded one, and the
    result would be misleading.
    """
    if spin_threshold is None:
        spin_threshold = trace.spin_threshold
    scheduler = ReplayScheduler(trace)
    result = run_once(program, scheduler, max_steps=max_steps,
                      spin_threshold=spin_threshold, sanitize=sanitize)
    if strict and not scheduler.fully_consumed:
        raise ReplayDivergenceError(
            f"replay finished after {scheduler.consumed} of "
            f"{len(trace)} recorded decisions; the replayed program "
            "diverged from the recorded one "
            f"({scheduler.remaining} decisions left over)"
        )
    return result


def find_and_record(program_factory: Callable[[], Program],
                    scheduler_factory: Callable[[int], Scheduler],
                    max_attempts: int = 1000, base_seed: int = 0,
                    max_steps: int = 20000,
                    spin_threshold: int = 8,
                    ) -> Optional[Tuple[int, RunResult, Trace]]:
    """Search seeds until a bug is found; return its replayable trace.

    Returns ``(seed, result, trace)`` for the first bug-finding run, or
    None when the attempt budget is exhausted.  ``spin_threshold`` is
    recorded in the trace so the replay runs under the same heuristic.
    """
    for attempt in range(max_attempts):
        seed = base_seed + attempt
        result, trace = record_run(program_factory(),
                                   scheduler_factory(seed),
                                   max_steps=max_steps,
                                   spin_threshold=spin_threshold)
        trace.seed = seed
        if result.bug_found:
            return seed, result, trace
    return None
