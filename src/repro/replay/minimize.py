"""Configuration minimization: shrink a found bug to its simplest repro.

Once a bug is found at some (d, h), smaller parameters usually reproduce
it too — and the smallest reproducing configuration *is* the empirical
bug depth / history demand, the most useful thing to put in a bug report
(Definition 4 of the paper, operationalized per bug).

    config = minimize_configuration(program_factory, depth=4, history=4)
    config.depth, config.history, config.hit_rate, config.witness_seed
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..core.depth import estimate_parameters
from ..core.pctwm import PCTWMScheduler
from ..harness.seeding import derive_trial_seed
from ..runtime.executor import run_once
from ..runtime.program import Program


@dataclass(frozen=True)
class MinimalConfig:
    """The smallest PCTWM configuration that reproduces the bug."""

    depth: int
    history: int
    k_com: int
    hit_rate: float
    witness_seed: int

    def __str__(self) -> str:  # pragma: no cover - reporting aid
        return (
            f"d={self.depth}, h={self.history} (k_com={self.k_com}): "
            f"{100 * self.hit_rate:.1f}% hit rate, witness seed "
            f"{self.witness_seed}"
        )


def _hit_stats(program_factory: Callable[[], Program], depth: int,
               history: int, k_com: int, trials: int, base_seed: int,
               max_steps: int) -> tuple:
    hits = 0
    witness = -1
    for i in range(trials):
        seed = derive_trial_seed(base_seed, i)
        result = run_once(program_factory(),
                          PCTWMScheduler(depth, k_com, history, seed=seed),
                          keep_graph=False, max_steps=max_steps)
        if result.bug_found:
            hits += 1
            if witness < 0:
                witness = seed
    return hits, witness


def minimize_configuration(program_factory: Callable[[], Program],
                           depth: int = 4, history: int = 4,
                           k_com: Optional[int] = None,
                           trials: int = 150, base_seed: int = 0,
                           max_steps: int = 20000,
                           ) -> Optional[MinimalConfig]:
    """Find the smallest (depth, history) that still reproduces the bug.

    Greedy descent: first shrink ``depth`` (the dominant parameter in the
    Section 5.4 bound), then ``history``.  Returns None when the starting
    configuration itself never hits within the trial budget.
    """
    if depth < 0 or history < 1:
        raise ValueError("need depth >= 0 and history >= 1")
    if k_com is None:
        k_com = estimate_parameters(program_factory(),
                                    seed=base_seed).k_com

    def hits_at(d: int, h: int) -> tuple:
        return _hit_stats(program_factory, d, h, k_com, trials,
                          base_seed, max_steps)

    hits, witness = hits_at(depth, history)
    if hits == 0:
        return None
    best = (depth, history, hits, witness)
    # Shrink depth first: the guarantee is exponential in d.
    d = depth
    while d > 0:
        hits, witness = hits_at(d - 1, history)
        if hits == 0:
            break
        d -= 1
        best = (d, history, hits, witness)
    # Then shrink history at the minimal depth.
    h = history
    while h > 1:
        hits, witness = hits_at(best[0], h - 1)
        if hits == 0:
            break
        h -= 1
        best = (best[0], h, hits, witness)
    return MinimalConfig(
        depth=best[0], history=best[1], k_com=k_com,
        hit_rate=best[2] / trials, witness_seed=best[3],
    )
