"""Minimization: shrink a found bug to its simplest repro.

Two complementary minimizers:

* :func:`minimize_configuration` shrinks the PCTWM *parameters* (d, h) —
  the smallest reproducing configuration is the empirical bug depth /
  history demand, the most useful thing to put in a bug report
  (Definition 4 of the paper, operationalized per bug);
* :func:`minimize_trace` shrinks a recorded *decision trace* — greedy
  delta-debugging over the decision list, keeping only deletions after
  which the replay still produces the identical bug.  The result is
  never longer than the input and itself replays to the same outcome.

    config = minimize_configuration(program_factory, depth=4, history=4)
    config.depth, config.history, config.hit_rate, config.witness_seed

    short = minimize_trace(program_factory, trace)
    assert len(short) <= len(trace)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Tuple

from ..core.depth import estimate_parameters
from ..core.pctwm import PCTWMScheduler
from ..harness.seeding import derive_trial_seed
from ..memory.model import resolve_model
from ..runtime.errors import ReproError
from ..runtime.executor import RunResult, run_once
from ..runtime.program import Program
from .trace import Trace


@dataclass(frozen=True)
class MinimalConfig:
    """The smallest PCTWM configuration that reproduces the bug."""

    depth: int
    history: int
    k_com: int
    hit_rate: float
    witness_seed: int

    def __str__(self) -> str:  # pragma: no cover - reporting aid
        return (
            f"d={self.depth}, h={self.history} (k_com={self.k_com}): "
            f"{100 * self.hit_rate:.1f}% hit rate, witness seed "
            f"{self.witness_seed}"
        )


def _hit_stats(program_factory: Callable[[], Program], depth: int,
               history: int, k_com: int, trials: int, base_seed: int,
               max_steps: int) -> tuple:
    hits = 0
    witness = -1
    for i in range(trials):
        seed = derive_trial_seed(base_seed, i)
        result = run_once(program_factory(),
                          PCTWMScheduler(depth, k_com, history, seed=seed),
                          keep_graph=False, max_steps=max_steps)
        if result.bug_found:
            hits += 1
            if witness < 0:
                witness = seed
    return hits, witness


def minimize_configuration(program_factory: Callable[[], Program],
                           depth: int = 4, history: int = 4,
                           k_com: Optional[int] = None,
                           trials: int = 150, base_seed: int = 0,
                           max_steps: int = 20000,
                           ) -> Optional[MinimalConfig]:
    """Find the smallest (depth, history) that still reproduces the bug.

    Greedy descent: first shrink ``depth`` (the dominant parameter in the
    Section 5.4 bound), then ``history``.  Returns None when the starting
    configuration itself never hits within the trial budget.
    """
    if depth < 0 or history < 1:
        raise ValueError("need depth >= 0 and history >= 1")
    if k_com is None:
        k_com = estimate_parameters(program_factory(),
                                    seed=base_seed).k_com

    def hits_at(d: int, h: int) -> tuple:
        return _hit_stats(program_factory, d, h, k_com, trials,
                          base_seed, max_steps)

    hits, witness = hits_at(depth, history)
    if hits == 0:
        return None
    best = (depth, history, hits, witness)
    # Shrink depth first: the guarantee is exponential in d.
    d = depth
    while d > 0:
        hits, witness = hits_at(d - 1, history)
        if hits == 0:
            break
        d -= 1
        best = (d, history, hits, witness)
    # Then shrink history at the minimal depth.
    h = history
    while h > 1:
        hits, witness = hits_at(best[0], h - 1)
        if hits == 0:
            break
        h -= 1
        best = (best[0], h, hits, witness)
    return MinimalConfig(
        depth=best[0], history=best[1], k_com=k_com,
        hit_rate=best[2] / trials, witness_seed=best[3],
    )


# -- greedy delta debugging ----------------------------------------------------


def greedy_ddmin(items: List, test: Callable[[List], Optional[List]]) -> List:
    """Greedy ddmin-style descent over a list of items.

    Attempts chunk deletions (halving the chunk size down to single
    items).  ``test`` receives a candidate list and returns an *accepted*
    list — the candidate, possibly trimmed further — to keep the
    deletion, or ``None`` to reject it.  Shared by the decision-trace
    minimizer below and the fuzzer's plan-level instruction shrinker
    (:mod:`repro.fuzz.shrink`).

    The result is never longer than the input and always satisfied
    ``test`` at its last acceptance (or is the input itself, when no
    deletion was ever accepted).
    """
    best = list(items)
    chunk = max(1, len(best) // 4)
    while chunk >= 1:
        i = 0
        while i < len(best):
            candidate = best[:i] + best[i + chunk:]
            if not candidate:
                i += chunk
                continue
            accepted = test(candidate)
            if accepted is not None:
                best = list(accepted)
            else:
                i += chunk
        chunk //= 2
    return best


# -- trace minimization --------------------------------------------------------


def _bug_signature(result: RunResult) -> tuple:
    return (result.bug_found, result.bug_kind, result.bug_message)


def _replay_decisions(program_factory: Callable[[], Program],
                      trace: Trace, decisions: List[Tuple[str, int]],
                      max_steps: int, model: str = "c11",
                      ) -> Tuple[Optional[RunResult], int]:
    """Replay a candidate decision list; ``(None, 0)`` on divergence.

    Returns the run result plus how many decisions were actually
    consumed, so callers can trim unused tails.
    """
    from .recording import ReplayScheduler  # local: recording imports us not

    candidate = replace(trace, decisions=list(decisions))
    scheduler = ReplayScheduler(candidate)
    try:
        result = resolve_model(model).run_once(
            program_factory(), scheduler, max_steps=max_steps,
            spin_threshold=trace.spin_threshold,
            keep_graph=False)
    except ReproError:
        return None, 0
    return result, scheduler.consumed


def minimize_trace(program_factory: Callable[[], Program], trace: Trace,
                   max_steps: int = 20000, model: str = "c11") -> Trace:
    """Shrink a bug-reproducing trace while preserving its outcome.

    Greedy ddmin-style descent: attempt chunk deletions (halving the
    chunk size down to single decisions) and keep any deletion after
    which the replay still reproduces the identical bug
    ``(bug_found, bug_kind, bug_message)``.  Accepted candidates are
    trimmed to their consumed prefix, so the result always replays
    cleanly (fully consumed) and is never longer than the input.

    Traces whose replay finds no bug are returned unchanged (there is no
    outcome to preserve — deleting everything would trivially "work").
    """
    base, used = _replay_decisions(program_factory, trace,
                                   list(trace.decisions), max_steps, model)
    if base is None:
        raise ValueError("trace does not replay against this program")
    if not base.bug_found:
        return trace
    target = _bug_signature(base)

    def test(shorter: List[Tuple[str, int]]) -> Optional[List[Tuple[str, int]]]:
        result, consumed = _replay_decisions(program_factory, trace,
                                             shorter, max_steps, model)
        if result is not None and result.bug_found \
                and _bug_signature(result) == target:
            return shorter[:consumed]
        return None

    best = greedy_ddmin(list(trace.decisions[:used]), test)
    return replace(trace, decisions=best)
