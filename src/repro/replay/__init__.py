"""Record/replay: make any randomized bug-finding run reproducible."""

from .minimize import (
    MinimalConfig,
    greedy_ddmin,
    minimize_configuration,
    minimize_trace,
)
from .recording import (
    RecordingScheduler,
    ReplayScheduler,
    find_and_record,
    record_run,
    replay_run,
)
from .trace import Trace

__all__ = [
    "MinimalConfig",
    "RecordingScheduler",
    "ReplayScheduler",
    "Trace",
    "find_and_record",
    "greedy_ddmin",
    "minimize_configuration",
    "minimize_trace",
    "record_run",
    "replay_run",
]
