"""Serializable decision traces.

A randomized test run is fully determined by the sequence of scheduler
decisions: which thread stepped, and which visible write each read
observed (recorded as an index into the candidate list, which is itself a
deterministic function of the prior decisions).  Recording that sequence
makes any found bug replayable and shareable as JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Tuple

#: Decision kinds.
THREAD = "t"
READ = "r"


@dataclass
class Trace:
    """An ordered list of scheduler decisions plus provenance metadata."""

    program: str = ""
    scheduler: str = ""
    seed: int = 0
    #: The spin threshold the recording ran under.  Replaying with a
    #: different threshold changes when the livelock heuristic promotes
    #: reads to global visibility, which silently changes the candidate
    #: lists the recorded indices point into — so replay defaults to this.
    spin_threshold: int = 8
    decisions: List[Tuple[str, int]] = field(default_factory=list)

    def record_thread(self, tid: int) -> None:
        self.decisions.append((THREAD, tid))

    def record_read(self, candidate_index: int) -> None:
        self.decisions.append((READ, candidate_index))

    def __len__(self) -> int:
        return len(self.decisions)

    # -- serialization -------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "program": self.program,
            "scheduler": self.scheduler,
            "seed": self.seed,
            "spin_threshold": self.spin_threshold,
            "decisions": self.decisions,
        })

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        raw = json.loads(text)
        return cls.from_obj(raw)

    @classmethod
    def from_obj(cls, raw: dict) -> "Trace":
        """Build a trace from an already-decoded JSON object."""
        decisions = [(kind, int(value)) for kind, value in raw["decisions"]]
        for kind, _value in decisions:
            if kind not in (THREAD, READ):
                raise ValueError(f"unknown decision kind {kind!r}")
        return cls(
            program=raw.get("program", ""),
            scheduler=raw.get("scheduler", ""),
            seed=int(raw.get("seed", 0)),
            spin_threshold=int(raw.get("spin_threshold", 8)),
            decisions=decisions,
        )

    def to_obj(self) -> dict:
        """JSON-ready dict form (the inverse of :meth:`from_obj`)."""
        return {
            "program": self.program,
            "scheduler": self.scheduler,
            "seed": self.seed,
            "spin_threshold": self.spin_threshold,
            "decisions": [list(d) for d in self.decisions],
        }
