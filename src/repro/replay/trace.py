"""Serializable decision traces.

A randomized test run is fully determined by the sequence of scheduler
decisions: which thread stepped, and which visible write each read
observed (recorded as an index into the candidate list, which is itself a
deterministic function of the prior decisions).  Recording that sequence
makes any found bug replayable and shareable as JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Tuple

#: Decision kinds.
THREAD = "t"
READ = "r"


@dataclass
class Trace:
    """An ordered list of scheduler decisions plus provenance metadata."""

    program: str = ""
    scheduler: str = ""
    seed: int = 0
    decisions: List[Tuple[str, int]] = field(default_factory=list)

    def record_thread(self, tid: int) -> None:
        self.decisions.append((THREAD, tid))

    def record_read(self, candidate_index: int) -> None:
        self.decisions.append((READ, candidate_index))

    def __len__(self) -> int:
        return len(self.decisions)

    # -- serialization -------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "program": self.program,
            "scheduler": self.scheduler,
            "seed": self.seed,
            "decisions": self.decisions,
        })

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        raw = json.loads(text)
        decisions = [(kind, int(value)) for kind, value in raw["decisions"]]
        for kind, _value in decisions:
            if kind not in (THREAD, READ):
                raise ValueError(f"unknown decision kind {kind!r}")
        return cls(
            program=raw.get("program", ""),
            scheduler=raw.get("scheduler", ""),
            seed=int(raw.get("seed", 0)),
            decisions=decisions,
        )
