"""The paper's contribution: PCTWM and its comparison schedulers."""

from .ablations import (
    PCTWMEagerViews,
    PCTWMFullBagJoin,
    PCTWMNoDelay,
    PCTWMUnboundedHistory,
)
from .c11tester import C11TesterScheduler
from .depth import ParameterEstimate, empirical_bug_depth, estimate_parameters
from .factory import SCHEDULER_REGISTRY, SchedulerSpec, make_scheduler
from .guarantees import (
    naive_detection_probability,
    pct_lower_bound,
    pct_sample_space,
    pctwm_loose_bound,
    pctwm_lower_bound,
    pctwm_sample_space,
)
from .naive import NaiveRandomScheduler
from .pct import PCTScheduler
from .pctwm import PCTWMScheduler
from .pos import POSScheduler
from .ppct import PPCTScheduler
from .priorities import PriorityScheduler
from .views import View

__all__ = [
    "C11TesterScheduler",
    "SCHEDULER_REGISTRY",
    "SchedulerSpec",
    "make_scheduler",
    "PCTWMEagerViews",
    "PCTWMFullBagJoin",
    "PCTWMNoDelay",
    "PCTWMUnboundedHistory",
    "NaiveRandomScheduler",
    "PCTScheduler",
    "PCTWMScheduler",
    "POSScheduler",
    "PPCTScheduler",
    "ParameterEstimate",
    "PriorityScheduler",
    "View",
    "empirical_bug_depth",
    "estimate_parameters",
    "naive_detection_probability",
    "pct_lower_bound",
    "pct_sample_space",
    "pctwm_loose_bound",
    "pctwm_lower_bound",
    "pctwm_sample_space",
]
