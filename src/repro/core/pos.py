"""Partial Order Sampling (POS) — an additional randomized baseline.

The paper's related work (Section 7) cites the POS algorithm (Yuan, Yang,
Gu — CAV 2018) as the other randomized tester with theoretical probability
bounds.  This is the classic priority-based formulation adapted to our
runtime: every *pending operation* gets an independent uniform priority
when it first becomes pending, the scheduler always executes the enabled
operation with the highest priority, and — following the paper's
weak-memory adaptation of PCT — reads sample uniformly over the visible
write set.

Compared to PCT's thread priorities, POS's per-event priorities sample
partial orders more uniformly; compared to PCTWM it has no communication
bounding, so it inherits PCT's dilution under many visible writes
(Figure 6's effect).  Included as an extension baseline; not part of the
paper's evaluation.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..memory.events import Event
from ..runtime.scheduler import ReadContext, Scheduler


class POSScheduler(Scheduler):
    """Per-event random priorities; highest-priority enabled op runs."""

    name = "pos"

    def __init__(self, seed: Optional[int] = None):
        super().__init__(seed)
        self._priorities: Dict[int, float] = {}

    def on_run_start(self, state) -> None:
        self._priorities = {}

    def _priority_of(self, op) -> float:
        key = op.uid
        if key not in self._priorities:
            self._priorities[key] = self.rng.random()
        return self._priorities[key]

    def choose_thread(self, state) -> int:
        enabled = state.enabled_tids()
        return max(
            enabled,
            key=lambda tid: (self._priority_of(state.peek(tid)), -tid),
        )

    def choose_read_from(self, state, ctx: ReadContext) -> Event:
        return self.rng.choice(ctx.candidates)

    def on_event_executed(self, state, event, info) -> None:
        op = info.get("op")
        if op is not None:
            self._priorities.pop(op.uid, None)
