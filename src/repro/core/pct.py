"""The PCT baseline, adapted to weak memory as in the paper's evaluation.

The original PCT algorithm (Burckhardt et al., ASPLOS 2010) assigns random
priorities to threads, runs the highest-priority enabled thread, and lowers
the running thread's priority at ``d-1`` random steps out of the ``k``
program events.  It guarantees detecting a depth-``d`` bug with probability
at least ``1/(t · k^(d-1))``.

The paper's evaluation (Section 6) uses a *weak-memory variant*: scheduling
is exactly PCT, but "the read operations do not necessarily read the last
written value on a variable — they read any of the observable values under
the given memory model, selected uniformly at random".  That is what this
class implements: PCT priorities + uniform choice over the full
coherence-visible write set.
"""

from __future__ import annotations

from typing import Optional, Set

from ..memory.events import Event
from ..runtime.scheduler import ReadContext
from .priorities import PriorityScheduler


class PCTScheduler(PriorityScheduler):
    """PCT priorities; reads sample uniformly over all visible writes.

    Parameters mirror the artifact's CLI: ``depth`` is ``-b`` (bug depth)
    and ``k_events`` is ``-l`` (the estimated number of shared accesses,
    from which the ``d-1`` priority-change points are drawn).
    """

    name = "pct"

    def __init__(self, depth: int, k_events: int,
                 seed: Optional[int] = None):
        super().__init__(depth, seed)
        if k_events < 1:
            raise ValueError("k_events must be >= 1")
        self.k_events = k_events
        self._change_points: Set[int] = set()
        self._slots: dict = {}
        self._executed = 0

    # -- lifecycle -----------------------------------------------------------

    def on_run_start(self, state) -> None:
        self.assign_initial_priorities([t.tid for t in state.threads])
        self._executed = 0
        count = max(self.depth - 1, 0)
        universe = range(1, max(self.k_events, count) + 1)
        points = sorted(self.rng.sample(list(universe), count))
        # The j-th change point (in firing order) moves its thread to slot
        # d-1-j, so later change points produce lower priorities.
        self._slots = {p: self.depth - 1 - j for j, p in enumerate(points)}
        self._change_points = set(points)

    def on_event_executed(self, state, event: Event, info: dict) -> None:
        self._executed += 1

    # -- decisions ------------------------------------------------------------

    def choose_thread(self, state) -> int:
        while True:
            tid = self.highest_priority_enabled(state)
            diverted = self.divert_if_spinning(state, tid)
            if diverted is not None:
                return diverted
            step = self._executed + 1
            if step in self._change_points:
                self._change_points.discard(step)
                self.lower_priority(tid, self._slots[step])
                continue
            return tid

    def choose_read_from(self, state, ctx: ReadContext) -> Event:
        return self.rng.choice(ctx.candidates)
