"""Theoretical probability guarantees (Sections 2.2 and 5.4).

* PCT detects a depth-``d`` bug with probability ≥ ``1/(t · k^(d-1))``.
* PCTWM samples a given ``h``-bounded ``d``-communication execution with
  probability ≥ ``1/O((h · k_com)^d)``: it picks an ordered tuple of ``d``
  sinks out of ``C(k_com, d) · d! ≤ k_com^d`` possibilities and, for each
  sink, one of ``h`` sources.

These bounds are *lower* bounds on hitting one particular target execution;
tests check that empirical hit rates respect them on small programs.
"""

from __future__ import annotations

from math import comb, factorial, perm


def pct_sample_space(t: int, k: int, d: int) -> int:
    """Size bound of PCT's sample set: ``t · k^(d-1)``."""
    _validate(t=t, k=k, d=d)
    return t * k ** max(d - 1, 0)


def pct_lower_bound(t: int, k: int, d: int) -> float:
    """PCT's guaranteed bug-detection probability ``1/(t · k^(d-1))``."""
    return 1.0 / pct_sample_space(t, k, d)


def pctwm_sample_space(k_com: int, d: int, h: int) -> int:
    """Exact count of PCTWM's sampled configurations.

    ``C(k_com, d) · d!`` ordered sink tuples times ``h^d`` source choices.
    For ``d = 0`` this is 1: the single no-communication execution.
    """
    _validate(k_com=k_com, d=d, h=h)
    if d > k_com:
        raise ValueError("cannot select more sinks than communication events")
    return comb(k_com, d) * factorial(d) * h ** d


def pctwm_lower_bound(k_com: int, d: int, h: int) -> float:
    """PCTWM's guaranteed sampling probability ``1/(P(k_com,d) · h^d)``."""
    return 1.0 / pctwm_sample_space(k_com, d, h)


def pctwm_loose_bound(k_com: int, d: int, h: int) -> float:
    """The paper's looser closed form ``1/(h · k_com)^d``.

    ``P(k_com, d) ≤ k_com^d`` so this is always ≤ the exact bound.
    """
    _validate(k_com=k_com, d=d, h=h)
    return 1.0 / (h * k_com) ** d if d else 1.0


def naive_detection_probability(choices: int, length: int) -> float:
    """Naive random walk: probability ``(1/choices)^length`` (Section 2.2).

    Program P1's bug needs the first thread chosen at all ``k`` scheduling
    points among 2 enabled threads: probability ``1/2^k``.
    """
    if choices < 1 or length < 0:
        raise ValueError("choices must be >= 1 and length >= 0")
    return (1.0 / choices) ** length


def _validate(**kwargs: int) -> None:
    for name, value in kwargs.items():
        minimum = 0 if name == "d" else 1
        if value < minimum:
            raise ValueError(f"{name} must be >= {minimum}, got {value}")


__all__ = [
    "naive_detection_probability",
    "pct_lower_bound",
    "pct_sample_space",
    "pctwm_loose_bound",
    "pctwm_lower_bound",
    "pctwm_sample_space",
]

# `perm` is re-exported for callers computing ordered-tuple counts directly.
_ = perm
