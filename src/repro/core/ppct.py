"""PPCT — parallel PCT (related-work baseline).

The paper's related work cites PPCT [Nagarakatte, Burckhardt, Martin,
Musuvathi — PLDI 2012]: instead of serializing all threads by strict
priority, PPCT keeps all non-lowered threads runnable *in parallel* and
only the ``d-1`` change points demote threads below the parallel band.
On a serializing engine "parallel" means the runnable band interleaves
uniformly — the scheduler constrains only who is in the band.

Reads sample uniformly over the visible set (the same weak-memory
adaptation the paper applies to PCT).  Included as an extension baseline;
not part of the paper's evaluation.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..memory.events import Event
from ..runtime.scheduler import ReadContext, Scheduler


class PPCTScheduler(Scheduler):
    """Parallel band + d−1 demotion points."""

    name = "ppct"

    def __init__(self, depth: int, k_events: int,
                 seed: Optional[int] = None):
        super().__init__(seed)
        if depth < 0:
            raise ValueError("depth must be >= 0")
        if k_events < 1:
            raise ValueError("k_events must be >= 1")
        self.depth = depth
        self.k_events = k_events
        self._lowered: Dict[int, int] = {}   # tid -> demotion slot
        self._changes: Dict[int, int] = {}   # event index -> slot
        self._executed = 0

    def on_run_start(self, state) -> None:
        self._lowered = {}
        self._executed = 0
        count = max(self.depth - 1, 0)
        universe = list(range(1, max(self.k_events, count) + 1))
        points = sorted(self.rng.sample(universe, count))
        self._changes = {p: self.depth - 1 - j
                         for j, p in enumerate(points)}

    def on_event_executed(self, state, event: Event, info: dict) -> None:
        self._executed += 1

    def choose_thread(self, state) -> int:
        enabled = state.enabled_tids()
        band = [tid for tid in enabled if tid not in self._lowered]
        while True:
            if band:
                tid = self.rng.choice(band)
            else:
                # Only demoted threads remain: run them by slot order.
                tid = max(enabled, key=lambda t: self._lowered[t])
            point = self._executed + 1
            slot = self._changes.pop(point, None)
            if slot is not None:
                self._lowered[tid] = slot
                band = [t for t in enabled if t not in self._lowered]
                continue
            return tid

    def choose_read_from(self, state, ctx: ReadContext) -> Event:
        return self.rng.choice(ctx.candidates)
