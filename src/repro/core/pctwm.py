"""PCTWM: Probabilistic Concurrency Testing for Weak Memory (Section 5).

PCTWM samples a test execution with ``d`` history-bounded communication
relations:

* Threads run by strict random priority (as in PCT), but the priority-change
  points are placed at ``d`` randomly chosen *communication events* out of
  the estimated ``k_com`` (Algorithm 1).  A selected event's thread is
  delayed below every initial priority — slot ``d-k`` for the ``k``-th tuple
  entry — so the selected sinks execute as late as possible and in tuple
  order.
* Every thread maintains a local *view* (Definition 1); events snapshot the
  view into their *bag* when they execute (Algorithm 2 line 26).
* A read that was selected as a communication sink (the ``reordered`` set)
  reads globally from a visible write within history depth ``h``; every
  other read reads from its thread-local view (``readLocal``), so the
  amount of inter-thread communication is exactly what the ``d`` sampled
  relations allow.
* View propagation follows Algorithm 2: a synchronizing read joins the
  whole bag of the communication source; a relaxed external read joins only
  the read location's entry; acquire fences join the bags of all their sw
  sources; SC events join the bag of their SC-predecessor; release fences
  propagate nothing.

Deviations forced by the substrate (documented in DESIGN.md):

* RMW/CAS reads always observe the mo-maximal write, because modification
  order is append-only and the atomicity axiom requires ``fr; mo = ∅``.
  When that write is external, the view update still follows Algorithm 2's
  external-read rules.
* The livelock heuristic (Section 6.2): when a read site spins, the
  scheduler switches to a random other thread *and* lets the spinning read
  read globally; otherwise a wait loop could never observe the value it
  waits for.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..memory.events import Event
from ..runtime.ops import is_communication_op
from ..runtime.scheduler import ReadContext
from .priorities import PriorityScheduler
from .views import View


class PCTWMScheduler(PriorityScheduler):
    """Algorithm 1 (scheduling) + Algorithm 2 (view maintenance).

    Parameters mirror the artifact's CLI: ``depth`` is ``-d``, ``k_com`` is
    ``-k`` (estimated number of communication events), ``history`` is ``-y``
    and ``seed`` is ``-s``.
    """

    name = "pctwm"

    def __init__(self, depth: int, k_com: int, history: int = 1,
                 seed: Optional[int] = None):
        super().__init__(depth, seed)
        if k_com < 1:
            raise ValueError("k_com must be >= 1")
        if history < 1:
            raise ValueError("history depth must be >= 1")
        self.k_com = k_com
        self.history = history
        # Per-run state, reset by on_run_start.
        self._i = 0
        self._counted: Set[int] = set()
        self._reordered: Set[int] = set()
        self._slot_by_count: Dict[int, int] = {}
        self._views: Dict[int, View] = {}
        self._bags: Dict[int, View] = {}
        self._last_sc: Optional[Event] = None

    # -- lifecycle ------------------------------------------------------------

    def on_run_start(self, state) -> None:
        self.assign_initial_priorities([t.tid for t in state.threads])
        self._i = 0
        self._counted = set()
        self._reordered = set()
        self._last_sc = None
        universe = range(1, max(self.k_com, self.depth) + 1)
        points = self.rng.sample(list(universe), self.depth)
        # Tuple entry d_k (1-based k) maps to priority slot d-k: the first
        # tuple entry gets the highest of the low slots, so the selected
        # sinks execute in tuple order (Algorithm 1, lines 10-11).
        self._slot_by_count = {
            point: self.depth - (k + 1) for k, point in enumerate(points)
        }
        self._views = {
            t.tid: View(state.init_writes) for t in state.threads
        }
        self._bags = {}

    def on_thread_created(self, state, tid: int, parent_tid: int) -> None:
        super().on_thread_created(state, tid, parent_tid)
        # The child inherits the parent's view: the spawn edge is hb, so
        # everything the parent observed is available to the child.
        self._views[tid] = self._views[parent_tid].copy()

    # -- Algorithm 1: thread selection ---------------------------------------

    def choose_thread(self, state) -> int:
        while True:
            tid = self.highest_priority_enabled(state)
            diverted = self.divert_if_spinning(state, tid)
            if diverted is not None:
                return diverted
            op = state.peek(tid)
            if op is not None and is_communication_op(op) \
                    and op.uid not in self._counted:
                self._counted.add(op.uid)
                self._i += 1
                slot = self._slot_by_count.get(self._i)
                if slot is not None:
                    self.lower_priority(tid, slot)
                    self._reordered.add(op.uid)
                    continue
            return tid

    # -- Algorithm 2: read behaviour -------------------------------------------

    def choose_read_from(self, state, ctx: ReadContext) -> Event:
        view = self._views[ctx.tid]
        if ctx.order.is_seq_cst and self._last_sc is not None:
            # getSC: an SC event first absorbs its SC-predecessor's bag
            # (lines 6-8), so readLocal below observes the SC history.
            view.join(self._bags.get(self._last_sc.uid))
        if ctx.op.uid in self._reordered or ctx.spinning:
            return self._read_global(ctx)
        return self._read_local(view, ctx)

    def _read_global(self, ctx: ReadContext) -> Event:
        """readGlobal: uniform choice within history depth h (line 12)."""
        bounded = ctx.candidates[-self.history:]
        return self.rng.choice(bounded)

    def _read_local(self, view: View, ctx: ReadContext) -> Event:
        """readLocal: the thread's own view entry (line 19).

        The view entry is always coherence-visible (view joins accompany
        every clock join), but we clamp defensively to the coherence floor
        in case a program mixes paradigms the view does not model (e.g.
        values learned through thread join).
        """
        entry = view.get(ctx.loc)
        floor = ctx.candidates[0]
        if entry.mo_index < floor.mo_index:
            return floor
        return entry

    # -- Algorithm 2: view updates ------------------------------------------------

    def on_event_executed(self, state, event: Event, info: dict) -> None:
        tid = event.tid
        view = self._views[tid]
        op = info.get("op")
        if event.is_sc and (event.is_write or event.is_fence):
            # SC reads joined their predecessor's bag in choose_read_from.
            if self._last_sc is not None:
                view.join(self._bags.get(self._last_sc.uid))
        if event.is_read:
            self._apply_read_update(state, view, event, op, info)
        if event.is_write:
            # Lines 4-5: the thread now holds its own write for this loc.
            view.set(event.loc, event)
        if event.is_acquire_fence:
            # Lines 20-23: join the bags of every sw source.
            for source in info.get("fence_sync_sources", ()):
                view.join(self._bags.get(source.uid))
        # Release fences (line 25): no update.
        # Line 26: snapshot the view as this event's bag.
        self._bags[event.uid] = view.copy()
        if event.is_sc:
            self._last_sc = event
        if op is not None:
            self._reordered.discard(op.uid)

    def _apply_read_update(self, state, view: View, event: Event,
                           op, info: dict) -> None:
        source = event.reads_from
        if source is None:
            return
        external = (
            (op is not None and op.uid in self._reordered)
            or info.get("spinning", False)
            or info.get("rmw", False)
        )
        if not external and view.get(event.loc) is source:
            # readLocal: the thread already held this write; no update.
            return
        if info.get("sync_source") is not None:
            # Line 14: sw formed — join the source's whole bag.
            view.join(self._bags.get(info["sync_source"].uid))
            view.join_loc(event.loc, source)
        else:
            # Line 16: relaxed external read — join only this location.
            bag = self._bags.get(source.uid)
            if bag is not None:
                view.join_loc(event.loc, bag.get(event.loc))
            view.join_loc(event.loc, source)
