"""PCTWM: Probabilistic Concurrency Testing for Weak Memory (Section 5).

PCTWM samples a test execution with ``d`` history-bounded communication
relations:

* Threads run by strict random priority (as in PCT), but the priority-change
  points are placed at ``d`` randomly chosen *communication events* out of
  the estimated ``k_com`` (Algorithm 1).  A selected event's thread is
  delayed below every initial priority — slot ``d-k`` for the ``k``-th tuple
  entry — so the selected sinks execute as late as possible and in tuple
  order.
* Every thread maintains a local *view* (Definition 1); events snapshot the
  view into their *bag* when they execute (Algorithm 2 line 26).
* A read that was selected as a communication sink (the ``reordered`` set)
  reads globally from a visible write within history depth ``h``; every
  other read reads from its thread-local view (``readLocal``), so the
  amount of inter-thread communication is exactly what the ``d`` sampled
  relations allow.
* View propagation follows Algorithm 2: a synchronizing read joins the
  whole bag of the communication source; a relaxed external read joins only
  the read location's entry; acquire fences join the bags of all their sw
  sources; SC events join the bag of their SC-predecessor; release fences
  propagate nothing.

Deviations forced by the substrate (documented in DESIGN.md):

* RMW/CAS reads always observe the mo-maximal write, because modification
  order is append-only and the atomicity axiom requires ``fr; mo = ∅``.
  When that write is external, the view update still follows Algorithm 2's
  external-read rules.
* The livelock heuristic (Section 6.2): when a read site spins, the
  scheduler switches to a random other thread *and* lets the spinning read
  read globally; otherwise a wait loop could never observe the value it
  waits for.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..memory.events import Event
from ..runtime.scheduler import ReadContext
from .priorities import PriorityScheduler
from .views import FastView, View


class PCTWMScheduler(PriorityScheduler):
    """Algorithm 1 (scheduling) + Algorithm 2 (view maintenance).

    Parameters mirror the artifact's CLI: ``depth`` is ``-d``, ``k_com`` is
    ``-k`` (estimated number of communication events), ``history`` is ``-y``
    and ``seed`` is ``-s``.
    """

    name = "pctwm"

    def __init__(self, depth: int, k_com: int, history: int = 1,
                 seed: Optional[int] = None):
        super().__init__(depth, seed)
        if k_com < 1:
            raise ValueError("k_com must be >= 1")
        if history < 1:
            raise ValueError("history depth must be >= 1")
        self.k_com = k_com
        self.history = history
        # Per-run state, reset by on_run_start.
        self._i = 0
        self._counted: Set[int] = set()
        self._reordered: Set[int] = set()
        self._slot_by_count: Dict[int, int] = {}
        self._views: Dict[int, View] = {}
        self._bags: Dict[int, View] = {}
        self._last_sc: Optional[Event] = None
        #: Memoized communication-sink candidate sets (readGlobal's
        #: h-bounded visible writes) per (tid, loc); an entry is valid
        #: while no write lands at the location and the reader's clock is
        #: unchanged, so it is invalidated only by writes to the sampled
        #: location or by the reader synchronizing.
        self._sink_candidates: Dict = {}
        #: Per-tid (view, version, snapshot): consecutive events that left
        #: the thread's view untouched share one immutable bag snapshot
        #: instead of copying the view per event (bags are never mutated
        #: after the snapshot, so sharing is safe).
        self._bag_cache: Dict = {}
        self._fast = True
        #: Whether this instance uses the base read-update rule; when an
        #: ablation overrides ``_apply_read_update``, ``on_event_executed``
        #: dispatches to it instead of the inlined base logic.
        self._base_read_update = (
            type(self)._apply_read_update is PCTWMScheduler._apply_read_update
        )

    # -- lifecycle ------------------------------------------------------------

    def on_run_start(self, state) -> None:
        self.assign_initial_priorities([t.tid for t in state.threads])
        self._i = 0
        self._counted = set()
        self._reordered = set()
        self._last_sc = None
        universe = range(1, max(self.k_com, self.depth) + 1)
        points = self.rng.sample(list(universe), self.depth)
        # Tuple entry d_k (1-based k) maps to priority slot d-k: the first
        # tuple entry gets the highest of the low slots, so the selected
        # sinks execute in tuple order (Algorithm 1, lines 10-11).
        self._slot_by_count = {
            point: self.depth - (k + 1) for k, point in enumerate(points)
        }
        # The fast engine uses array-backed views over the graph's dense
        # location ids; the reference engine keeps Definition 1's dict
        # views.  Both implement the same join semilattice, so the
        # scheduler's choices are identical either way (the differential
        # suite enforces this).
        self._fast = getattr(state, "fast", True) and hasattr(state, "graph")
        if self._fast:
            # Reuse last run's FastViews when the campaign runner pooled
            # the execution state (same graph object, freshly reset):
            # reset() rewinds each view to all-init in place instead of
            # reallocating the index vectors every trial.
            prior = self._views
            views = {}
            for t in state.threads:
                view = prior.get(t.tid)
                if type(view) is FastView and view._graph is state.graph:
                    view.reset()
                else:
                    view = FastView(state.graph)
                views[t.tid] = view
            self._views = views
        else:
            self._views = {
                t.tid: View(state.init_writes) for t in state.threads
            }
        self._bags = {}
        self._sink_candidates = {}
        self._bag_cache = {}

    def on_thread_created(self, state, tid: int, parent_tid: int) -> None:
        super().on_thread_created(state, tid, parent_tid)
        # The child inherits the parent's view: the spawn edge is hb, so
        # everything the parent observed is available to the child.
        self._views[tid] = self._views[parent_tid].copy()

    # -- Algorithm 1: thread selection ---------------------------------------

    def choose_thread(self, state) -> int:
        # Runs once per step — the highest-priority scan, the spin check,
        # and the isCommunicationEvent predicate are inlined (each was a
        # call per step; semantics identical to the helpers they mirror).
        priorities = self._priorities
        counted = self._counted
        threads = state.threads
        spins = state.spins
        fast = self._fast
        while True:
            enabled = state._enabled_cache if fast else None
            if enabled is None:
                enabled = state.enabled_tids()
            tid = -1
            best_p = None
            for t in enabled:
                p = priorities[t]
                if best_p is None or p > best_p:
                    tid, best_p = t, p
            if not fast or spins._hot:
                # Fast engine: SpinTracker's hot counter is 0 until some
                # site crosses the spin threshold, so the divert call can
                # be skipped entirely (is_spinning would be False for
                # every site).  Duck-typed states fall back to the
                # unconditional call.
                diverted = self.divert_if_spinning(state, tid)
                if diverted is not None:
                    return diverted
            op = threads[tid].pending
            if op is not None and op.uid not in counted:
                comm = op._comm
                if comm is True:
                    is_comm = True
                elif comm is False:
                    is_comm = False
                elif comm == "store":
                    is_comm = op.order.is_seq_cst
                else:  # "fence"
                    order = op.order
                    is_comm = order.is_acquire or order.is_seq_cst
                if is_comm:
                    counted.add(op.uid)
                    self._i += 1
                    slot = self._slot_by_count.get(self._i)
                    if slot is not None:
                        self.lower_priority(tid, slot)
                        self._reordered.add(op.uid)
                        continue
            return tid

    # -- Algorithm 2: read behaviour -------------------------------------------

    def choose_read_from(self, state, ctx: ReadContext) -> Event:
        view = self._views[ctx.tid]
        if ctx.order.is_seq_cst and self._last_sc is not None:
            # getSC: an SC event first absorbs its SC-predecessor's bag
            # (lines 6-8), so readLocal below observes the SC history.
            view.join(self._bags.get(self._last_sc.uid))
        if ctx.op.uid in self._reordered or ctx.spinning:
            return self._read_global(ctx)
        return self._read_local(view, ctx)

    def _read_global(self, ctx: ReadContext) -> Event:
        """readGlobal: uniform choice within history depth h (line 12).

        The h-bounded candidate set is memoized per (tid, loc): mo is
        append-only and the reader's clock only changes when it
        synchronizes, so the set computed for one sink read stays valid
        until a write lands at the location (or the clock moves).
        """
        state = ctx._state
        if not self._fast or state is None:
            return self.rng.choice(ctx.candidates[-self.history:])
        key = (ctx.tid, ctx.loc)
        # Validity stamp: every input the h-bounded set depends on.  The
        # write count covers mo growth and the SC write floor, the clock
        # covers the hb floor, and the read floor covers the thread's own
        # earlier reads (which move the floor without touching the clock).
        stamp = (
            len(state.graph.writes_by_loc[ctx.loc]),
            state.clocks[ctx.tid],
            state.visibility._read_floor.get(key, 0),
            ctx.order.is_seq_cst,
        )
        memo = self._sink_candidates.get(key)
        if memo is not None and memo[0] == stamp:
            bounded = memo[1]
        else:
            bounded = ctx.bounded(self.history)
            self._sink_candidates[key] = (stamp, bounded)
        return self.rng.choice(bounded)

    def _read_local(self, view: View, ctx: ReadContext) -> Event:
        """readLocal: the thread's own view entry (line 19).

        The view entry is always coherence-visible (view joins accompany
        every clock join), but we clamp defensively to the coherence floor
        in case a program mixes paradigms the view does not model (e.g.
        values learned through thread join).
        """
        state = ctx._state
        if self._fast and state is not None:
            # Inlined FastView.get over the dense lid (one loc_ids lookup
            # for both the entry and the mo-tail check).
            graph = state.graph
            lid = graph.loc_ids[ctx.loc]
            writes = graph.writes_by_lid[lid]
            entry = writes[view._mo[lid]]
            if entry.mo_index == len(writes) - 1:
                # The mo-maximal write is always at or above the floor.
                return entry
        else:
            entry = view.get(ctx.loc)
        floor = ctx.floor_event()
        if entry.mo_index < floor.mo_index:
            return floor
        return entry

    # -- Algorithm 2: view updates ------------------------------------------------

    def on_event_executed(self, state, event: Event, info: dict) -> None:
        # Runs once per executed event; the read-update helper is inlined
        # (``_apply_read_update`` remains as the documented reference of
        # the same logic for subclasses that override it).
        tid = event.tid
        view = self._views[tid]
        bags = self._bags
        op = info.get("op")
        if event.is_sc and (event.is_write or event.is_fence):
            # SC reads joined their predecessor's bag in choose_read_from.
            if self._last_sc is not None:
                view.join(bags.get(self._last_sc.uid))
        if event.is_read:
            if not self._base_read_update:
                # An ablation subclass overrides the read-update rule.
                self._apply_read_update(state, view, event, op, info)
                source = None
            else:
                # Inlined _apply_read_update (Algorithm 2 lines 13-18).
                source = event.reads_from
            if source is not None:
                external = (
                    (op is not None and op.uid in self._reordered)
                    or info.get("spinning", False)
                    or info.get("rmw", False)
                )
                if external or view.get(event.loc) is not source:
                    sync = info.get("sync_source")
                    if sync is not None:
                        # Line 14: sw formed — join the source's whole bag.
                        view.join(bags.get(sync.uid))
                        view.join_loc(event.loc, source)
                    else:
                        # Line 16: relaxed external read — this loc only.
                        bag = bags.get(source.uid)
                        if bag is not None:
                            view.join_loc(event.loc, bag.get(event.loc))
                        view.join_loc(event.loc, source)
        if event.is_write:
            # Lines 4-5: the thread now holds its own write for this loc.
            view.set(event.loc, event)
        if event.is_acquire_fence:
            # Lines 20-23: join the bags of every sw source.
            for source in info.get("fence_sync_sources", ()):
                view.join(bags.get(source.uid))
        # Release fences (line 25): no update.
        # Line 26: snapshot the view as this event's bag.  On the fast
        # path consecutive events that left the view untouched share one
        # snapshot (FastView.version detects effective mutations).
        if self._fast:
            cached = self._bag_cache.get(tid)
            version = view.version
            if cached is not None and cached[0] is view \
                    and cached[1] == version:
                bag = cached[2]
            else:
                bag = view.copy()
                self._bag_cache[tid] = (view, version, bag)
            bags[event.uid] = bag
        else:
            bags[event.uid] = view.copy()
        if event.is_sc:
            self._last_sc = event
        if op is not None:
            self._reordered.discard(op.uid)

    def _apply_read_update(self, state, view: View, event: Event,
                           op, info: dict) -> None:
        source = event.reads_from
        if source is None:
            return
        external = (
            (op is not None and op.uid in self._reordered)
            or info.get("spinning", False)
            or info.get("rmw", False)
        )
        if not external and view.get(event.loc) is source:
            # readLocal: the thread already held this write; no update.
            return
        if info.get("sync_source") is not None:
            # Line 14: sw formed — join the source's whole bag.
            view.join(self._bags.get(info["sync_source"].uid))
            view.join_loc(event.loc, source)
        else:
            # Line 16: relaxed external read — join only this location.
            bag = self._bags.get(source.uid)
            if bag is not None:
                view.join_loc(event.loc, bag.get(event.loc))
            view.join_loc(event.loc, source)
