"""Shared priority machinery for the PCT-family schedulers.

Both PCT and PCTWM run threads strictly by priority and lower a thread's
priority at randomly chosen change points.  This base class owns the
priority table, the highest-priority-enabled selection, and the livelock
heuristic of Section 6.2: when the thread about to run is stuck in a wait
loop, the scheduler switches to a random other enabled thread so the value
the loop waits for can eventually be produced.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..runtime.scheduler import Scheduler


class PriorityScheduler(Scheduler):
    """Strict-priority thread selection with random initial priorities."""

    def __init__(self, depth: int, seed: Optional[int] = None):
        super().__init__(seed)
        if depth < 0:
            raise ValueError("bug depth must be >= 0")
        self.depth = depth
        self._priorities: Dict[int, float] = {}

    # -- priorities ---------------------------------------------------------

    def assign_initial_priorities(self, tids: List[int]) -> None:
        """Random permutation of values above all change slots.

        Change slots occupy priorities ``0 .. depth-1`` (the first ``d``
        positions of Algorithm 1's ascending ``threads`` list), so initial
        priorities start at ``depth + 1``.
        """
        values = list(range(self.depth + 1, self.depth + 1 + len(tids)))
        self.rng.shuffle(values)
        self._priorities = dict(zip(tids, values))

    def priority_of(self, tid: int) -> float:
        return self._priorities[tid]

    def on_thread_created(self, state, tid: int, parent_tid: int) -> None:
        """A SpawnOp created a thread: give it a random initial-band
        priority (original PCT assigns spawned threads random priorities
        on creation)."""
        upper = self.depth + 1 + len(self._priorities) + 1
        self._priorities[tid] = self.rng.uniform(self.depth + 0.5, upper)

    def lower_priority(self, tid: int, slot: float) -> None:
        """Move a thread into a low slot (a priority-change point fired)."""
        self._priorities[tid] = slot

    def highest_priority_enabled(self, state) -> int:
        # max(enabled, key=priority, ties to the smaller tid) as a plain
        # loop: no per-call lambda or tuple allocation on the hot path.
        priorities = self._priorities
        best = -1
        best_p = None
        for tid in state.enabled_tids():
            p = priorities[tid]
            if best_p is None or p > best_p:
                best, best_p = tid, p
        return best

    # -- livelock heuristic ----------------------------------------------------

    def divert_if_spinning(self, state, tid: int) -> Optional[int]:
        """Pick a random other enabled thread when ``tid`` is spinning.

        Returns the diverted thread id, or None when no diversion applies.
        The more often this fires, the closer the algorithm drifts to naive
        random testing — exactly the trade-off Section 6.2 describes for
        the seqlock benchmark.
        """
        thread = state.threads[tid]
        if thread.pending is None:
            return None
        if not state.spins.is_spinning(thread.site_key):
            return None
        others = [t for t in state.enabled_tids() if t != tid]
        if not others:
            return None
        return self.rng.choice(others)
