"""Picklable scheduler construction: registry names + parameter dicts.

The parallel campaign engine (:mod:`repro.harness.parallel`) ships work
units to ``multiprocessing`` workers, so scheduler factories must survive
pickling.  Closures (``lambda seed: PCTWMScheduler(...)``) do not; a
:class:`SchedulerSpec` — a registry name plus a parameter mapping — does,
and it is itself a ``seed -> Scheduler`` factory, so every serial code
path accepts it unchanged.

    spec = SchedulerSpec("pctwm", {"depth": 2, "k_com": 14, "history": 1})
    scheduler = spec(seed=7)          # PCTWMScheduler(2, 14, 1, seed=7)
    spec.scheduler_name              # "pctwm", no probe instance needed
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Type

from ..runtime.scheduler import Scheduler
from .ablations import (
    PCTWMEagerViews,
    PCTWMFullBagJoin,
    PCTWMNoDelay,
    PCTWMUnboundedHistory,
)
from .c11tester import C11TesterScheduler
from .naive import NaiveRandomScheduler
from .pct import PCTScheduler
from .pctwm import PCTWMScheduler
from .pos import POSScheduler
from .ppct import PPCTScheduler

#: Every scheduler constructible by name.  Keys are the schedulers'
#: ``name`` attributes, so ``SCHEDULER_REGISTRY[s].name == s``.
SCHEDULER_REGISTRY: Dict[str, Type[Scheduler]] = {
    cls.name: cls
    for cls in (
        PCTWMScheduler,
        PCTScheduler,
        C11TesterScheduler,
        NaiveRandomScheduler,
        POSScheduler,
        PPCTScheduler,
        PCTWMNoDelay,
        PCTWMFullBagJoin,
        PCTWMEagerViews,
        PCTWMUnboundedHistory,
    )
}


def make_scheduler(name: str, params: Optional[Mapping[str, Any]] = None,
                   seed: Optional[int] = None) -> Scheduler:
    """Instantiate a registered scheduler from its name and parameters."""
    try:
        cls = SCHEDULER_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(SCHEDULER_REGISTRY))
        raise ValueError(
            f"unknown scheduler {name!r}; known: {known}"
        ) from None
    return cls(**dict(params or {}), seed=seed)


@dataclass(frozen=True)
class SchedulerSpec:
    """A picklable ``seed -> Scheduler`` factory.

    Drop-in replacement for the closure factories in
    :mod:`repro.harness.campaign`; unlike them it crosses process
    boundaries, which is what lets ``run_campaign_parallel`` shard trials
    over a worker pool.
    """

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    #: Registry schedulers rebuild all per-run state in ``on_run_start``
    #: and inherit ``Scheduler.reseed``, so one instance may be reseeded
    #: and reused across trials with seed-for-seed identical results.
    #: Arbitrary user factories (closures) make no such promise, so the
    #: campaign fast path only reuses instances built from a spec.
    supports_reuse = True

    def __post_init__(self) -> None:
        if self.name not in SCHEDULER_REGISTRY:
            known = ", ".join(sorted(SCHEDULER_REGISTRY))
            raise ValueError(
                f"unknown scheduler {self.name!r}; known: {known}"
            )
        # Freeze the mapping so specs are safely shareable across shards.
        object.__setattr__(self, "params", dict(self.params))

    @property
    def scheduler_name(self) -> str:
        """The scheduler's display name, without building an instance."""
        return SCHEDULER_REGISTRY[self.name].name

    def __call__(self, seed: Optional[int] = None) -> Scheduler:
        return make_scheduler(self.name, self.params, seed)
