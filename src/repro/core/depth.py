"""Estimating test parameters: k, k_com, and empirical bug depth.

PCT takes the estimated number of program events ``k`` and PCTWM the
estimated number of communication events ``k_com`` as test parameters
(Table 1 lists both per benchmark).  Like the artifact, we obtain the
estimates by instrumented runs under the C11Tester random scheduler.

``empirical_bug_depth`` searches for the smallest ``d`` at which PCTWM hits
a program's bug — the operational reading of Definition 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..runtime.executor import run_once
from ..runtime.program import Program
from .c11tester import C11TesterScheduler
from .pctwm import PCTWMScheduler


@dataclass(frozen=True)
class ParameterEstimate:
    """Estimated k / k_com over a few instrumented runs."""

    k: int
    k_com: int
    runs: int

    def __str__(self) -> str:  # pragma: no cover - reporting aid
        return f"k≈{self.k}, k_com≈{self.k_com} (over {self.runs} runs)"


def estimate_parameters(program: Program, runs: int = 5,
                        seed: Optional[int] = 0,
                        max_steps: int = 20000,
                        model: str = "c11") -> ParameterEstimate:
    """Average event counts over ``runs`` random executions.

    Instrumented runs execute under ``model``.  The default keeps the
    artifact's estimator (C11Tester random walks); other backends count
    their own communication events — under TSO ``k_com`` counts flush
    commits — using the naive random scheduler, which every model
    supports.
    """
    if runs < 1:
        raise ValueError("need at least one estimation run")
    if model == "c11":
        def make_sched(i):
            return C11TesterScheduler(seed=None if seed is None else seed + i)
        run = run_once
    else:
        from ..memory.model import resolve_model
        from .naive import NaiveRandomScheduler

        def make_sched(i):
            return NaiveRandomScheduler(
                seed=None if seed is None else seed + i)
        run = resolve_model(model).run_once
    total_k = 0
    total_kcom = 0
    for i in range(runs):
        result = run(program, make_sched(i), max_steps=max_steps,
                     keep_graph=False)
        total_k += result.k
        total_kcom += result.k_com
    return ParameterEstimate(
        k=max(1, round(total_k / runs)),
        k_com=max(1, round(total_kcom / runs)),
        runs=runs,
    )


def empirical_bug_depth(program: Program, max_depth: int = 4,
                        history: int = 4, trials: int = 200,
                        seed: int = 0, k_com: Optional[int] = None,
                        max_steps: int = 20000) -> Optional[int]:
    """Smallest ``d`` at which PCTWM detects the program's bug.

    Returns None when no depth up to ``max_depth`` exposes a bug within the
    trial budget.  This realizes Definition 4 operationally: the bug depth
    is the minimum number of communication relations sufficient to produce
    the bug.
    """
    if k_com is None:
        k_com = estimate_parameters(program, seed=seed).k_com
    for depth in range(max_depth + 1):
        for trial in range(trials):
            sched = PCTWMScheduler(depth=depth, k_com=k_com,
                                   history=history,
                                   seed=seed * 7919 + depth * 101 + trial)
            result = run_once(program, sched, max_steps=max_steps,
                              keep_graph=False)
            if result.bug_found:
                return depth
    return None
