"""Thread-local views and bags (Definition 1 of the paper).

A *view* maps each memory location to the mo-maximal write event the thread
has observed for it.  Because the modification order is total per location,
the ``maximal_mo`` set of Definition 1 is a single event per location, so a
view is a plain mapping ``loc -> write event`` compared by mo index.

A *bag* is the snapshot of the executing thread's view taken when an event
executes (Algorithm 2, line 26); when the event later becomes the source of
a communication relation, its bag is what gets joined into the sink thread's
view.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple

from ..memory.events import Event


class View:
    """Definition 1: a map from locations to mo-maximal write events.

    Locations absent from the mapping implicitly hold their initialization
    write, supplied by ``init_writes``.
    """

    __slots__ = ("_entries", "_init")

    def __init__(self, init_writes: Mapping[str, Event],
                 entries: Optional[Dict[str, Event]] = None):
        self._init = init_writes
        self._entries: Dict[str, Event] = dict(entries) if entries else {}

    def get(self, loc: str) -> Event:
        """The write this view holds for ``loc`` (init write by default)."""
        event = self._entries.get(loc)
        if event is not None:
            return event
        return self._init[loc]

    def set(self, loc: str, event: Event) -> None:
        """Overwrite the entry for ``loc`` (Algorithm 2, lines 4-5)."""
        self._entries[loc] = event

    def join_loc(self, loc: str, event: Optional[Event]) -> None:
        """``view(x) <- ⊔mo(view(x), event)``: keep the mo-later write."""
        if event is None:
            return
        current = self._entries.get(loc)
        if current is None or event.mo_index > current.mo_index:
            self._entries[loc] = event

    def join(self, other: Optional["View"]) -> None:
        """``view <- ⊔mo(view, other)`` pointwise over all locations."""
        if other is None:
            return
        for loc, event in other._entries.items():
            self.join_loc(loc, event)

    def copy(self) -> "View":
        """Snapshot for use as an event's bag."""
        return View(self._init, self._entries)

    def items(self) -> Iterator[Tuple[str, Event]]:
        """Explicit (non-default) entries."""
        return iter(self._entries.items())

    def __contains__(self, loc: str) -> bool:
        return loc in self._entries or loc in self._init

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, View):
            return NotImplemented
        locs = set(self._entries) | set(other._entries) \
            | set(self._init) | set(other._init)
        return all(self.get(loc) is other.get(loc) for loc in locs)

    def __hash__(self):  # pragma: no cover - views are mutable
        raise TypeError("View is unhashable")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{loc}->e{e.uid}" for loc, e in sorted(self._entries.items())
        )
        return f"View({{{inner}}})"
