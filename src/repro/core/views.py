"""Thread-local views and bags (Definition 1 of the paper).

A *view* maps each memory location to the mo-maximal write event the thread
has observed for it.  Because the modification order is total per location,
the ``maximal_mo`` set of Definition 1 is a single event per location, so a
view is a plain mapping ``loc -> write event`` compared by mo index.

A *bag* is the snapshot of the executing thread's view taken when an event
executes (Algorithm 2, line 26); when the event later becomes the source of
a communication relation, its bag is what gets joined into the sink thread's
view.

Two interchangeable implementations exist:

* :class:`View` — the reference mapping ``loc -> write event`` backed by a
  dict, exactly Definition 1 as written;
* :class:`FastView` — the fast-path implementation: because mo is total
  per location and append-only, a view is equivalently a vector of mo
  indices over the graph's dense location ids, making ``join`` a
  pointwise integer max (the same shape as a vector-clock join) and the
  per-event bag snapshot a flat array copy instead of a dict copy.

The differential and property suites pin the two to identical semantics.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from ..memory.events import Event
from ..memory.execution import ExecutionGraph


class View:
    """Definition 1: a map from locations to mo-maximal write events.

    Locations absent from the mapping implicitly hold their initialization
    write, supplied by ``init_writes``.
    """

    __slots__ = ("_entries", "_init")

    def __init__(self, init_writes: Mapping[str, Event],
                 entries: Optional[Dict[str, Event]] = None):
        self._init = init_writes
        self._entries: Dict[str, Event] = dict(entries) if entries else {}

    def get(self, loc: str) -> Event:
        """The write this view holds for ``loc`` (init write by default)."""
        event = self._entries.get(loc)
        if event is not None:
            return event
        return self._init[loc]

    def set(self, loc: str, event: Event) -> None:
        """Overwrite the entry for ``loc`` (Algorithm 2, lines 4-5)."""
        self._entries[loc] = event

    def join_loc(self, loc: str, event: Optional[Event]) -> None:
        """``view(x) <- ⊔mo(view(x), event)``: keep the mo-later write."""
        if event is None:
            return
        current = self._entries.get(loc)
        if current is None or event.mo_index > current.mo_index:
            self._entries[loc] = event

    def join(self, other: Optional["View"]) -> None:
        """``view <- ⊔mo(view, other)`` pointwise over all locations."""
        if other is None:
            return
        for loc, event in other._entries.items():
            self.join_loc(loc, event)

    def copy(self) -> "View":
        """Snapshot for use as an event's bag."""
        return View(self._init, self._entries)

    def items(self) -> Iterator[Tuple[str, Event]]:
        """Explicit (non-default) entries."""
        return iter(self._entries.items())

    def __contains__(self, loc: str) -> bool:
        return loc in self._entries or loc in self._init

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, View):
            return NotImplemented
        locs = set(self._entries) | set(other._entries) \
            | set(self._init) | set(other._init)
        return all(self.get(loc) is other.get(loc) for loc in locs)

    def __hash__(self):  # pragma: no cover - views are mutable
        raise TypeError("View is unhashable")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{loc}->e{e.uid}" for loc, e in sorted(self._entries.items())
        )
        return f"View({{{inner}}})"


class FastView:
    """Array-backed view over the graph's dense location ids.

    Semantically identical to :class:`View`: entry ``i`` holds the mo
    index of the write this view holds for the location with lid ``i``
    (0 = the initialization write, the implicit default).  ``join`` is a
    pointwise integer max — the same lattice operation as
    :func:`repro.memory.events.clock_join` — and ``copy`` (the per-event
    bag snapshot of Algorithm 2 line 26) is a flat list copy.
    """

    __slots__ = ("_graph", "_mo", "version")

    def __init__(self, graph: ExecutionGraph,
                 mo: Optional[List[int]] = None):
        self._graph = graph
        if mo is None:
            self._mo = [0] * len(graph.writes_by_lid)
        else:
            self._mo = mo
        #: Bumped on every effective mutation; lets PCTWM's bag snapshots
        #: be shared between consecutive events that left the view alone.
        self.version = 0

    def get(self, loc: str) -> Event:
        """The write this view holds for ``loc`` (init write by default)."""
        lid = self._graph.loc_ids[loc]
        return self._graph.writes_by_lid[lid][self._mo[lid]]

    def set(self, loc: str, event: Event) -> None:
        """Overwrite the entry for ``loc`` (Algorithm 2, lines 4-5)."""
        lid = event.lid
        if lid < 0:
            lid = self._graph.loc_ids[loc]
        if self._mo[lid] != event.mo_index:
            self._mo[lid] = event.mo_index
            self.version += 1

    def join_loc(self, loc: str, event: Optional[Event]) -> None:
        """``view(x) <- ⊔mo(view(x), event)``: keep the mo-later write."""
        if event is None:
            return
        lid = event.lid
        if lid < 0:
            lid = self._graph.loc_ids[loc]
        if event.mo_index > self._mo[lid]:
            self._mo[lid] = event.mo_index
            self.version += 1

    def join(self, other: Optional["FastView"]) -> None:
        """``view <- ⊔mo(view, other)``: pointwise max of index vectors."""
        if other is None:
            return
        mine = self._mo
        theirs = other._mo
        if len(theirs) > len(mine):  # pragma: no cover - defensive
            mine.extend([0] * (len(theirs) - len(mine)))
        changed = False
        for i, v in enumerate(theirs):
            if v > mine[i]:
                mine[i] = v
                changed = True
        if changed:
            self.version += 1

    def copy(self) -> "FastView":
        """Snapshot for use as an event's bag (flat array copy)."""
        return FastView(self._graph, self._mo.copy())

    def reset(self) -> None:
        """Back to the all-initialization view, reusing the index vector.

        Used by schedulers that pool their per-thread views across runs
        against a pooled (reset) execution graph.
        """
        self._mo[:] = [0] * len(self._graph.writes_by_lid)
        self.version = 0

    def items(self) -> Iterator[Tuple[str, Event]]:
        """Explicit (non-default) entries."""
        writes_by_lid = self._graph.writes_by_lid
        for loc, lid in self._graph.loc_ids.items():
            index = self._mo[lid] if lid < len(self._mo) else 0
            if index > 0:
                yield loc, writes_by_lid[lid][index]

    def __contains__(self, loc: str) -> bool:
        return loc in self._graph.loc_ids

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FastView):
            if self._graph is other._graph:
                return self._mo == other._mo
            return NotImplemented
        if isinstance(other, View):
            return all(
                self.get(loc) is other.get(loc)
                for loc in self._graph.loc_ids
            )
        return NotImplemented

    def __hash__(self):  # pragma: no cover - views are mutable
        raise TypeError("FastView is unhashable")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{loc}->e{e.uid}" for loc, e in sorted(self.items())
        )
        return f"FastView({{{inner}}})"
