"""The C11Tester random-testing baseline (Section 6).

C11Tester explores program behaviours in two independent uniform choices:

1. the next thread to execute is chosen uniformly among the enabled threads;
2. a read picks its rf source uniformly among the coherence-visible writes.

This is the default behaviour of the base :class:`repro.runtime.Scheduler`;
the subclass only pins the name used in reports.
"""

from __future__ import annotations

from ..runtime.scheduler import Scheduler


class C11TesterScheduler(Scheduler):
    """Uniform-random thread and reads-from choices."""

    name = "c11tester"
