"""Naive random testing under interleaving (SC) semantics (Section 2.2).

The naive algorithm picks the next event to schedule uniformly among all
enabled events, and — because it assumes sequential consistency — every read
observes the mo-maximal visible write ("the last written value").  It can
therefore only produce interleaving behaviours: the SB litmus assertion, for
example, never fails under this scheduler (a property the tests pin down).
"""

from __future__ import annotations

from ..memory.events import Event
from ..runtime.scheduler import ReadContext, Scheduler


class NaiveRandomScheduler(Scheduler):
    """Uniform thread choice; reads always see the latest write."""

    name = "naive"

    def choose_read_from(self, state, ctx: ReadContext) -> Event:
        return ctx.latest()
