"""Ablation variants of PCTWM for the design-choice benchmarks.

DESIGN.md calls out four load-bearing design choices; each ablation removes
one so the benchmark suite can show it matters:

* :class:`PCTWMNoDelay` — selected sinks read globally but their threads
  are *not* deprioritized, so sinks do not run as late as possible and the
  writes they should observe often do not exist yet.
* :class:`PCTWMFullBagJoin` — every external read joins the source's whole
  bag (as if all reads synchronized), destroying the staleness that relaxed
  semantics permit; weak bugs that rely on partial views disappear.
* :class:`PCTWMEagerViews` — ``readLocal`` returns the mo-maximal visible
  write instead of the thread view, i.e. local reads behave like SC; pure
  staleness bugs (SB, dekker) vanish.
* :class:`PCTWMUnboundedHistory` — ``readGlobal`` samples uniformly over
  the entire visible set (h = ∞), recovering PCT-style dilution when many
  writes are visible (the Figure 6 effect).
"""

from __future__ import annotations

from typing import Optional

from ..memory.events import Event
from ..runtime.scheduler import ReadContext
from .pctwm import PCTWMScheduler


class PCTWMNoDelay(PCTWMScheduler):
    """Sinks are selected and read globally, but never delayed."""

    name = "pctwm-nodelay"

    def choose_thread(self, state) -> int:
        # Plain priority scheduling: peek to *count and mark* communication
        # events (so reordered reads still read globally), but skip the
        # priority change that delays them.
        tid = self.highest_priority_enabled(state)
        diverted = self.divert_if_spinning(state, tid)
        if diverted is not None:
            return diverted
        op = state.peek(tid)
        from ..runtime.ops import is_communication_op
        if op is not None and is_communication_op(op) \
                and op.uid not in self._counted:
            self._counted.add(op.uid)
            self._i += 1
            if self._i in self._slot_by_count:
                self._reordered.add(op.uid)
        return tid


class PCTWMFullBagJoin(PCTWMScheduler):
    """External relaxed reads join the whole source bag (over-propagation)."""

    name = "pctwm-fullbag"

    def _apply_read_update(self, state, view, event: Event, op,
                           info: dict) -> None:
        source = event.reads_from
        if source is None:
            return
        external = (
            (op is not None and op.uid in self._reordered)
            or info.get("spinning", False)
            or info.get("rmw", False)
        )
        if not external and view.get(event.loc) is source:
            return
        # Ablated: treat every communication as if it synchronized.
        view.join(self._bags.get(source.uid))
        view.join_loc(event.loc, source)


class PCTWMEagerViews(PCTWMScheduler):
    """readLocal returns the freshest visible write (SC-like local reads)."""

    name = "pctwm-eager"

    def _read_local(self, view, ctx: ReadContext) -> Event:
        return ctx.latest()


class PCTWMUnboundedHistory(PCTWMScheduler):
    """readGlobal ignores the history bound (h = ∞)."""

    name = "pctwm-nohistory"

    def __init__(self, depth: int, k_com: int,
                 seed: Optional[int] = None):
        super().__init__(depth, k_com, history=1, seed=seed)

    def _read_global(self, ctx: ReadContext) -> Event:
        return self.rng.choice(ctx.candidates)
