"""Entry point: ``python -m repro <table1|table2|...|all>``."""

from .harness.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
