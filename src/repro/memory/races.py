"""Online happens-before data-race detection.

Two accesses form a data race when they touch the same location, at least one
is a write, at least one is non-atomic, they come from different threads, and
neither happens-before the other.  This is the C11 definition C11Tester
checks; racy programs have undefined behaviour, so a detected race counts as
a found bug in the application benchmarks (Table 4).

Detection is vector-clock based (FastTrack-style epochs collapsed to "last
access per thread"), giving O(threads) work per access.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .events import Event, happens_before


@dataclass(frozen=True)
class DataRace:
    """A pair of unordered conflicting accesses, first by execution order."""

    first: Event
    second: Event

    @property
    def loc(self) -> str:
        return self.first.loc

    def __str__(self) -> str:  # pragma: no cover - reporting aid
        return (
            f"data race on {self.loc!r}: {self.first!r} unordered with "
            f"{self.second!r}"
        )


class RaceDetector:
    """Tracks last accesses per (location, thread) and reports races."""

    def __init__(self, fast: bool = True) -> None:
        self.fast = fast
        self._last_write: Dict[str, Dict[int, Event]] = defaultdict(dict)
        self._last_read: Dict[str, Dict[int, Event]] = defaultdict(dict)
        #: Locations that have seen at least one non-atomic access.
        self._na_locs: set = set()
        self.races: List[DataRace] = []

    def reset(self) -> None:
        """Forget all recorded accesses and races (per-run reuse)."""
        self._last_write.clear()
        self._last_read.clear()
        self._na_locs.clear()
        self.races.clear()

    def on_access(self, event: Event) -> Optional[DataRace]:
        """Record a memory access; return the first race it creates, if any."""
        if event.is_fence or event.loc is None or event.is_init:
            return None
        loc = event.loc
        if not event.is_atomic:
            self._na_locs.add(loc)
        if self.fast and event.is_atomic and loc not in self._na_locs:
            # A race needs a non-atomic side; this access is atomic and no
            # prior access at loc was non-atomic, so no check can fire —
            # record the access and skip the per-thread hb scans.
            race = None
        else:
            race = self._check(event)
        if event.is_write:
            self._last_write[loc][event.tid] = event
        if event.is_read:
            self._last_read[loc][event.tid] = event
        return race

    def _check(self, event: Event) -> Optional[DataRace]:
        loc = event.loc
        found: Optional[DataRace] = None
        for tid, prior in self._last_write[loc].items():
            if tid == event.tid:
                continue
            found = found or self._race_between(prior, event)
        if event.is_write:
            for tid, prior in self._last_read[loc].items():
                if tid == event.tid:
                    continue
                found = found or self._race_between(prior, event)
        if found is not None:
            self.races.append(found)
        return found

    @staticmethod
    def _race_between(prior: Event, event: Event) -> Optional[DataRace]:
        if prior.is_atomic and event.is_atomic:
            return None
        if happens_before(prior, event):
            return None
        return DataRace(prior, event)

    @property
    def racy(self) -> bool:
        return bool(self.races)
