"""Coherence-respecting visible-write computation.

A read may not read from an arbitrary write: C11's coherence axioms enforce
sc-per-location (Section 4).  Operationally, a write ``w`` at location ``x``
is *visible* to a read ``r`` by thread ``t`` iff

* no mo-later write at ``x`` happens-before ``r``
  (otherwise ``mo; rf; hb`` would be reflexive — write-coherence), and
* ``w`` is not mo-before a write that a po-earlier read of ``t`` already
  observed (otherwise ``fr; rf`` would close a cycle — read-coherence), and
* for seq_cst reads, ``w`` is not mo-before the last seq_cst write at ``x``
  in SC order (the C11Tester-style (SC) axiom).

This is the same visible-write set C11Tester's runtime offers its random
scheduler; every scheduler in :mod:`repro.core` picks its rf source from it.

Fast path
    The hb part of the floor — "the mo-latest write at ``x`` that
    happens-before the reading thread's current point" — is memoized per
    ``(tid, loc)`` and maintained incrementally: per-thread vector clocks
    only grow, and mo is append-only, so a revalidation only rescans the
    writes appended (or newly synchronized) since the last query instead
    of the whole mo suffix.  ``memoize=False`` keeps the original
    scan-per-query reference behaviour for the differential suite.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from .events import Event, clock_leq
from .execution import ExecutionGraph


def _hb_point(write: Event, clock: Tuple[int, ...]) -> bool:
    """Does ``write`` happen-before the point with vector clock ``clock``?"""
    if write.is_init:
        return True
    tid = write.tid
    if tid >= len(clock):
        return False
    return write.clock[tid] <= clock[tid]


class VisibilityTracker:
    """Per-thread coherence floors plus the visible-set query.

    The tracker records, for every ``(tid, loc)``, the highest mo index the
    thread has observed through its *reads* (its own writes and synchronized
    writes are covered by the vector-clock happens-before scan).  It also
    records the mo index of the mo-maximal seq_cst write per location, which
    floors seq_cst reads.
    """

    def __init__(self, graph: ExecutionGraph, memoize: bool = True) -> None:
        self._graph = graph
        self.memoize = memoize
        self._read_floor: Dict[Tuple[int, str], int] = defaultdict(int)
        self._sc_write_floor: Dict[str, int] = defaultdict(int)
        #: Per (tid, loc): [writes seen, clock seen, hb-max mo index].
        self._hb_memo: Dict[Tuple[int, str], list] = {}

    def reset(self) -> None:
        """Drop all floors and memos for reuse by the next run."""
        self._read_floor.clear()
        self._sc_write_floor.clear()
        self._hb_memo.clear()

    # -- bookkeeping ---------------------------------------------------------

    def note_read(self, tid: int, source: Event) -> None:
        """Raise the thread's read-coherence floor after a read."""
        key = (tid, source.loc)
        if source.mo_index > self._read_floor[key]:
            self._read_floor[key] = source.mo_index

    def note_write(self, event: Event) -> None:
        """Track seq_cst writes for the (SC) read floor."""
        if event.is_write and event.is_sc:
            loc = event.loc
            if event.mo_index > self._sc_write_floor[loc]:
                self._sc_write_floor[loc] = event.mo_index

    # -- queries ---------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe dump of the per-thread view state, for diagnostics.

        Keys are ``"t<tid>:<loc>"`` (read floors) and location names
        (seq_cst write floors); values are mo indices.
        """
        return {
            "read_floors": {
                f"t{tid}:{loc}": index
                for (tid, loc), index in sorted(self._read_floor.items())
            },
            "sc_write_floors": dict(sorted(self._sc_write_floor.items())),
        }

    def _hb_floor(self, tid: int, loc: str, clock: Tuple[int, ...],
                  writes: List[Event]) -> int:
        """mo index of the mo-latest write at ``loc`` hb-before ``clock``.

        Always defined: the initialization write (mo index 0) happens-before
        every point.  Memoized incrementally: per-thread clocks are
        pointwise monotone and mo is append-only, so a previously
        established floor never invalidates — only writes above it need a
        rescan, newest first, stopping at the first hb hit.
        """
        memo = self._hb_memo.get((tid, loc))
        if memo is not None:
            known_n, known_clock, known_floor = memo
            if known_n == len(writes) and known_clock == clock:
                return known_floor
            if not clock_leq(known_clock, clock):
                # Non-monotone query (direct API use with a rewound
                # clock): the cached floor may overshoot — start over.
                known_floor = 0
        else:
            known_floor = 0
            memo = self._hb_memo[(tid, loc)] = [0, clock, 0]
        floor = known_floor
        for w in reversed(writes):
            if w.mo_index <= known_floor:
                break
            if _hb_point(w, clock):
                floor = w.mo_index
                break
        memo[0] = len(writes)
        memo[1] = clock
        memo[2] = floor
        return floor

    def floor(self, tid: int, loc: str, clock: Tuple[int, ...],
              seq_cst: bool = False) -> int:
        """The minimal mo index a read by ``tid`` at ``loc`` may observe."""
        writes = self._graph.writes_by_loc[loc]
        floor = self._read_floor[(tid, loc)]
        if seq_cst:
            sc_floor = self._sc_write_floor[loc]
            if sc_floor > floor:
                floor = sc_floor
        if self.memoize:
            hb_floor = self._hb_floor(tid, loc, clock, writes)
            return hb_floor if hb_floor > floor else floor
        for w in reversed(writes):
            if w.mo_index <= floor:
                break
            if _hb_point(w, clock):
                floor = w.mo_index
                break
        return floor

    def visible_writes(self, tid: int, loc: str, clock: Tuple[int, ...],
                       seq_cst: bool = False) -> List[Event]:
        """All writes a read may legally read from, in mo order."""
        writes = self._graph.writes_by_loc[loc]
        if not writes:
            raise KeyError(f"location {loc!r} was never initialized")
        floor = self.floor(tid, loc, clock, seq_cst)
        return writes[floor:]

    def bounded_visible_writes(self, tid: int, loc: str,
                               clock: Tuple[int, ...], history: int,
                               seq_cst: bool = False) -> List[Event]:
        """Visible writes restricted to history depth ``h`` (Definition 5).

        A write qualifies iff it has fewer than ``h`` ``imm(mo)`` successors,
        i.e. it is one of the ``h`` mo-latest writes at the location.  The
        intersection with the coherence-visible set is returned in mo order;
        it is never empty because the mo-maximal write is always visible.
        Answered O(h) from the mo tail array without materializing the
        full visible suffix.
        """
        if history < 1:
            raise ValueError("history depth must be >= 1")
        writes = self._graph.writes_by_loc[loc]
        if not writes:
            raise KeyError(f"location {loc!r} was never initialized")
        floor = self.floor(tid, loc, clock, seq_cst)
        start = len(writes) - history
        if floor > start:
            start = floor
        return writes[start:]
