"""Finite binary-relation algebra over execution events.

Implements the notation of Section 4 of the paper: composition, reflexive /
transitive closures, inverse, the ``imm`` immediate restriction, identity
relations ``[A]``, and ``maximal(S, B)``.  Relations are stored as adjacency
sets keyed by node, which keeps closure computations near-linear for the
small graphs produced by litmus tests and unit tests.

These operations are used by the consistency-axiom auditor
(:mod:`repro.memory.axioms`) and by tests; the execution engine itself uses
vector clocks for the hot-path happens-before queries.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, Hashable, Iterable, Iterator, Set, Tuple

Node = Hashable
Edge = Tuple[Node, Node]


class Relation:
    """A finite binary relation with the closure algebra of Section 4."""

    def __init__(self, edges: Iterable[Edge] = ()):  # noqa: D107
        self._succ: Dict[Node, Set[Node]] = defaultdict(set)
        for a, b in edges:
            self._succ[a].add(b)

    # -- basic protocol ----------------------------------------------------

    def add(self, a: Node, b: Node) -> None:
        self._succ[a].add(b)

    def __contains__(self, edge: Edge) -> bool:
        a, b = edge
        return b in self._succ.get(a, ())

    def __call__(self, a: Node, b: Node) -> bool:
        return (a, b) in self

    def edges(self) -> Iterator[Edge]:
        for a, succs in self._succ.items():
            for b in succs:
                yield (a, b)

    def successors(self, a: Node) -> Set[Node]:
        return set(self._succ.get(a, ()))

    def nodes(self) -> Set[Node]:
        out: Set[Node] = set()
        for a, succs in self._succ.items():
            out.add(a)
            out |= succs
        return out

    def __len__(self) -> int:
        return sum(len(s) for s in self._succ.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return set(self.edges()) == set(other.edges())

    def __hash__(self):  # pragma: no cover - relations are not dict keys
        raise TypeError("Relation is unhashable")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({sorted(map(str, self.edges()))})"

    # -- algebra -----------------------------------------------------------

    def union(self, other: "Relation") -> "Relation":
        out = Relation(self.edges())
        for a, b in other.edges():
            out.add(a, b)
        return out

    def __or__(self, other: "Relation") -> "Relation":
        return self.union(other)

    def minus(self, other: "Relation") -> "Relation":
        return Relation(e for e in self.edges() if e not in other)

    def compose(self, other: "Relation") -> "Relation":
        """Relational composition ``self ; other``."""
        out = Relation()
        for a, mids in self._succ.items():
            for m in mids:
                for b in other._succ.get(m, ()):
                    out.add(a, b)
        return out

    def inverse(self) -> "Relation":
        """``B⁻¹``."""
        return Relation((b, a) for a, b in self.edges())

    def reflexive(self, nodes: Iterable[Node]) -> "Relation":
        """``B?`` over the given carrier set."""
        out = Relation(self.edges())
        for n in nodes:
            out.add(n, n)
        return out

    def transitive(self) -> "Relation":
        """``B⁺`` via BFS from every node."""
        out = Relation()
        for start in list(self._succ):
            seen: Set[Node] = set()
            frontier = deque(self._succ[start])
            while frontier:
                n = frontier.popleft()
                if n in seen:
                    continue
                seen.add(n)
                frontier.extend(self._succ.get(n, ()))
            for n in seen:
                out.add(start, n)
        return out

    def reflexive_transitive(self, nodes: Iterable[Node]) -> "Relation":
        """``B*`` over the given carrier set."""
        return self.transitive().reflexive(nodes)

    def restrict(self, domain: Set[Node], codomain: Set[Node]) -> "Relation":
        return Relation(
            (a, b) for a, b in self.edges() if a in domain and b in codomain
        )

    # -- predicates --------------------------------------------------------

    def is_irreflexive(self) -> bool:
        return all(a is not b and a != b for a, b in self.edges())

    def is_acyclic(self) -> bool:
        """Kahn's algorithm over the relation's nodes."""
        indeg: Dict[Node, int] = defaultdict(int)
        nodes = self.nodes()
        for _, b in self.edges():
            indeg[b] += 1
        ready = deque(n for n in nodes if indeg[n] == 0)
        visited = 0
        while ready:
            n = ready.popleft()
            visited += 1
            for b in self._succ.get(n, ()):
                indeg[b] -= 1
                if indeg[b] == 0:
                    ready.append(b)
        return visited == len(nodes)

    def is_total_over(self, nodes: Iterable[Node]) -> bool:
        """True if every distinct pair is related one way or the other."""
        nodes = list(nodes)
        for i, a in enumerate(nodes):
            for b in nodes[i + 1 :]:
                if not ((a, b) in self or (b, a) in self):
                    return False
        return True

    def empty(self) -> bool:
        return len(self) == 0


def imm(rel: Relation) -> Relation:
    """``imm(B)``: pairs with no interposed node.

    ``imm(B)(x, y) ≜ B(x, y) ∧ ¬∃z. B(x, z) ∧ B(z, y)``.
    """
    out = Relation()
    for a, b in rel.edges():
        if not any((z, b) in rel for z in rel.successors(a) if z != b):
            out.add(a, b)
    return out


def identity(nodes: Iterable[Node]) -> Relation:
    """``[A]``: the identity relation on a set."""
    return Relation((n, n) for n in nodes)


def maximal(nodes: Iterable[Node], rel: Relation) -> Set[Node]:
    """``maximal(S, B)``: elements of S with no B-successor inside S.

    ``maximal(S, B) ≜ {e | e ∈ S ∧ S ∩ [{e}];B = ∅}``.
    """
    nodes = set(nodes)
    return {
        n for n in nodes if not (rel.successors(n) & nodes)
    }
