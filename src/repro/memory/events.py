"""C11 events: the nodes of an execution graph.

An event is a single dynamic shared-memory access or fence, following the
axiomatic presentation in Section 4 of the paper.  Each event is a tuple
``<id, tid, lab>`` where the label carries the operation kind, the memory
location, the value read, and the value written.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Thread id reserved for the implicit initialization writes.
INIT_TID = -1


class MemoryOrder(enum.IntEnum):
    """C11 memory orders, ordered by strength.

    ``NA`` marks non-atomic accesses; they carry no ordering strength and
    participate in data-race detection instead of synchronization.
    """

    NA = 0
    RELAXED = 1
    ACQUIRE = 2
    RELEASE = 3
    ACQ_REL = 4
    SEQ_CST = 5

    @property
    def is_acquire(self) -> bool:
        """True for ``acq``, ``acq-rel`` and ``sc`` orders (paper: E⊒acq)."""
        return self in (MemoryOrder.ACQUIRE, MemoryOrder.ACQ_REL, MemoryOrder.SEQ_CST)

    @property
    def is_release(self) -> bool:
        """True for ``rel``, ``acq-rel`` and ``sc`` orders (paper: E⊒rel)."""
        return self in (MemoryOrder.RELEASE, MemoryOrder.ACQ_REL, MemoryOrder.SEQ_CST)

    @property
    def is_seq_cst(self) -> bool:
        return self is MemoryOrder.SEQ_CST

    @property
    def is_atomic(self) -> bool:
        return self is not MemoryOrder.NA


#: Short aliases used pervasively by programs written in the DSL.
NA = MemoryOrder.NA
RLX = MemoryOrder.RELAXED
ACQ = MemoryOrder.ACQUIRE
REL = MemoryOrder.RELEASE
ACQ_REL = MemoryOrder.ACQ_REL
SC = MemoryOrder.SEQ_CST


class EventKind(enum.Enum):
    """Operation kind of an event.

    ``READ``/``WRITE`` are plain loads and stores, ``RMW`` is a successful
    atomic update (the paper's U events; a failed RMW degenerates to a READ),
    and ``FENCE`` is a memory fence.
    """

    READ = "R"
    WRITE = "W"
    RMW = "U"
    FENCE = "F"


@dataclass(frozen=True)
class Label:
    """The ``lab = <op, loc, rVal, wVal>`` tuple of an event.

    For fences ``loc``, ``rval`` and ``wval`` are ``None`` (the paper's ⊥).
    """

    kind: EventKind
    order: MemoryOrder
    loc: Optional[str] = None
    rval: Optional[object] = None
    wval: Optional[object] = None


@dataclass(eq=False)
class Event:
    """A node of the execution graph.

    Identity is by object (``eq=False``); ``uid`` gives a stable total order
    of creation which equals the execution order of the generated run.
    """

    uid: int
    tid: int
    label: Label
    #: Index of the event within its own thread (position in po).
    po_index: int = 0
    #: For write/RMW events: position in the per-location modification order.
    mo_index: int = -1
    #: For read/RMW events: the write event this event reads from.
    reads_from: Optional["Event"] = None
    #: Happens-before vector clock, stamped at execution time.
    clock: Tuple[int, ...] = field(default=())
    #: Position in the global SC order for seq_cst events, else -1.
    sc_index: int = -1

    # -- kind predicates ---------------------------------------------------

    @property
    def kind(self) -> EventKind:
        return self.label.kind

    @property
    def order(self) -> MemoryOrder:
        return self.label.order

    @property
    def loc(self) -> Optional[str]:
        return self.label.loc

    @property
    def is_read(self) -> bool:
        """Member of the paper's R = R ∪ U set."""
        return self.label.kind in (EventKind.READ, EventKind.RMW)

    @property
    def is_write(self) -> bool:
        """Member of the paper's W = W ∪ U set."""
        return self.label.kind in (EventKind.WRITE, EventKind.RMW)

    @property
    def is_rmw(self) -> bool:
        return self.label.kind is EventKind.RMW

    @property
    def is_fence(self) -> bool:
        return self.label.kind is EventKind.FENCE

    @property
    def is_acquire_fence(self) -> bool:
        """Member of F⊒acq."""
        return self.is_fence and self.order.is_acquire

    @property
    def is_release_fence(self) -> bool:
        """Member of F⊒rel."""
        return self.is_fence and self.order.is_release

    @property
    def is_sc(self) -> bool:
        return self.order.is_seq_cst

    @property
    def is_init(self) -> bool:
        return self.tid == INIT_TID

    @property
    def is_atomic(self) -> bool:
        return self.order.is_atomic

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lab = self.label
        if self.is_fence:
            body = f"F{lab.order.name.lower()}"
        else:
            parts = [lab.kind.value, f"{lab.loc}"]
            if self.is_read:
                parts.append(f"r={lab.rval}")
            if self.is_write:
                parts.append(f"w={lab.wval}")
            body = f"{'.'.join(parts)}@{lab.order.name.lower()}"
        return f"<e{self.uid} t{self.tid} {body}>"


def clock_leq(a: Tuple[int, ...], b: Tuple[int, ...]) -> bool:
    """Pointwise ≤ on vector clocks (missing entries are zero)."""
    if len(a) > len(b):
        return all(x <= (b[i] if i < len(b) else 0) for i, x in enumerate(a))
    return all(x <= b[i] for i, x in enumerate(a))


def clock_join(a: Tuple[int, ...], b: Tuple[int, ...]) -> Tuple[int, ...]:
    """Pointwise max of two vector clocks."""
    if len(a) < len(b):
        a, b = b, a
    return tuple(
        max(x, b[i]) if i < len(b) else x for i, x in enumerate(a)
    )


def happens_before(a: Event, b: Event) -> bool:
    """hb(a, b) decided via vector clocks.

    ``a`` happens-before ``b`` iff ``b``'s clock has seen ``a``'s increment.
    Initialization events happen-before everything else.
    """
    if a is b:
        return False
    if a.is_init:
        return not b.is_init or a.uid < b.uid
    if b.is_init:
        return False
    slot = a.tid
    if slot >= len(b.clock):
        return False
    return a.clock[slot] <= b.clock[slot]
