"""C11 events: the nodes of an execution graph.

An event is a single dynamic shared-memory access or fence, following the
axiomatic presentation in Section 4 of the paper.  Each event is a tuple
``<id, tid, lab>`` where the label carries the operation kind, the memory
location, the value read, and the value written.

Events sit on the engine's hot path (one is allocated and inspected per
executed operation), so the class is ``__slots__``-ed and every kind/order
predicate is precomputed at construction instead of being derived through
property calls on each access.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

#: Thread id reserved for the implicit initialization writes.
INIT_TID = -1


class MemoryOrder(enum.IntEnum):
    """C11 memory orders, ordered by strength.

    ``NA`` marks non-atomic accesses; they carry no ordering strength and
    participate in data-race detection instead of synchronization.
    """

    NA = 0
    RELAXED = 1
    ACQUIRE = 2
    RELEASE = 3
    ACQ_REL = 4
    SEQ_CST = 5

    #: Predicate flags are plain member attributes, filled in below: the
    #: six members are singletons, so the flags are computed once at import
    #: instead of via property calls on the engine's hot path.
    is_acquire: bool
    is_release: bool
    is_seq_cst: bool
    is_atomic: bool


for _order in MemoryOrder:
    #: True for ``acq``, ``acq-rel`` and ``sc`` orders (paper: E⊒acq).
    _order.is_acquire = _order in (
        MemoryOrder.ACQUIRE, MemoryOrder.ACQ_REL, MemoryOrder.SEQ_CST
    )
    #: True for ``rel``, ``acq-rel`` and ``sc`` orders (paper: E⊒rel).
    _order.is_release = _order in (
        MemoryOrder.RELEASE, MemoryOrder.ACQ_REL, MemoryOrder.SEQ_CST
    )
    _order.is_seq_cst = _order is MemoryOrder.SEQ_CST
    _order.is_atomic = _order is not MemoryOrder.NA
del _order


#: Short aliases used pervasively by programs written in the DSL.
NA = MemoryOrder.NA
RLX = MemoryOrder.RELAXED
ACQ = MemoryOrder.ACQUIRE
REL = MemoryOrder.RELEASE
ACQ_REL = MemoryOrder.ACQ_REL
SC = MemoryOrder.SEQ_CST


class EventKind(enum.Enum):
    """Operation kind of an event.

    ``READ``/``WRITE`` are plain loads and stores, ``RMW`` is a successful
    atomic update (the paper's U events; a failed RMW degenerates to a READ),
    and ``FENCE`` is a memory fence.
    """

    READ = "R"
    WRITE = "W"
    RMW = "U"
    FENCE = "F"


class Label:
    """The ``lab = <op, loc, rVal, wVal>`` tuple of an event.

    For fences ``loc``, ``rval`` and ``wval`` are ``None`` (the paper's ⊥).
    A hand-written ``__slots__`` class rather than a dataclass: one label
    is allocated per executed event, and the hand-rolled constructor is
    measurably cheaper than the dataclass-generated one.  Immutable after
    construction, like the frozen dataclass it replaces.
    """

    __slots__ = ("kind", "order", "loc", "rval", "wval")

    def __init__(self, kind: EventKind, order: MemoryOrder,
                 loc: Optional[str] = None,
                 rval: Optional[object] = None,
                 wval: Optional[object] = None):
        _set = object.__setattr__
        _set(self, "kind", kind)
        _set(self, "order", order)
        _set(self, "loc", loc)
        _set(self, "rval", rval)
        _set(self, "wval", wval)

    def __setattr__(self, name, value):
        raise AttributeError(f"Label is immutable (tried to set {name!r})")

    def replace(self, **changes) -> "Label":
        """A copy with the given fields swapped (dataclasses.replace-style)."""
        fields = {slot: getattr(self, slot) for slot in self.__slots__}
        fields.update(changes)
        return Label(**fields)

    def _astuple(self):
        return (self.kind, self.order, self.loc, self.rval, self.wval)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Label):
            return NotImplemented
        return self._astuple() == other._astuple()

    def __hash__(self):
        return hash(self._astuple())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Label(kind={self.kind!r}, order={self.order!r}, "
            f"loc={self.loc!r}, rval={self.rval!r}, wval={self.wval!r})"
        )


#: Sentinel for "release chain not stamped"; distinguishes an unstamped
#: event from a stamped ``None`` (no release source exists).
_UNSTAMPED = object()


class Event:
    """A node of the execution graph.

    Identity is by object; ``uid`` gives a stable total order of creation
    which equals the execution order of the generated run.

    Kind and order predicates (``is_read``, ``is_fence``, ...) are plain
    attributes precomputed from the label at construction: the engine
    consults them several times per executed event, and attribute loads are
    an order of magnitude cheaper than property calls.
    """

    __slots__ = (
        "uid", "tid", "label", "po_index", "mo_index", "reads_from",
        "clock", "sc_index", "lid", "_release_chain",
        "kind", "order", "loc", "rval", "wval",
        "is_read", "is_write", "is_rmw", "is_fence",
        "is_acquire_fence", "is_release_fence", "is_sc", "is_init",
        "is_atomic",
    )

    def __init__(self, uid: int, tid: int, label: Label,
                 po_index: int = 0, mo_index: int = -1,
                 reads_from: Optional["Event"] = None,
                 clock: Tuple[int, ...] = (), sc_index: int = -1):
        self.uid = uid
        self.tid = tid
        self.label = label
        #: Index of the event within its own thread (position in po).
        self.po_index = po_index
        #: For write/RMW events: position in the location's mo.
        self.mo_index = mo_index
        #: For read/RMW events: the write event this event reads from.
        self.reads_from = reads_from
        #: Happens-before vector clock, stamped at execution time.
        self.clock = clock
        #: Position in the global SC order for seq_cst events, else -1.
        self.sc_index = sc_index
        #: Dense location id assigned by the owning graph (-1 = none).
        self.lid = -1
        #: Release-chain source memoized by the graph's fast path.
        self._release_chain = _UNSTAMPED
        kind = label.kind
        order = label.order
        self.kind = kind
        self.order = order
        self.loc = label.loc
        #: Read/written values, mirrored out of the label: the engine's
        #: hottest consumer (``rf`` value propagation) needs them without
        #: the extra ``label`` indirection.
        self.rval = label.rval
        self.wval = label.wval
        #: Member of the paper's R = R ∪ U set.
        self.is_read = kind is EventKind.READ or kind is EventKind.RMW
        #: Member of the paper's W = W ∪ U set.
        self.is_write = kind is EventKind.WRITE or kind is EventKind.RMW
        self.is_rmw = kind is EventKind.RMW
        is_fence = kind is EventKind.FENCE
        self.is_fence = is_fence
        #: Member of F⊒acq.
        self.is_acquire_fence = is_fence and order.is_acquire
        #: Member of F⊒rel.
        self.is_release_fence = is_fence and order.is_release
        self.is_sc = order is MemoryOrder.SEQ_CST
        self.is_init = tid == INIT_TID
        self.is_atomic = order is not MemoryOrder.NA

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lab = self.label
        if self.is_fence:
            body = f"F{lab.order.name.lower()}"
        else:
            parts = [lab.kind.value, f"{lab.loc}"]
            if self.is_read:
                parts.append(f"r={lab.rval}")
            if self.is_write:
                parts.append(f"w={lab.wval}")
            body = f"{'.'.join(parts)}@{lab.order.name.lower()}"
        return f"<e{self.uid} t{self.tid} {body}>"


class _HotEvent(Event):
    """Engine-internal event family with constant-folded predicates.

    The execution graph allocates one event per executed operation, and
    every kind/order predicate of that event is a pure function of the
    ``(kind, order)`` pair — so the fast constructors use one generated
    subclass per pair (see :func:`_specialize`) where the predicates,
    ``kind`` and ``order`` are *class attributes* instead of per-instance
    stores.  That cuts the constructor to the genuinely per-event fields
    and drops the label allocation: ``label`` is rebuilt on demand (cold
    paths only — artifacts, diagnostics, axiom audits, repr).

    Reads behave identically to a plain :class:`Event`; instances are
    still ``isinstance(e, Event)``.
    """

    __slots__ = ("_label",)

    def __init__(self, uid: int, tid: int, loc: Optional[str],
                 rval: Optional[object], wval: Optional[object],
                 po_index: int):
        self.uid = uid
        self.tid = tid
        self.loc = loc
        self.rval = rval
        self.wval = wval
        self.po_index = po_index
        self.mo_index = -1
        self.reads_from = None
        self.clock = ()
        self.sc_index = -1
        self.lid = -1
        self._release_chain = _UNSTAMPED

    @property
    def label(self) -> Label:
        try:
            return self._label
        except AttributeError:
            lab = Label(self.kind, self.order, self.loc, self.rval,
                        self.wval)
            self._label = lab
            return lab

    @label.setter
    def label(self, lab: Label) -> None:
        # Label replacement is a test-only mutation hook (axiom-seeding
        # suites bend rf values); keep the mirrored fields coherent.
        self._label = lab
        self.loc = lab.loc
        self.rval = lab.rval
        self.wval = lab.wval


def _specialize(kind: EventKind, order: MemoryOrder,
                init: bool = False) -> type:
    """One :class:`_HotEvent` subclass for a ``(kind, order)`` pair."""
    is_fence = kind is EventKind.FENCE
    ns = {
        "__slots__": (),
        "kind": kind,
        "order": order,
        "is_read": kind is EventKind.READ or kind is EventKind.RMW,
        "is_write": kind is EventKind.WRITE or kind is EventKind.RMW,
        "is_rmw": kind is EventKind.RMW,
        "is_fence": is_fence,
        "is_acquire_fence": is_fence and order.is_acquire,
        "is_release_fence": is_fence and order.is_release,
        "is_sc": order is MemoryOrder.SEQ_CST,
        "is_init": init,
        "is_atomic": order is not MemoryOrder.NA,
    }
    name = "_Event_{}{}_{}".format("INIT_" if init else "", kind.name,
                                   order.name)
    cls = type(name, (_HotEvent,), ns)
    globals()[name] = cls  # importable by name, so instances pickle
    return cls


#: Per-order constructor tables used by the execution graph's hot path.
READ_EVENT = {o: _specialize(EventKind.READ, o) for o in MemoryOrder}
WRITE_EVENT = {o: _specialize(EventKind.WRITE, o) for o in MemoryOrder}
RMW_EVENT = {o: _specialize(EventKind.RMW, o) for o in MemoryOrder}
FENCE_EVENT = {o: _specialize(EventKind.FENCE, o) for o in MemoryOrder}
#: Initialization writes (``INIT_TID``): mo-origin, relaxed, ``is_init``.
INIT_WRITE_EVENT = _specialize(EventKind.WRITE, MemoryOrder.RELAXED,
                               init=True)


def clock_leq(a: Tuple[int, ...], b: Tuple[int, ...]) -> bool:
    """Pointwise ≤ on vector clocks (missing entries are zero)."""
    if len(a) > len(b):
        return all(x <= (b[i] if i < len(b) else 0) for i, x in enumerate(a))
    return all(x <= b[i] for i, x in enumerate(a))


def clock_join(a: Tuple[int, ...], b: Tuple[int, ...]) -> Tuple[int, ...]:
    """Pointwise max of two vector clocks."""
    if len(a) < len(b):
        a, b = b, a
    return tuple(
        max(x, b[i]) if i < len(b) else x for i, x in enumerate(a)
    )


def happens_before(a: Event, b: Event) -> bool:
    """hb(a, b) decided via vector clocks.

    ``a`` happens-before ``b`` iff ``b``'s clock has seen ``a``'s increment.
    Initialization events happen-before everything else.
    """
    if a is b:
        return False
    if a.is_init:
        return not b.is_init or a.uid < b.uid
    if b.is_init:
        return False
    slot = a.tid
    if slot >= len(b.clock):
        return False
    return a.clock[slot] <= b.clock[slot]
