"""C11 axiomatic weak-memory model substrate.

Implements Section 4 of the paper: events, executions, derived relations,
the consistency axioms, coherence-respecting visible-write sets, and
happens-before data-race detection.
"""

from .events import (
    ACQ,
    ACQ_REL,
    Event,
    EventKind,
    INIT_TID,
    Label,
    MemoryOrder,
    NA,
    REL,
    RLX,
    SC,
    clock_join,
    clock_leq,
    happens_before,
)
from .execution import ExecutionGraph
from .relations import Relation, identity, imm, maximal
from .visibility import VisibilityTracker
from .races import DataRace, RaceDetector
from .axioms import (
    AxiomViolation,
    check_consistency,
    is_consistent,
)
from .model import (
    C11Model,
    MODELS,
    MemoryModel,
    TsoModel,
    available_models,
    resolve_model,
)

__all__ = [
    "ACQ",
    "ACQ_REL",
    "AxiomViolation",
    "C11Model",
    "DataRace",
    "Event",
    "EventKind",
    "ExecutionGraph",
    "INIT_TID",
    "Label",
    "MODELS",
    "MemoryModel",
    "MemoryOrder",
    "NA",
    "RLX",
    "REL",
    "RaceDetector",
    "Relation",
    "SC",
    "TsoModel",
    "VisibilityTracker",
    "available_models",
    "check_consistency",
    "clock_join",
    "clock_leq",
    "happens_before",
    "identity",
    "imm",
    "is_consistent",
    "maximal",
    "resolve_model",
]
