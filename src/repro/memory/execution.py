"""The C11 execution graph ``X = <E, po, rf, mo, SC>``.

The graph is built incrementally by the runtime executor: every shared-memory
access or fence appends one event, writes are appended to their location's
modification order, and reads record their ``rf`` source.  Derived relations
(``fr``, ``sw``, ``hb``, ``com``) are materialized on demand as
:class:`repro.memory.relations.Relation` objects for auditing, while the hot
path uses vector clocks (see :mod:`repro.memory.events`).

Modification-order placement
    New writes are appended at the mo-tail of their location, which mirrors
    C11Tester's operational treatment and automatically satisfies
    write-coherence (a write can never be placed mo-before a write that
    happens-before it, because that write was appended earlier).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence

from .events import (
    Event,
    EventKind,
    FENCE_EVENT,
    INIT_TID,
    INIT_WRITE_EVENT,
    Label,
    MemoryOrder,
    READ_EVENT,
    RMW_EVENT,
    WRITE_EVENT,
    happens_before,
)
from .events import _UNSTAMPED
from .relations import Relation


class ExecutionGraph:
    """Incremental store of an execution's events and relations.

    ``fast=True`` (the default) additionally maintains O(1) incremental
    caches as events are appended: dense integer location ids
    (``loc_ids`` / ``writes_by_lid``), the per-thread last release fence,
    and a per-event *release-chain stamp* so
    :meth:`release_source` is O(1) instead of an O(po) backwards scan.
    ``fast=False`` keeps the original scan-only behaviour; the scanning
    algorithm always remains available as
    :meth:`release_source_reference`, the oracle the differential suite
    compares the stamps against.
    """

    def __init__(self, fast: bool = True) -> None:
        self.fast = fast
        self.events: List[Event] = []
        #: Per-location modification order (paper's mo), densest structure.
        self.writes_by_loc: Dict[str, List[Event]] = defaultdict(list)
        #: Per-thread program order (paper's po restricted to one thread).
        self.events_by_tid: Dict[int, List[Event]] = defaultdict(list)
        #: Global SC order as the list of seq_cst events in execution order.
        self.sc_order: List[Event] = []
        #: Dense location ids, assigned in initialization order.
        self.loc_ids: Dict[str, int] = {}
        #: ``writes_by_lid[loc_ids[loc]] is writes_by_loc[loc]``.
        self.writes_by_lid: List[List[Event]] = []
        #: Per-thread po-latest release fence (fast-path sw cache).
        self._last_release_fence: Dict[int, Event] = {}
        self._uid = 0

    def reset(self) -> None:
        """Empty the graph in place for reuse by the next run.

        Campaigns allocate one graph per trial; clearing the containers
        instead keeps the dicts' hash tables (and the object itself) warm
        across trials.  Equivalent to a freshly constructed graph with the
        same ``fast`` flag.
        """
        self.events.clear()
        self.writes_by_loc.clear()
        self.events_by_tid.clear()
        self.sc_order.clear()
        self.loc_ids.clear()
        self.writes_by_lid.clear()
        self._last_release_fence.clear()
        self._uid = 0

    # -- construction -------------------------------------------------------

    def _fresh(self, tid: int, label: Label) -> Event:
        event = Event(uid=self._uid, tid=tid, label=label)
        self._uid += 1
        by_tid = self.events_by_tid[tid]
        event.po_index = len(by_tid)
        by_tid.append(event)
        self.events.append(event)
        return event

    def _append_mo(self, event: Event, loc: str) -> None:
        """Place ``event`` at the mo-tail of ``loc``, assigning its lid."""
        lid = self.loc_ids.get(loc)
        if lid is None:
            lid = len(self.writes_by_lid)
            self.loc_ids[loc] = lid
            writes = self.writes_by_loc[loc]
            self.writes_by_lid.append(writes)
        else:
            writes = self.writes_by_lid[lid]
        event.lid = lid
        event.mo_index = len(writes)
        writes.append(event)

    def _stamp_release_chain(self, event: Event) -> None:
        """Fast path: memoize :meth:`release_source_reference` at creation.

        All inputs of the release-chain computation (the event's order, its
        po-prefix of fences, its rf source for RMWs) are fixed once the
        event is appended, so the result can be stamped incrementally:
        O(1) per event against the reference's O(po) scan.
        """
        if event.order.is_release:
            event._release_chain = event
            return
        fence = self._last_release_fence.get(event.tid)
        if fence is not None:
            event._release_chain = fence
            return
        if event.is_rmw:
            source = event.reads_from
            chain = source._release_chain
            if chain is _UNSTAMPED:
                chain = self.release_source_reference(source)
            event._release_chain = chain
            return
        event._release_chain = None

    # The ``add_*`` constructors inline ``_fresh`` and build specialized
    # ``(kind, order)`` event classes (see ``events._specialize``): one
    # event is allocated per executed operation, so the generic
    # Label+Event construction pair was the single largest allocation
    # cost in the engine.

    def add_init_write(self, loc: str, value: object) -> Event:
        """Record the initialization write for a location.

        Initialization writes sit at the mo-origin of their location and
        happen-before every other event (paper: "memory locations are
        initialized at the start of the execution").
        """
        by_tid = self.events_by_tid[INIT_TID]
        event = INIT_WRITE_EVENT(self._uid, INIT_TID, loc, None, value,
                                 len(by_tid))
        self._uid += 1
        by_tid.append(event)
        self.events.append(event)
        self._append_mo(event, loc)
        if self.fast:
            self._stamp_release_chain(event)
        return event

    def add_write(self, tid: int, loc: str, value: object,
                  order: MemoryOrder) -> Event:
        """Append a store event at the mo-tail of ``loc``."""
        by_tid = self.events_by_tid[tid]
        event = WRITE_EVENT[order](self._uid, tid, loc, None, value,
                                   len(by_tid))
        self._uid += 1
        by_tid.append(event)
        self.events.append(event)
        self._append_mo(event, loc)
        if order.is_seq_cst:
            event.sc_index = len(self.sc_order)
            self.sc_order.append(event)
        if self.fast:
            self._stamp_release_chain(event)
        return event

    def issue_write(self, tid: int, loc: str, value: object,
                    order: MemoryOrder) -> Event:
        """Create a store event in po *without* placing it in mo.

        Store-buffer models (x86-TSO, PSO) split a write into *issue*
        (the event exists, po-ordered, thread-locally visible) and
        *commit* (the event becomes globally visible in mo).  The release
        chain is stamped here: its inputs — the event's order and its
        po-prefix of fences — are fixed at issue time, so stamping at
        commit time could wrongly observe a release fence that is
        po-*after* the write.  :meth:`commit_write` finishes the job.
        """
        by_tid = self.events_by_tid[tid]
        event = WRITE_EVENT[order](self._uid, tid, loc, None, value,
                                   len(by_tid))
        self._uid += 1
        by_tid.append(event)
        self.events.append(event)
        if self.fast:
            self._stamp_release_chain(event)
        return event

    def commit_write(self, event: Event) -> Event:
        """Commit a previously :meth:`issue_write`-issued store to mo.

        Places the event at the mo-tail of its location (assigning the
        dense lid / mo index the fast-path views and the sanitizer rely
        on) and, for seq_cst stores, appends it to the global SC order —
        commit is the point where the store becomes globally visible, so
        that is its SC position.
        """
        if event.mo_index >= 0:
            raise ValueError(f"{event!r} is already committed to mo")
        self._append_mo(event, event.loc)
        if event.order.is_seq_cst:
            event.sc_index = len(self.sc_order)
            self.sc_order.append(event)
        return event

    def add_read(self, tid: int, loc: str, source: Event,
                 order: MemoryOrder) -> Event:
        """Append a load event reading from ``source``."""
        if source.loc != loc:
            raise ValueError(
                f"rf source {source!r} is at {source.loc}, not {loc}"
            )
        by_tid = self.events_by_tid[tid]
        event = READ_EVENT[order](self._uid, tid, loc, source.wval, None,
                                  len(by_tid))
        event.reads_from = source
        self._uid += 1
        by_tid.append(event)
        self.events.append(event)
        if order.is_seq_cst:
            event.sc_index = len(self.sc_order)
            self.sc_order.append(event)
        return event

    def add_rmw(self, tid: int, loc: str, source: Event, new_value: object,
                order: MemoryOrder) -> Event:
        """Append a successful atomic update (U event).

        The update reads from ``source`` and appends its own write at the
        mo-tail.  Callers must pass the current mo-maximal write as
        ``source`` so that the atomicity axiom ``fr;mo = ∅`` holds (see
        :meth:`repro.memory.axioms.check_atomicity`).
        """
        by_tid = self.events_by_tid[tid]
        event = RMW_EVENT[order](self._uid, tid, loc, source.wval,
                                 new_value, len(by_tid))
        event.reads_from = source
        self._uid += 1
        by_tid.append(event)
        self.events.append(event)
        self._append_mo(event, loc)
        if order.is_seq_cst:
            event.sc_index = len(self.sc_order)
            self.sc_order.append(event)
        if self.fast:
            self._stamp_release_chain(event)
        return event

    def add_fence(self, tid: int, order: MemoryOrder) -> Event:
        by_tid = self.events_by_tid[tid]
        event = FENCE_EVENT[order](self._uid, tid, None, None, None,
                                   len(by_tid))
        self._uid += 1
        by_tid.append(event)
        self.events.append(event)
        if order.is_seq_cst:
            event.sc_index = len(self.sc_order)
            self.sc_order.append(event)
        if self.fast and event.is_release_fence:
            self._last_release_fence[tid] = event
        return event

    # -- simple queries -----------------------------------------------------

    def mo_max(self, loc: str) -> Event:
        """The mo-maximal write at ``loc`` (the 'latest' value)."""
        writes = self.writes_by_loc[loc]
        if not writes:
            raise KeyError(f"location {loc!r} was never initialized")
        return writes[-1]

    def mo_suffix(self, loc: str, depth: int) -> List[Event]:
        """The ``depth`` mo-latest writes at ``loc`` in mo order.

        Equivalently: the writes with fewer than ``depth`` ``imm(mo)``
        successors (Definition 5's history bound), answered O(depth) from
        the mo tail array.
        """
        return self.writes_by_loc[loc][-depth:]

    def locations(self) -> Iterable[str]:
        return self.writes_by_loc.keys()

    def thread_ids(self) -> Sequence[int]:
        return [tid for tid in self.events_by_tid if tid != INIT_TID]

    @property
    def size(self) -> int:
        return len(self.events)

    def last_sc(self, before: Optional[Event] = None) -> Optional[Event]:
        """The SC-maximal event, or the SC-predecessor of ``before``.

        Used by PCTWM's ``getSC`` to fetch the previous event in SC order.
        """
        if before is None:
            return self.sc_order[-1] if self.sc_order else None
        if before.sc_index <= 0:
            return None
        return self.sc_order[before.sc_index - 1]

    # -- sw / release-sequence machinery -------------------------------------

    def release_source(self, write: Event) -> Optional[Event]:
        """The sw source reachable from ``write`` through ``rf+`` chains.

        Fast path: returns the release-chain stamp memoized when the event
        was appended (O(1)).  Falls back to the reference scan for events
        the graph did not stamp (``fast=False`` graphs, hand-built events).
        """
        chain = write._release_chain
        if chain is _UNSTAMPED:
            return self.release_source_reference(write)
        return chain

    def release_source_reference(self, write: Event) -> Optional[Event]:
        """Reference oracle for :meth:`release_source` (O(po) scans).

        Implements the source side of
        ``sw ≜ [E⊒rel]; ([F]; po)?; rf+; (po; [F])?; [E⊒acq]``:

        * if ``write`` is itself a release write, it is the source;
        * else if a release fence precedes ``write`` in po, that fence is
          the source (the ``[F]; po`` prefix);
        * else if ``write`` is an RMW, the chain continues through the
          write it read from (the ``rf+`` closure).

        Returns ``None`` when no release source exists, i.e. reading from
        ``write`` cannot synchronize.  The differential suite checks this
        scan against the incremental stamps on every event.
        """
        seen = set()
        current: Optional[Event] = write
        while current is not None and current.uid not in seen:
            seen.add(current.uid)
            if current.order.is_release:
                return current
            fence = self._release_fence_before(current)
            if fence is not None:
                return fence
            current = current.reads_from if current.is_rmw else None
        return None

    def _release_fence_before(self, event: Event) -> Optional[Event]:
        if event.is_init:
            return None
        for prior in reversed(self.events_by_tid[event.tid][: event.po_index]):
            if prior.is_release_fence:
                return prior
        return None

    # -- relation materialization (audit path) ------------------------------

    def po(self) -> Relation:
        rel = Relation()
        for tid, events in self.events_by_tid.items():
            if tid == INIT_TID:
                continue
            for i, a in enumerate(events):
                for b in events[i + 1 :]:
                    rel.add(a, b)
        # Initialization writes po-precede nothing but happen-before all;
        # the paper treats them as a separate set of initial events.
        return rel

    def rf(self) -> Relation:
        rel = Relation()
        for e in self.events:
            if e.reads_from is not None:
                rel.add(e.reads_from, e)
        return rel

    def mo(self) -> Relation:
        rel = Relation()
        for writes in self.writes_by_loc.values():
            for i, a in enumerate(writes):
                for b in writes[i + 1 :]:
                    rel.add(a, b)
        return rel

    def sc(self) -> Relation:
        rel = Relation()
        for i, a in enumerate(self.sc_order):
            for b in self.sc_order[i + 1 :]:
                rel.add(a, b)
        return rel

    def fr(self) -> Relation:
        """From-read: ``fr ≜ (rf⁻¹; mo) \\ [E]``."""
        rel = Relation()
        for e in self.events:
            w = e.reads_from
            if w is None or w.loc is None:
                continue
            for later in self.writes_by_loc[w.loc][w.mo_index + 1 :]:
                if later is not e:
                    rel.add(e, later)
        return rel

    def sw(self) -> Relation:
        """Synchronizes-with per RC20 (materialized from rf edges).

        Audit path: deliberately uses the scanning reference oracle, not
        the fast-path stamps, so the sanitizer cross-checks the stamps.
        """
        rel = Relation()
        for e in self.events:
            w = e.reads_from
            if w is None:
                continue
            source = self.release_source_reference(w)
            if source is None or source.is_init:
                continue
            if e.order.is_acquire:
                rel.add(source, e)
            else:
                # (po; [F]) suffix: a later acquire fence in e's thread is
                # the sink.
                for later in self.events_by_tid[e.tid][e.po_index + 1 :]:
                    if later.is_acquire_fence:
                        rel.add(source, later)
        return rel

    def hb(self) -> Relation:
        """Happens-before: ``(po ∪ sw)⁺`` plus initialization edges."""
        base = self.po() | self.sw()
        for e in self.events:
            if e.is_init:
                for other in self.events:
                    if other is not e and not other.is_init:
                        base.add(e, other)
        return base.transitive()

    def com(self) -> Relation:
        """Communication relation: ``com ≜ (rf ∪ hb ∪ SC) \\ po``.

        Initialization edges are excluded: reading the initial value of a
        location is not thread communication (Definition 2 concerns
        *concurrent* events).
        """
        po = self.po()
        out = Relation()
        for a, b in (self.rf() | self.hb() | self.sc()).edges():
            if a.is_init or b.is_init:
                continue
            if a.tid == b.tid:
                continue
            if (a, b) not in po:
                out.add(a, b)
        return out

    def happens_before(self, a: Event, b: Event) -> bool:
        """Vector-clock hb query (fast path)."""
        return happens_before(a, b)
