"""The pluggable memory-model interface.

Section 5 of the paper argues PCTWM is memory-model agnostic: the
algorithm needs a scheduler-facing execution pipeline that exposes the
model's nondeterminism as schedulable choices, plus a notion of
communication events.  This module makes that claim operational — a
:class:`MemoryModel` names everything the harness layers (campaigns,
artifacts, replay, sanitizer, bench, CLI) need to run any scheduler
against any model:

* an executor class whose ``run`` produces a
  :class:`repro.runtime.executor.RunResult` (same shape for every
  model, so campaign folding, bug artifacts, and replay are
  model-independent);
* a pooled-state factory (campaign workers reset one state per trial);
* which registry schedulers the model supports (e.g. TSO excludes the
  C11Tester baseline, whose reads-from nondeterminism TSO lacks).

A backend supplies the model-*specific* parts of the pipeline by
subclassing the generic executor:

* **enabled-action enumeration** — ``ExecutionState.enabled_tids``;
  store-buffer models add pseudo-threads for their commit actions (the
  TSO backend's flush agents);
* **communication-event identification** — the ``_comm`` flag on the
  ops the model schedules (TSO's ``FlushOp._comm = True`` makes flushes
  the communication sinks PCTWM delays);
* **thread-local view construction** — what a read may observe
  (C11: the coherence-visible suffix via ``choose_read_from``; TSO:
  deterministic store-forward-or-mo-max);
* **commit-time mo insertion** — when a write reaches the modification
  order (C11: at execution, ``add_write``; TSO: at flush,
  ``issue_write`` + ``commit_write``).

Registry usage::

    model = resolve_model("tso")
    result = model.run_once(program, scheduler, max_steps=2000)
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = ["MemoryModel", "C11Model", "TsoModel", "MODELS",
           "available_models", "resolve_model"]


class MemoryModel:
    """One memory model's bindings into the generic execution pipeline."""

    #: Registry key (`--model` value).
    name = "abstract"
    #: Scheduler-registry names this model supports; None means all.
    scheduler_allowlist: Optional[Tuple[str, ...]] = None
    #: Whether runtime thread creation (SpawnOp) is supported.
    supports_spawn = True

    def executor_class(self):
        raise NotImplementedError

    def state_class(self):
        raise NotImplementedError

    def make_executor(self, program, scheduler, **kwargs):
        """Build an executor; kwargs as for :class:`runtime.Executor`."""
        return self.executor_class()(program, scheduler, **kwargs)

    def make_state(self, program, spin_threshold: int = 8,
                   fast: bool = True):
        """Build a poolable execution state for campaign workers."""
        return self.state_class()(program, spin_threshold, fast=fast)

    def run_once(self, program, scheduler, state=None, **kwargs):
        """One test run; ``state`` may be a pooled, reset state."""
        return self.make_executor(program, scheduler, **kwargs).run(state)

    def supports_scheduler(self, scheduler_name: str) -> bool:
        allow = self.scheduler_allowlist
        return allow is None or scheduler_name in allow

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MemoryModel {self.name}>"


class C11Model(MemoryModel):
    """The default backend: the C11 axiomatic path of Section 4."""

    name = "c11"

    def executor_class(self):
        from ..runtime.executor import Executor

        return Executor

    def state_class(self):
        from ..runtime.executor import ExecutionState

        return ExecutionState


class TsoModel(MemoryModel):
    """x86-TSO via store buffers and flush agents (repro.tso.backend).

    Only the schedulers whose decision structure survives the model
    change are allowed: naive/PCT/PCTWM/POS schedule threads (and under
    TSO, flush agents).  The C11Tester baseline and the reads-from
    ablations manipulate rf nondeterminism, which TSO does not have —
    reads are deterministic given flush timing.
    """

    name = "tso"
    scheduler_allowlist = ("naive", "pct", "pctwm", "pos")
    #: Flush agents are allocated per thread at run start.
    supports_spawn = False

    def executor_class(self):
        from ..tso.backend import TsoExecutor

        return TsoExecutor

    def state_class(self):
        from ..tso.backend import TsoExecutionState

        return TsoExecutionState


MODELS: Dict[str, MemoryModel] = {m.name: m for m in (C11Model(),
                                                      TsoModel())}


def available_models() -> Tuple[str, ...]:
    return tuple(sorted(MODELS))


def resolve_model(name: str) -> MemoryModel:
    """Look up a model by registry key, with a helpful error."""
    try:
        return MODELS[name]
    except KeyError:
        options = ", ".join(available_models())
        raise ValueError(
            f"unknown memory model {name!r}; available: {options}"
        ) from None
