"""C11 consistency axioms (Section 4 of the paper).

An execution is *consistent* when:

* (write-coherence)  ``mo; rf?; hb?`` is irreflexive
* (read-coherence)   ``fr; rf?; hb``  is irreflexive
* (Atomicity)        ``fr; mo = ∅``
* (irrMOSC)          ``mo; SC`` is irreflexive
* (SC)               ``hb ∪ rf ∪ SC`` is acyclic  (C11Tester's formulation)

The executor generates executions that satisfy these by construction; this
module is the independent auditor used by tests and by
:mod:`repro.analysis` to verify that claim on every generated graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .execution import ExecutionGraph
from .relations import Relation


@dataclass(frozen=True)
class AxiomViolation:
    """A named consistency-axiom failure, for reporting."""

    axiom: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - reporting aid
        return f"{self.axiom}: {self.detail}"


def _reflexive_pairs(rel: Relation) -> List[str]:
    return [repr(a) for a, b in rel.edges() if a is b or a == b]


def check_write_coherence(graph: ExecutionGraph) -> List[AxiomViolation]:
    """``mo; rf?; hb?`` irreflexive."""
    events = set(graph.events)
    mo = graph.mo()
    rf_opt = graph.rf().reflexive(events)
    hb_opt = graph.hb().reflexive(events)
    bad = _reflexive_pairs(mo.compose(rf_opt).compose(hb_opt))
    return [AxiomViolation("write-coherence", e) for e in bad]


def check_read_coherence(graph: ExecutionGraph) -> List[AxiomViolation]:
    """``fr; rf?; hb`` irreflexive."""
    events = set(graph.events)
    fr = graph.fr()
    rf_opt = graph.rf().reflexive(events)
    hb = graph.hb()
    bad = _reflexive_pairs(fr.compose(rf_opt).compose(hb))
    return [AxiomViolation("read-coherence", e) for e in bad]


def check_atomicity(graph: ExecutionGraph) -> List[AxiomViolation]:
    """RMWs read their immediate mo-predecessor.

    The paper states this as ``(fr; mo) = ∅``, which — with ``fr`` defined
    over the full event set — is the standard RC11 requirement that
    ``fr; mo`` is *irreflexive*: no write may sit mo-between an RMW and the
    write it reads from (otherwise ``fr(u, w'); mo(w', u)`` closes a cycle
    at ``u``).
    """
    out: List[AxiomViolation] = []
    for u in graph.events:
        if not u.is_rmw or u.reads_from is None:
            continue
        source = u.reads_from
        between = [
            w for w in graph.writes_by_loc[u.loc]
            if source.mo_index < w.mo_index < u.mo_index
        ]
        if between:
            out.append(AxiomViolation(
                "atomicity",
                f"{u!r} is not mo-adjacent to its source {source!r}: "
                f"{between[0]!r} sits in between",
            ))
    return out


def check_irr_mo_sc(graph: ExecutionGraph) -> List[AxiomViolation]:
    """``mo; SC`` irreflexive: mo and SC agree on same-location accesses."""
    bad = _reflexive_pairs(graph.mo().compose(graph.sc()))
    return [AxiomViolation("irrMOSC", e) for e in bad]


def check_sc_acyclic(graph: ExecutionGraph) -> List[AxiomViolation]:
    """``hb ∪ rf ∪ SC`` acyclic (C11Tester's (SC) axiom).

    Acyclicity of this union also forbids out-of-thin-air reads since
    ``po ⊆ hb``.
    """
    union = graph.hb() | graph.rf() | graph.sc()
    if union.is_acyclic():
        return []
    return [AxiomViolation("SC", "hb ∪ rf ∪ SC has a cycle")]


def check_rf_wellformed(graph: ExecutionGraph) -> List[AxiomViolation]:
    """Every read reads-from exactly one same-location write."""
    out: List[AxiomViolation] = []
    for e in graph.events:
        if e.is_read and not e.is_init:
            w = e.reads_from
            if w is None:
                out.append(AxiomViolation("rf", f"{e!r} has no rf source"))
            elif not w.is_write or w.loc != e.loc:
                out.append(AxiomViolation("rf", f"{e!r} reads from {w!r}"))
            elif w.label.wval != e.label.rval:
                out.append(
                    AxiomViolation("rf", f"{e!r} value differs from {w!r}")
                )
    return out


ALL_CHECKS = (
    check_rf_wellformed,
    check_write_coherence,
    check_read_coherence,
    check_atomicity,
    check_irr_mo_sc,
    check_sc_acyclic,
)


def check_consistency(graph: ExecutionGraph) -> List[AxiomViolation]:
    """Run every axiom; an empty list means the execution is consistent."""
    out: List[AxiomViolation] = []
    for check in ALL_CHECKS:
        out.extend(check(graph))
    return out


def is_consistent(graph: ExecutionGraph) -> bool:
    return not check_consistency(graph)
