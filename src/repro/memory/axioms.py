"""C11 consistency axioms (Section 4 of the paper).

An execution is *consistent* when:

* (write-coherence)  ``mo; rf?; hb?`` is irreflexive
* (read-coherence)   ``fr; rf?; hb``  is irreflexive
* (Atomicity)        ``fr; mo = ∅``
* (irrMOSC)          ``mo; SC`` is irreflexive
* (SC)               ``hb ∪ rf ∪ SC`` is acyclic  (C11Tester's formulation)

The executor generates executions that satisfy these by construction; this
module is the independent auditor used by tests and by
:mod:`repro.analysis` to verify that claim on every generated graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .events import Event
from .execution import ExecutionGraph
from .relations import Relation


@dataclass(frozen=True)
class AxiomViolation:
    """A named consistency-axiom failure, for reporting."""

    axiom: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - reporting aid
        return f"{self.axiom}: {self.detail}"


def _reflexive_pairs(rel: Relation) -> List[str]:
    return [repr(a) for a, b in rel.edges() if a is b or a == b]


def check_write_coherence(graph: ExecutionGraph) -> List[AxiomViolation]:
    """``mo; rf?; hb?`` irreflexive."""
    events = set(graph.events)
    mo = graph.mo()
    rf_opt = graph.rf().reflexive(events)
    hb_opt = graph.hb().reflexive(events)
    bad = _reflexive_pairs(mo.compose(rf_opt).compose(hb_opt))
    return [AxiomViolation("write-coherence", e) for e in bad]


def check_read_coherence(graph: ExecutionGraph) -> List[AxiomViolation]:
    """``fr; rf?; hb`` irreflexive."""
    events = set(graph.events)
    fr = graph.fr()
    rf_opt = graph.rf().reflexive(events)
    hb = graph.hb()
    bad = _reflexive_pairs(fr.compose(rf_opt).compose(hb))
    return [AxiomViolation("read-coherence", e) for e in bad]


def check_atomicity(graph: ExecutionGraph) -> List[AxiomViolation]:
    """RMWs read their immediate mo-predecessor.

    The paper states this as ``(fr; mo) = ∅``, which — with ``fr`` defined
    over the full event set — is the standard RC11 requirement that
    ``fr; mo`` is *irreflexive*: no write may sit mo-between an RMW and the
    write it reads from (otherwise ``fr(u, w'); mo(w', u)`` closes a cycle
    at ``u``).
    """
    out: List[AxiomViolation] = []
    for u in graph.events:
        if not u.is_rmw or u.reads_from is None:
            continue
        source = u.reads_from
        between = [
            w for w in graph.writes_by_loc[u.loc]
            if source.mo_index < w.mo_index < u.mo_index
        ]
        if between:
            out.append(AxiomViolation(
                "atomicity",
                f"{u!r} is not mo-adjacent to its source {source!r}: "
                f"{between[0]!r} sits in between",
            ))
    return out


def check_irr_mo_sc(graph: ExecutionGraph) -> List[AxiomViolation]:
    """``mo; SC`` irreflexive: mo and SC agree on same-location accesses."""
    bad = _reflexive_pairs(graph.mo().compose(graph.sc()))
    return [AxiomViolation("irrMOSC", e) for e in bad]


def check_sc_acyclic(graph: ExecutionGraph) -> List[AxiomViolation]:
    """``hb ∪ rf ∪ SC`` acyclic (C11Tester's (SC) axiom).

    Acyclicity of this union also forbids out-of-thin-air reads since
    ``po ⊆ hb``.
    """
    union = graph.hb() | graph.rf() | graph.sc()
    if union.is_acyclic():
        return []
    return [AxiomViolation("SC", "hb ∪ rf ∪ SC has a cycle")]


def check_rf_wellformed(graph: ExecutionGraph) -> List[AxiomViolation]:
    """Every read reads-from exactly one same-location write."""
    out: List[AxiomViolation] = []
    for e in graph.events:
        if e.is_read and not e.is_init:
            w = e.reads_from
            if w is None:
                out.append(AxiomViolation("rf", f"{e!r} has no rf source"))
            elif not w.is_write or w.loc != e.loc:
                out.append(AxiomViolation("rf", f"{e!r} reads from {w!r}"))
            elif w.wval != e.rval:
                out.append(
                    AxiomViolation("rf", f"{e!r} value differs from {w!r}")
                )
    return out


ALL_CHECKS = (
    check_rf_wellformed,
    check_write_coherence,
    check_read_coherence,
    check_atomicity,
    check_irr_mo_sc,
    check_sc_acyclic,
)


def check_consistency(graph: ExecutionGraph) -> List[AxiomViolation]:
    """Run every axiom; an empty list means the execution is consistent."""
    out: List[AxiomViolation] = []
    for check in ALL_CHECKS:
        out.extend(check(graph))
    return out


def is_consistent(graph: ExecutionGraph) -> bool:
    return not check_consistency(graph)


class IncrementalCoherenceChecker:
    """Cheap online coherence audit, fed one event at a time.

    The full axiom check (:func:`check_consistency`) materializes O(n²)
    relations, so the runtime sanitizer runs it once at run end; *during*
    the run this checker audits each committed event in O(1) against the
    per-location coherence discipline the executor is supposed to uphold
    by construction:

    * writes append at the mo-tail of their location;
    * a read never observes a write mo-older than one the same thread
      already observed at that location (read coherence), nor mo-older
      than the thread's own latest write there (write coherence);
    * an RMW reads from its immediate mo-predecessor (atomicity).

    The checker keeps its own floors — deliberately independent of
    :class:`repro.memory.visibility.VisibilityTracker`, whose bugs it
    exists to catch.  Violations are capped at ``max_violations`` so a
    badly broken run cannot exhaust memory.
    """

    def __init__(self, graph: ExecutionGraph, max_violations: int = 16):
        self.violations: List[AxiomViolation] = []
        self.max_violations = max_violations
        self._read_floor: Dict[Tuple[int, str], int] = {}
        self._own_write: Dict[Tuple[int, str], int] = {}
        self._mo_tail: Dict[str, int] = {
            loc: len(writes) for loc, writes in graph.writes_by_loc.items()
        }

    def _flag(self, axiom: str, detail: str) -> None:
        if len(self.violations) < self.max_violations:
            self.violations.append(AxiomViolation(axiom, f"online: {detail}"))

    def on_event(self, event: Event) -> None:
        """Audit one committed event (read, write, RMW; fences are free)."""
        if event.is_fence:
            return
        if event.reads_from is not None:
            self._on_read(event)
        if event.is_write:
            self._on_write(event)

    def _on_read(self, event: Event) -> None:
        tid, loc = event.tid, event.loc
        source = event.reads_from
        floor = self._read_floor.get((tid, loc), 0)
        if source.mo_index < floor:
            self._flag(
                "read-coherence",
                f"{event!r} observes {source!r} at mo index "
                f"{source.mo_index}, below the thread's read floor {floor}",
            )
        own = self._own_write.get((tid, loc), -1)
        if source.mo_index < own:
            self._flag(
                "write-coherence",
                f"{event!r} observes {source!r} at mo index "
                f"{source.mo_index}, older than the thread's own write "
                f"at {own}",
            )
        if event.is_rmw and event.mo_index != source.mo_index + 1:
            self._flag(
                "atomicity",
                f"{event!r} is not mo-adjacent to its source {source!r} "
                f"({source.mo_index} -> {event.mo_index})",
            )
        if source.mo_index > floor:
            self._read_floor[(tid, loc)] = source.mo_index

    def _on_write(self, event: Event) -> None:
        loc = event.loc
        expected = self._mo_tail.get(loc, 0)
        if event.mo_index != expected:
            self._flag(
                "mo-tail",
                f"{event!r} placed at mo index {event.mo_index}, "
                f"expected the tail {expected}",
            )
        self._mo_tail[loc] = event.mo_index + 1
        self._own_write[(event.tid, loc)] = event.mo_index
