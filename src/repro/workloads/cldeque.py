"""Chase-Lev work-stealing deque with a seeded publication bug.

Paper Table 1: LOC 122, k ≈ 86, k_com ≈ 56, bug depth d = 1.

The owner pushes to and pops from the bottom of its deque; a thief steals
from the top with a CAS.  The seeded bug makes the owner's ``bottom``
publication ``relaxed`` (a correct deque releases): the buffer-slot write
is then not ordered before the bottom bump, so a thief that observes the
new bottom (one communication relation) can win the top CAS and read the
slot from its stale local view — the pool's poison value.

Depth 1: the thief's ``bottom`` load is the single required communication
sink; the slot read then misses locally.  The thief's retry loop is bounded
below the spin threshold so a ``d = 0`` execution gives up empty-handed.
"""

from __future__ import annotations

from ..memory.events import ACQ, REL, RLX
from ..runtime.errors import require
from ..runtime.program import Program

POISON = -1

#: Steal attempts; below the executor's default spin threshold (8).
STEAL_ATTEMPTS = 6


def cldeque(inserted_writes: int = 0, pushes: int = 3,
            fixed: bool = False) -> Program:
    """Build the cldeque benchmark: one owner, one thief.

    ``fixed=True`` publishes ``bottom`` with release and makes the thief's
    ``bottom`` load acquire, so a stolen slot is always initialized
    (soundness check).
    """
    publish_order = REL if fixed else RLX
    steal_order = ACQ if fixed else RLX
    p = Program("cldeque" + ("-fixed" if fixed else ""))
    p.races_are_bugs = False
    slots = [p.atomic(f"buf{i}", POISON) for i in range(pushes)]
    stamps = [p.atomic(f"stamp{i}", POISON) for i in range(pushes)]
    top = p.atomic("top", 0)
    bottom = p.atomic("bottom", 0)

    def owner():
        b = 0
        for i in range(pushes):
            yield slots[b].store(100 + i, RLX)
            yield stamps[b].store(i, RLX)  # element version stamp
            b += 1
            # Relaxed publication is the seeded bug (correct: release).
            yield bottom.store(b, publish_order)
            for _ in range(inserted_writes):
                yield bottom.store(b, publish_order)  # benign (Fig. 6)
        # Pop one element from the bottom (owner side of the protocol).
        b -= 1
        yield bottom.store(b, publish_order)
        _ok, t = yield top.cas(-1, -1, RLX)  # RMW-read of top
        taken = None
        if t < b:
            taken = yield slots[b].load(RLX)  # own write: always fresh
        elif t == b:
            ok, _ = yield top.cas(t, t + 1, RLX)
            if ok:
                taken = yield slots[b].load(RLX)
            yield bottom.store(b + 1, RLX)
        else:
            yield bottom.store(b + 1, RLX)
        if taken is not None:
            require(taken != POISON, "cldeque: owner popped poison")
        return taken

    def thief():
        stolen = []
        for _ in range(STEAL_ATTEMPTS):
            b = yield bottom.load(steal_order)  # the d = 1 sink
            if b == 0:
                continue  # deque looks empty from here
            _ok, t = yield top.cas(-1, -1, RLX)  # RMW-read of top
            if t >= b:
                continue  # everything below bottom already taken
            ok, _ = yield top.cas(t, t + 1, RLX)
            if not ok:
                continue  # lost the race for this element
            item = yield slots[t].load(RLX)
            stamp = yield stamps[t].load(RLX)
            require(not (item == POISON and stamp == POISON),
                    "cldeque: stole an element whose payload and stamp "
                    "are both unpublished (poison)")
            stolen.append(item)
        return stolen

    p.add_thread(owner)
    p.add_thread(thief)
    return p
