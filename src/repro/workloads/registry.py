"""Registry of the paper's nine data-structure benchmarks (Table 1).

Each entry records the factory plus the paper's reported characteristics
(LOC, estimated k, estimated k_com, bug depth d) so the harness can
reproduce Table 1 side by side with our measured values, and Tables 2-3 /
Figures 5-6 know which parameters to sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping

from ..runtime.program import Program
from .barrier import barrier
from .cldeque import cldeque
from .dekker import dekker
from .linuxrwlocks import linuxrwlocks
from .mcslock import mcslock
from .mpmcqueue import mpmcqueue
from .msqueue import msqueue
from .rwlock import rwlock
from .seqlock import seqlock

Factory = Callable[..., Program]


@dataclass(frozen=True)
class BenchmarkInfo:
    """One Table 1 row: the paper's reported benchmark characteristics.

    ``measured_depth`` is the empirical bug depth of *our* re-implementation
    (PCTWM's smallest hitting ``d``); it differs from ``paper_depth`` on a
    few benchmarks because this substrate forces atomic updates to observe
    the mo-maximal write, which makes some communications free (see
    DESIGN.md).  ``best_history`` is the history depth the sweep found most
    effective at ``measured_depth``.
    """

    name: str
    factory: Factory
    paper_loc: int
    paper_k: int
    paper_k_com: int
    paper_depth: int
    measured_depth: int = 0
    best_history: int = 1
    #: Benchmarks the paper uses for the Figure 6 inserted-writes sweep.
    in_figure6: bool = False

    def build(self, inserted_writes: int = 0) -> Program:
        return self.factory(inserted_writes=inserted_writes)


BENCHMARKS: Dict[str, BenchmarkInfo] = {
    info.name: info
    for info in (
        BenchmarkInfo("dekker", dekker, 50, 20, 14, 0,
                      measured_depth=0, best_history=1, in_figure6=True),
        BenchmarkInfo("msqueue", msqueue, 232, 49, 31, 0,
                      measured_depth=0, best_history=1),
        BenchmarkInfo("barrier", barrier, 38, 15, 10, 1,
                      measured_depth=1, best_history=1),
        BenchmarkInfo("cldeque", cldeque, 122, 86, 56, 1,
                      measured_depth=1, best_history=1, in_figure6=True),
        BenchmarkInfo("mcslock", mcslock, 75, 26, 16, 1,
                      measured_depth=2, best_history=1),
        BenchmarkInfo("mpmcqueue", mpmcqueue, 108, 19, 17, 2,
                      measured_depth=1, best_history=1, in_figure6=True),
        BenchmarkInfo("linuxrwlocks", linuxrwlocks, 90, 20, 19, 2,
                      measured_depth=1, best_history=1),
        BenchmarkInfo("rwlock", rwlock, 98, 84, 74, 2,
                      measured_depth=3, best_history=1, in_figure6=True),
        BenchmarkInfo("seqlock", seqlock, 50, 20, 18, 3,
                      measured_depth=3, best_history=2),
    )
}

#: Table order used throughout the paper's evaluation section.
BENCHMARK_ORDER = list(BENCHMARKS)


def resolve_program_factory(kind: str, name: str) -> Factory:
    """Look up a program factory by registry kind and name.

    ``kind`` is ``"benchmark"`` (Table 1 data structures), ``"litmus"``
    (the classic shapes, including the extended gallery), ``"app"``
    (the Table 4 application models) or ``"fuzz"`` (seed-keyed generated
    programs; the name is display-only — the factory parameters carry
    the generation seed or an explicit plan).  Lazy imports keep this
    module free of cycles with the litmus/app/fuzz packages.
    """
    if kind == "benchmark":
        if name not in BENCHMARKS:
            known = ", ".join(BENCHMARKS)
            raise ValueError(f"unknown benchmark {name!r}; known: {known}")
        return BENCHMARKS[name].factory
    if kind == "litmus":
        from ..litmus import ALL_LITMUS, EXTENDED_LITMUS

        gallery = {**ALL_LITMUS, **EXTENDED_LITMUS}
        if name not in gallery:
            known = ", ".join(gallery)
            raise ValueError(f"unknown litmus {name!r}; known: {known}")
        return gallery[name]
    if kind == "app":
        from .apps import APPLICATIONS, EXTENSION_APPLICATIONS

        apps = {**APPLICATIONS, **EXTENSION_APPLICATIONS}
        if name not in apps:
            known = ", ".join(apps)
            raise ValueError(f"unknown application {name!r}; known: {known}")
        return apps[name]
    if kind == "fuzz":
        from ..fuzz.generator import fuzz_program

        return fuzz_program
    raise ValueError(
        f"unknown program kind {kind!r}; "
        "expected 'benchmark', 'litmus', 'app' or 'fuzz'"
    )


@dataclass(frozen=True)
class ProgramSpec:
    """A picklable zero-argument program factory.

    The parallel campaign engine ships work units across process
    boundaries, so program factories must pickle; closures over
    :class:`BenchmarkInfo` objects do not.  A spec names the program in a
    registry (``kind`` + ``name``) and carries the factory keyword
    arguments (e.g. ``{"inserted_writes": 4}`` for the Figure 6 sweep),
    which is all a worker needs to rebuild the program.
    """

    name: str
    kind: str = "benchmark"
    params: Mapping[str, Any] = field(default_factory=dict)

    #: Registry programs keep all per-run state inside their generator
    #: thread bodies, so one built :class:`Program` may be instantiated
    #: run after run.  The campaign fast path uses this to build the
    #: program once per worker instead of once per trial; arbitrary
    #: factory closures make no such promise and are rebuilt every time.
    supports_reuse = True

    def __post_init__(self) -> None:
        resolve_program_factory(self.kind, self.name)  # fail fast
        object.__setattr__(self, "params", dict(self.params))

    def build(self) -> Program:
        factory = resolve_program_factory(self.kind, self.name)
        return factory(**self.params)

    def __call__(self) -> Program:
        return self.build()
