"""Registry of the paper's nine data-structure benchmarks (Table 1).

Each entry records the factory plus the paper's reported characteristics
(LOC, estimated k, estimated k_com, bug depth d) so the harness can
reproduce Table 1 side by side with our measured values, and Tables 2-3 /
Figures 5-6 know which parameters to sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from ..runtime.program import Program
from .barrier import barrier
from .cldeque import cldeque
from .dekker import dekker
from .linuxrwlocks import linuxrwlocks
from .mcslock import mcslock
from .mpmcqueue import mpmcqueue
from .msqueue import msqueue
from .rwlock import rwlock
from .seqlock import seqlock

Factory = Callable[..., Program]


@dataclass(frozen=True)
class BenchmarkInfo:
    """One Table 1 row: the paper's reported benchmark characteristics.

    ``measured_depth`` is the empirical bug depth of *our* re-implementation
    (PCTWM's smallest hitting ``d``); it differs from ``paper_depth`` on a
    few benchmarks because this substrate forces atomic updates to observe
    the mo-maximal write, which makes some communications free (see
    DESIGN.md).  ``best_history`` is the history depth the sweep found most
    effective at ``measured_depth``.
    """

    name: str
    factory: Factory
    paper_loc: int
    paper_k: int
    paper_k_com: int
    paper_depth: int
    measured_depth: int = 0
    best_history: int = 1
    #: Benchmarks the paper uses for the Figure 6 inserted-writes sweep.
    in_figure6: bool = False

    def build(self, inserted_writes: int = 0) -> Program:
        return self.factory(inserted_writes=inserted_writes)


BENCHMARKS: Dict[str, BenchmarkInfo] = {
    info.name: info
    for info in (
        BenchmarkInfo("dekker", dekker, 50, 20, 14, 0,
                      measured_depth=0, best_history=1, in_figure6=True),
        BenchmarkInfo("msqueue", msqueue, 232, 49, 31, 0,
                      measured_depth=0, best_history=1),
        BenchmarkInfo("barrier", barrier, 38, 15, 10, 1,
                      measured_depth=1, best_history=1),
        BenchmarkInfo("cldeque", cldeque, 122, 86, 56, 1,
                      measured_depth=1, best_history=1, in_figure6=True),
        BenchmarkInfo("mcslock", mcslock, 75, 26, 16, 1,
                      measured_depth=2, best_history=1),
        BenchmarkInfo("mpmcqueue", mpmcqueue, 108, 19, 17, 2,
                      measured_depth=1, best_history=1, in_figure6=True),
        BenchmarkInfo("linuxrwlocks", linuxrwlocks, 90, 20, 19, 2,
                      measured_depth=1, best_history=1),
        BenchmarkInfo("rwlock", rwlock, 98, 84, 74, 2,
                      measured_depth=3, best_history=1, in_figure6=True),
        BenchmarkInfo("seqlock", seqlock, 50, 20, 18, 3,
                      measured_depth=3, best_history=2),
    )
}

#: Table order used throughout the paper's evaluation section.
BENCHMARK_ORDER = list(BENCHMARKS)
