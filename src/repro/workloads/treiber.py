"""Treiber lock-free stack (extension workload, not in Table 1).

A classic CAS-based stack over a preallocated node pool.  Structure
updates (top pointer, next links) go through CAS; the seeded bug writes
the node *payload* after linking it, with relaxed ordering — a popper can
observe the node through the CAS chain and read the payload from its
stale thread-local view (the same publication-bug family as msqueue, on a
different structure).

``fixed=True`` initializes the payload before the push CAS and makes the
push release / the pop's top-read acquire.

Effective bug depth 0 in this substrate (structural CAS reads are forced
fresh), like msqueue.
"""

from __future__ import annotations

from ..memory.events import ACQ, ACQ_REL, RLX
from ..runtime.errors import require
from ..runtime.program import Program

POISON = -1
NULL = 0


def treiber(pushes_per_thread: int = 2, pushers: int = 2,
            fixed: bool = False) -> Program:
    """Build the Treiber stack benchmark: N pushers, one popper."""
    link_order = ACQ_REL if fixed else RLX
    read_order = ACQ if fixed else RLX
    p = Program("treiber" + ("-fixed" if fixed else ""))
    p.races_are_bugs = False
    pool = 1 + pushers * pushes_per_thread
    value = [p.atomic(f"node{i}_value", POISON) for i in range(pool)]
    nexts = [p.atomic(f"node{i}_next", NULL) for i in range(pool)]
    top = p.atomic("top", NULL)  # node index; 0 = empty

    def push(node, item):
        if fixed:
            yield value[node].store(item, RLX)
        while True:
            _ok, current = yield top.cas(-1, -1, RLX)  # RMW-read of top
            yield nexts[node].store(current, RLX)
            ok, _ = yield top.cas(current, node, link_order)
            if ok:
                if not fixed:
                    # Seeded bug: payload written after publication.
                    yield value[node].store(item, RLX)
                return

    def pusher(nodes, base):
        for j, node in enumerate(nodes):
            yield from push(node, base + j)

    def popper(expect):
        got = []
        attempts = 0
        while len(got) < expect and attempts < 40:
            attempts += 1
            _ok, current = yield top.cas(-1, -1, RLX,
                                         failure_order=read_order)
            if current == NULL:
                continue
            _ok, nxt = yield nexts[current].cas(-2, -2, RLX)
            ok, _ = yield top.cas(current, nxt, RLX)
            if not ok:
                continue
            item = yield value[current].load(RLX)
            require(item != POISON,
                    "treiber: popped an unpublished (poison) payload")
            got.append(item)
        return got

    per = pushes_per_thread
    for i in range(pushers):
        nodes = list(range(1 + i * per, 1 + (i + 1) * per))
        p.add_thread(pusher, nodes, 100 * (i + 1), name=f"pusher{i}")
    p.add_thread(popper, pushers * per, name="popper")
    return p
