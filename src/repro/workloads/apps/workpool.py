"""A dynamic thread-pool work queue (extension application).

Not part of the paper's Table 4 trio — this model exercises the substrate
features the other apps do not: *dynamic thread creation* (the pool spawns
its workers at runtime, as pthread-based pools do) and join-based
shutdown.  The concurrency skeleton is a single-producer multi-consumer
task queue: the main thread publishes task payloads into slots and bumps
an atomic ticket; workers claim tickets and read the payloads.

The seeded bug is the usual publication race: payload cells are plain
memory and the ticket bump is ``relaxed``, so worker payload reads race
with the producer's writes.  ``fixed=True`` releases on the bump and
acquires on the claim.
"""

from __future__ import annotations

from ...memory.events import ACQ, ACQ_REL, RLX
from ...runtime.api import join, spawn
from ...runtime.program import Program

#: Worker claim attempts before giving up on an empty queue.
MAX_CLAIM_TRIES = 40


def workpool(workers: int = 2, tasks: int = 6,
             fixed: bool = False) -> Program:
    """Build the work-pool model.

    ``fixed=True`` publishes the ticket with acq_rel ordering on both
    sides, ordering each payload before its consumption: no race remains.
    """
    bump_order = ACQ_REL if fixed else RLX
    claim_order = ACQ if fixed else RLX
    p = Program("workpool" + ("-fixed" if fixed else ""))
    payload = [p.non_atomic(f"task{i}", 0) for i in range(tasks)]
    published = p.atomic("published", 0)
    claimed = p.atomic("claimed", 0)
    results = p.atomic("results", 0)

    def worker(wid: int):
        done = 0
        for _ in range(MAX_CLAIM_TRIES):
            # RMW-read of the ticket; the *failure* order is the claim's
            # effective order (the CAS never succeeds by construction).
            _ok, avail = yield published.cas(-1, -1, RLX,
                                             failure_order=claim_order)
            mine = yield claimed.fetch_add(0, RLX)  # RMW-read
            if mine >= tasks:
                break  # everything claimed; shut down
            if mine >= avail:
                continue  # queue momentarily empty
            # Claim exactly the observed index: a CAS (not a blind bump)
            # guarantees index < avail, whose payload we saw published.
            ok, _ = yield claimed.cas(mine, mine + 1, RLX)
            if not ok:
                continue  # another worker took it
            index = mine
            value = yield payload[index].load()  # races when relaxed
            value = value if isinstance(value, int) else 0
            yield results.fetch_add(value, RLX)
            done += 1
        return done

    def pool():
        names = []
        for w in range(workers):
            names.append((yield spawn(worker, w, name=f"worker{w}")))
        for i in range(tasks):
            yield payload[i].store(10 + i)
            # The seeded bug: ticket bump without release ordering.
            yield published.fetch_add(1, bump_order)
        completed = 0
        for name in names:
            completed += yield join(name)
        total = yield results.fetch_add(0, RLX)
        return (completed, total)

    p.add_thread(pool)
    return p
