"""Models of the paper's three real-world applications (Table 4).

The paper tests Iris (async logging), Mabain (key-value store) and Silo
(in-memory OCC storage engine) — C/C++ codebases instrumented through
C11Tester.  These models reproduce each application's concurrency skeleton
and its racy access pattern in the DSL so that Table 4's overhead
comparison exercises the same code paths (scheduling, visible-write
computation, PCTWM view maintenance).  See DESIGN.md for the substitution
rationale.
"""

from .iris import iris
from .mabain import mabain
from .silo import silo, silo_operations
from .workpool import workpool

#: The paper's Table 4 trio.
APPLICATIONS = {
    "iris": iris,
    "mabain": mabain,
    "silo": silo,
}

#: Extension apps exercising substrate features beyond the paper's set.
EXTENSION_APPLICATIONS = {
    "workpool": workpool,
}

__all__ = [
    "APPLICATIONS",
    "EXTENSION_APPLICATIONS",
    "iris",
    "mabain",
    "silo",
    "silo_operations",
    "workpool",
]
