"""Model of Mabain, the lightweight key-value store library.

Table 4 measures elapsed testing time on Mabain; both algorithms detect its
data races every run.

The model captures Mabain's memory-mapped design: a fixed bucket array of
key/value cells plus a shared header block.  Writers insert entries under a
simple spin "writer lock" (atomic CAS), but — the seeded race — they update
the header's entry-count and the bucket payload cells with plain non-atomic
accesses, while readers walk buckets without taking the lock (Mabain's
readers are lock-free by design).  Reader/writer accesses to the same cell
therefore race.
"""

from __future__ import annotations

from ...memory.events import RLX
from ...runtime.program import Program


class _Cell:
    """Uniform handle over atomic/non-atomic cells (the fixed variant
    upgrades Mabain's racy plain cells to relaxed atomics)."""

    def __init__(self, program, loc, init, atomic):
        self._handle = (program.atomic(loc, init) if atomic
                        else program.non_atomic(loc, init))
        self._atomic = atomic

    def load(self):
        if self._atomic:
            return self._handle.load(RLX)
        return self._handle.load()

    def store(self, value):
        if self._atomic:
            return self._handle.store(value, RLX)
        return self._handle.store(value)

BUCKETS = 8


def mabain(writers: int = 2, readers: int = 1, inserts: int = 4,
           cores: int = 1, fixed: bool = False) -> Program:
    """Build the Mabain model (``cores`` recorded; see :func:`.iris.iris`).

    ``fixed=True`` applies the real-world remedy: the shared bucket cells
    and header counter become (relaxed) atomics, eliminating the data
    races while keeping the lock-free reader design.
    """
    p = Program(f"mabain(cores={cores})" + ("-fixed" if fixed else ""))
    keys = [_Cell(p, f"key{i}", 0, fixed) for i in range(BUCKETS)]
    values = [_Cell(p, f"value{i}", 0, fixed) for i in range(BUCKETS)]
    count = _Cell(p, "header_count", 0, fixed)
    lock = p.atomic("writer_lock", 0)

    def writer(wid: int):
        inserted = 0
        for n in range(inserts):
            key = (wid * inserts + n) % BUCKETS
            acquired = False
            for _ in range(12):
                ok, _ = yield lock.cas(0, 1, RLX)
                if ok:
                    acquired = True
                    break
            if not acquired:
                continue
            # Non-atomic index update under the writer lock; readers do
            # not take the lock, so these race with lookups.
            yield keys[key].store(key + 1)
            yield values[key].store(100 * wid + n)
            current = yield count.load()
            yield count.store(current + 1)
            inserted += 1
            yield lock.store(0, RLX)  # relaxed unlock (seeded ordering bug)
        return inserted

    def reader(rid: int):
        found = 0
        for n in range(inserts * 2):
            key = (rid + n) % BUCKETS
            k = yield keys[key].load()  # lock-free lookup: races by design
            if k != 0:
                v = yield values[key].load()
                if v is not None:
                    found += 1
        total = yield count.load()
        return (found, total)

    for i in range(writers):
        p.add_thread(writer, i, name=f"writer{i}")
    for i in range(readers):
        p.add_thread(reader, i, name=f"reader{i}")
    return p
