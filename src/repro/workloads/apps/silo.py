"""Model of Silo, the multicore in-memory OCC storage engine.

Table 4 reports testing *throughput* (operations per second) on Silo; both
algorithms detect its data races every run, and the comparison shows
PCTWM's view-maintenance overhead.

The model captures Silo's optimistic concurrency control: worker threads
run read/write transactions against a record array.  Each record has an
atomic TID/version word and a plain (non-atomic) value word — exactly
Silo's layout, where values are read optimistically and validated against
the version afterwards.  The seeded race is the optimistic value read
racing with a concurrent writer's value install (real Silo orders these
with memory fences; the model's relaxed versions omit them).
"""

from __future__ import annotations

from ...memory.events import RLX
from ...runtime.program import Program

RECORDS = 8


class _AtomicAsPlain:
    """Adapter giving an atomic handle the no-argument load/store shape
    of a non-atomic handle (used by the fixed variant)."""

    def __init__(self, handle):
        self._handle = handle

    def load(self):
        return self._handle.load(RLX)

    def store(self, value):
        return self._handle.store(value, RLX)


def silo(workers: int = 3, transactions: int = 5, cores: int = 1,
         fixed: bool = False) -> Program:
    """Build the Silo model (``cores`` recorded; see :func:`.iris.iris`).

    ``fixed=True`` applies the real-world remedy for racy optimistic
    reads: record values become (relaxed) atomics, so the unvalidated
    read phase no longer races with concurrent installs.
    """
    p = Program(f"silo(cores={cores})" + ("-fixed" if fixed else ""))
    versions = [p.atomic(f"tid{i}", 0) for i in range(RECORDS)]
    if fixed:
        atomics = [p.atomic(f"record{i}", 0) for i in range(RECORDS)]
        data = [_AtomicAsPlain(a) for a in atomics]
    else:
        data = [p.non_atomic(f"record{i}", 0) for i in range(RECORDS)]
    epoch = p.atomic("epoch", 0)

    def worker(wid: int):
        committed = 0
        aborted = 0
        for t in range(transactions):
            r1 = (wid + t) % RECORDS
            r2 = (wid + t + 3) % RECORDS
            # -- read phase: optimistic, unvalidated yet ---------------------
            v1_pre = yield versions[r1].load(RLX)
            val1 = yield data[r1].load()  # races with concurrent installs
            v2_pre = yield versions[r2].load(RLX)
            val2 = yield data[r2].load()
            # -- validation phase -------------------------------------------
            v1_post = yield versions[r1].load(RLX)
            v2_post = yield versions[r2].load(RLX)
            if v1_pre != v1_post or v2_pre != v2_post or \
                    v1_pre % 2 == 1 or v2_pre % 2 == 1:
                aborted += 1
                continue
            # -- write phase: lock r1 via odd version, install, unlock ------
            ok, _ = yield versions[r1].cas(v1_pre, v1_pre + 1, RLX)
            if not ok:
                aborted += 1
                continue
            base = val1 if isinstance(val1, int) else 0
            extra = val2 if isinstance(val2, int) else 0
            yield data[r1].store(base + extra + wid + 1)
            yield epoch.fetch_add(1, RLX)
            yield versions[r1].store(v1_pre + 2, RLX)  # relaxed unlock
            committed += 1
        return (committed, aborted)

    for i in range(workers):
        p.add_thread(worker, i, name=f"worker{i}")
    return p


def silo_operations(result_thread_returns: dict) -> int:
    """Count committed transactions across workers (throughput numerator)."""
    total = 0
    for value in result_thread_returns.values():
        if isinstance(value, tuple) and value:
            total += value[0]
    return total
