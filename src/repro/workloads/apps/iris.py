"""Model of Iris, the low-latency asynchronous C++ logging library.

Table 4 of the paper measures testing *performance overhead* on Iris: both
C11Tester and PCTWM detect its data races in every run, and the interesting
output is elapsed time (PCTWM pays for view maintenance).

The model captures Iris's architecture: each producer thread reserves a
ring-buffer slot with an atomic ticket, fills the record's payload cells
(plain, non-atomic memory — as in the real ring), and raises the slot's
ready flag; a background flusher polls the flags and drains completed
records to the "sink".  The seeded data race is the real-world one this
design risks: the ready flags are ``relaxed``, so the flusher's payload
reads are unordered against the producer writes.
"""

from __future__ import annotations

from ...memory.events import ACQ, REL, RLX
from ...runtime.program import Program

RING_SIZE = 16

#: Flusher poll budget per slot before giving up on a straggler.
MAX_POLL = 30


def iris(producers: int = 2, messages: int = 6, cores: int = 1,
         fixed: bool = False) -> Program:
    """Build the Iris model.

    ``cores`` mirrors the paper's single/multiple-core configurations; like
    C11Tester, this runtime executes one thread at a time, so the value is
    recorded in the program name but does not change scheduling (the paper
    makes the same observation about its own Table 4 numbers).

    ``fixed=True`` raises each slot's ready flag with release and polls it
    with acquire, ordering the payload handoff: no data race remains.
    """
    publish_order = REL if fixed else RLX
    poll_order = ACQ if fixed else RLX
    p = Program(f"iris(cores={cores})" + ("-fixed" if fixed else ""))
    slots = [p.non_atomic(f"slot{i}", 0) for i in range(RING_SIZE)]
    lengths = [p.non_atomic(f"len{i}", 0) for i in range(RING_SIZE)]
    ready = [p.atomic(f"ready{i}", 0) for i in range(RING_SIZE)]
    reserve = p.atomic("reserve", 0)
    flushed = p.atomic("flushed", 0)

    def producer(base: int):
        for m in range(messages):
            idx = yield reserve.fetch_add(1, RLX)
            slot = idx % RING_SIZE
            # Non-atomic payload writes: race with the flusher when the
            # ready-flag handoff below is relaxed.
            yield slots[slot].store(base + m)
            yield lengths[slot].store(1 + (m % 3))
            yield ready[slot].store(1, publish_order)

    def flusher(expected: int):
        drained = 0
        flushed_bytes = 0
        while drained < expected:
            slot = drained % RING_SIZE
            for _ in range(MAX_POLL):
                flag = yield ready[slot].load(poll_order)
                if flag == 1:
                    break
            else:
                break  # straggling producer; stop draining
            payload = yield slots[slot].load()
            length = yield lengths[slot].load()
            flushed_bytes += length if isinstance(length, int) else 0
            del payload
            drained += 1
            yield flushed.store(drained, RLX)
        return (drained, flushed_bytes)

    for i in range(producers):
        p.add_thread(producer, 1000 * (i + 1), name=f"producer{i}")
    p.add_thread(flusher, producers * messages, name="flusher")
    return p
