"""Linux-style reader-writer spinlock with a seeded unlock-order bug.

Paper Table 1: LOC 90, k ≈ 20, k_com ≈ 19, bug depth d = 2.

The lock word counts readers; a writer parks a large negative bias.  Lock
transitions are RMWs (they observe the real lock state), but the writer
publishes its four payload words, its generation stamp, and the unlock all
with ``relaxed`` stores (the seeded bug — unlock must release, Linux uses
``smp_store_release``).

A reader that read-locks after the writer can therefore observe the
generation stamp (one communication relation) while its *entire* payload
view is still the initial state — the lock's atomic-update contract is
broken.  The multi-word payload is what separates the algorithms: once a
PCTWM execution communicates the stamp, all four payload loads read the
stale thread-local view together, whereas a uniform-rf tester must sample
the stale value independently for every word.
"""

from __future__ import annotations

from ..memory.events import ACQ, REL, RLX
from ..runtime.errors import require
from ..runtime.program import Program

#: Writer bias parked in the lock word.
WRITER = -1000

#: Lock retry bound (RMWs observe real state, so retries are few).
MAX_TRIES = 4

#: Stamp poll bound; below the executor's default spin threshold (8).
MAX_POLL = 6

#: Payload written by the writer, indexed by field.
PAYLOAD = (11, 22, 33, 44)


def linuxrwlocks(inserted_writes: int = 0, readers: int = 2,
                 fixed: bool = False) -> Program:
    """Build the linuxrwlocks benchmark: one writer, N readers.

    ``fixed=True`` publishes the generation stamp with release and polls
    it with acquire (Linux's ``smp_store_release``/``smp_load_acquire``),
    so the payload is always fresh under the read lock (soundness check).
    """
    stamp_order = REL if fixed else RLX
    poll_order = ACQ if fixed else RLX
    p = Program("linuxrwlocks" + ("-fixed" if fixed else ""))
    p.races_are_bugs = False
    lock = p.atomic("lock", 0)
    fields = [p.atomic(f"field{i}", 0) for i in range(len(PAYLOAD))]
    gen = p.atomic("gen", 0)

    def writer():
        for _ in range(MAX_TRIES):
            ok, _ = yield lock.cas(0, WRITER, RLX)
            if ok:
                break
        else:
            return None  # could not lock: inconclusive
        for field, value in zip(fields, PAYLOAD):
            yield field.store(value, RLX)
        for _ in range(inserted_writes):
            yield fields[0].store(PAYLOAD[0], RLX)  # benign (Fig. 6)
        yield gen.store(1, stamp_order)   # relaxed = seeded bug
        yield lock.store(0, RLX)  # seeded: unlock without release
        return 1

    def reader(idx: int):
        for _ in range(MAX_TRIES):
            ok, state = yield lock.cas(0, 1, RLX)
            if ok:
                break
            if state > 0:
                ok2, _ = yield lock.cas(state, state + 1, RLX)
                if ok2:
                    break
        else:
            return None  # never acquired the read lock
        g = 0
        for _ in range(MAX_POLL):
            g = yield gen.load(poll_order)  # the sink window
            if g == 1:
                break
        observed = []
        if g == 1:
            for field in fields:
                observed.append((yield field.load(RLX)))
            require(any(v != 0 for v in observed),
                    "linuxrwlocks: generation visible but the whole "
                    "payload is stale under the read lock")
        yield lock.fetch_sub(1, RLX)
        return (g, observed)

    p.add_thread(writer)
    for i in range(readers):
        p.add_thread(reader, i, name=f"reader{i}")
    return p
