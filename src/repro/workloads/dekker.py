"""Dekker's mutual-exclusion algorithm with a seeded weak-memory bug.

Paper Table 1: LOC 50, k ≈ 20, k_com ≈ 14, bug depth d = 0.

The intent flags and turn variable use ``relaxed`` accesses instead of the
``seq_cst`` Dekker requires (the seeded bug).  Under weak memory each
thread can read the other's flag from its thread-local view — still 0 —
and enter the critical section without a single communication relation,
so the bug has depth 0: PCTWM's ``d = 0`` execution hits it
deterministically.

The observable failure is the lost update on the counter the critical
section protects: both threads read the same counter value and write the
same increment.  (With correct seq_cst flags, a late entrant synchronizes
through the SC accesses and always sees the earlier increment.)
"""

from __future__ import annotations

from ..memory.events import RLX, SC
from ..runtime.errors import require
from ..runtime.program import Program


def dekker(inserted_writes: int = 0, rounds: int = 1,
           fixed: bool = False) -> Program:
    """Build the dekker benchmark.

    ``inserted_writes`` adds benign duplicate relaxed stores to the flag
    locations (the Figure 6 transformation): they do not change program
    behaviour or bug depth, but they dilute uniform reads-from sampling.

    ``fixed=True`` builds the *correct* algorithm — flag and turn accesses
    become seq_cst, as Dekker requires — whose lost-update assertion must
    never fire under any scheduler (soundness check).
    """
    order = SC if fixed else RLX
    p = Program("dekker" + ("-fixed" if fixed else ""))
    p.races_are_bugs = False
    flag0 = p.atomic("flag0", 0)
    flag1 = p.atomic("flag1", 0)
    turn = p.atomic("turn", 0)
    counter = p.atomic("counter", 0)

    def body(my_flag, other_flag, my_id):
        written = []
        for _ in range(rounds):
            yield my_flag.store(1, order)
            for _ in range(inserted_writes):
                yield my_flag.store(1, order)  # benign duplicate (Fig. 6)
            other = yield other_flag.load(order)
            if other == 1:
                # Contention path: defer by turn, then retry once.
                t = yield turn.load(order)
                if t != my_id:
                    yield my_flag.store(0, order)
                    yield my_flag.store(1, order)
                other = yield other_flag.load(order)
                if other == 1:
                    continue
            # Critical section: plain read-increment-write, protected
            # (only) by the mutual exclusion the flags should provide.
            value = yield counter.load(RLX)
            yield counter.store(value + 1, RLX)
            written.append(value + 1)
            # Leave.
            yield turn.store(1 - my_id, order)
            yield my_flag.store(0, order)
        return written

    p.add_thread(body, flag0, flag1, 0, name="t0")
    p.add_thread(body, flag1, flag0, 1, name="t1")

    def check(results):
        mine, theirs = results["t0"], results["t1"]
        collisions = set(mine) & set(theirs)
        require(not collisions,
                f"dekker: lost update — both critical sections wrote "
                f"{sorted(collisions)}")

    p.add_final_check(check)
    return p
