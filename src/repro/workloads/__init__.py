"""The paper's benchmarks: nine data structures plus three applications.

Each data-structure benchmark mirrors a row of Table 1 — same structure,
same *kind* of seeded weak-memory bug at (approximately) the same depth.
The ``apps`` subpackage models the three real-world applications of
Table 4 (Iris, Mabain, Silo).
"""

from .barrier import barrier
from .cldeque import cldeque
from .dekker import dekker
from .linuxrwlocks import linuxrwlocks
from .mcslock import mcslock
from .mpmcqueue import mpmcqueue
from .msqueue import msqueue
from .registry import (
    BENCHMARKS,
    BENCHMARK_ORDER,
    BenchmarkInfo,
    ProgramSpec,
    resolve_program_factory,
)
from .rwlock import rwlock
from .seqlock import seqlock
from .spsc import spsc
from .treiber import treiber

__all__ = [
    "BENCHMARKS",
    "BENCHMARK_ORDER",
    "BenchmarkInfo",
    "ProgramSpec",
    "resolve_program_factory",
    "barrier",
    "cldeque",
    "dekker",
    "linuxrwlocks",
    "mcslock",
    "mpmcqueue",
    "msqueue",
    "rwlock",
    "seqlock",
    "spsc",
    "treiber",
]
