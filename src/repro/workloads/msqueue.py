"""Michael-Scott queue with a seeded publication-order bug.

Paper Table 1: LOC 232, k ≈ 49, k_com ≈ 31, bug depth d = 0.

A linked queue over a preallocated node pool.  All structural pointer
updates (tail advance, next linking, head advance) go through CAS/RMW, as
in the original algorithm.  The seeded bug moves the *value* store after
the node is published (linked into the queue) and leaves it ``relaxed``:
a dequeuer that traverses to the node through RMWs can read the value cell
from its stale thread-local view and observe the pool's poison value.

The bug has depth 0: structural RMWs always observe the mo-maximal state
(atomicity), so a d = 0 PCTWM execution still dequeues real nodes, but the
relaxed value load reads the thread-local view — poison — on every run.
"""

from __future__ import annotations

from ..memory.events import ACQ, ACQ_REL, RLX
from ..runtime.errors import require
from ..runtime.program import Program

#: Value marking a node whose payload write has not reached the reader.
POISON = -1

#: Null "pointer" for next fields.
NULL = 0


def msqueue(inserted_writes: int = 0, items_per_producer: int = 2,
            fixed: bool = False) -> Program:
    """Build the msqueue benchmark with two producers and one consumer.

    ``fixed=True`` builds the correct queue: the payload is written
    *before* the node is linked, the linking CAS releases, and the
    consumer's pointer loads acquire — the poison assertion can then
    never fire (soundness check).
    """
    link_order = ACQ_REL if fixed else RLX
    read_fail_order = ACQ if fixed else RLX
    p = Program("msqueue" + ("-fixed" if fixed else ""))
    p.races_are_bugs = False
    pool_size = 1 + 2 * items_per_producer  # dummy node + payload nodes
    value = [p.atomic(f"node{i}_value", POISON) for i in range(pool_size)]
    nexts = [p.atomic(f"node{i}_next", NULL) for i in range(pool_size)]
    head = p.atomic("head", 0)   # node indices; node 0 is the dummy
    tail = p.atomic("tail", 0)

    def enqueue(node_idx, item):
        """One enqueue; returns when the node is linked and tail advanced."""
        yield nexts[node_idx].store(NULL, RLX)
        if fixed:
            # Correct order: initialize the payload before publication.
            yield value[node_idx].store(item, RLX)
            for _ in range(inserted_writes):
                yield value[node_idx].store(item, RLX)
        while True:
            _ok, t = yield tail.cas(-1, -1, RLX)  # RMW-read of tail
            ok, observed_next = yield nexts[t].cas(NULL, node_idx,
                                                   link_order)
            if ok:
                if not fixed:
                    # Node is published... but the value is written only
                    # now (the seeded bug: payload after publication).
                    yield value[node_idx].store(item, RLX)
                    for _ in range(inserted_writes):
                        yield value[node_idx].store(item, RLX)  # (Fig. 6)
                yield tail.cas(t, node_idx, RLX)
                return
            # Help advance the lagging tail, as in the original algorithm.
            yield tail.cas(t, observed_next, RLX)

    def producer(node_indices, base):
        for j, idx in enumerate(node_indices):
            yield from enqueue(idx, base + j)

    def consumer(expect: int):
        got = []
        attempts = 0
        while len(got) < expect and attempts < 40:
            attempts += 1
            _, h = yield head.cas(-1, -1, RLX)  # RMW-read of head
            _, t = yield tail.cas(-1, -1, RLX)
            _, nxt = yield nexts[h].cas(-1, -1, RLX,
                                        failure_order=read_fail_order)
            if nxt == NULL:
                continue  # queue empty (or tail lagging)
            if h == t:
                yield tail.cas(t, nxt, RLX)  # help
                continue
            ok, _ = yield head.cas(h, nxt, RLX)
            if not ok:
                continue
            item = yield value[nxt].load(RLX)
            require(item != POISON,
                    "msqueue: dequeued an unpublished (poison) value")
            got.append(item)
        return got

    half = items_per_producer
    p.add_thread(producer, list(range(1, 1 + half)), 100, name="producer0")
    p.add_thread(producer, list(range(1 + half, 1 + 2 * half)), 200,
                 name="producer1")
    p.add_thread(consumer, 2 * half, name="consumer")
    return p
