"""Lamport single-producer single-consumer ring buffer (extension).

The textbook SPSC queue: the producer owns ``tail``, the consumer owns
``head``, and correctness rests entirely on the release/acquire pairing of
the index publications — there is no CAS anywhere, which makes this the
cleanest showcase of pure load/store weak-memory bugs in the suite (no
forced-fresh RMW reads at all).

The seeded bug relaxes the index publications: the consumer can observe
an advanced ``tail`` without the slot payload (depth 1), and the producer
can observe an advanced ``head`` and overwrite a slot the consumer has
not finished reading.  ``fixed=True`` restores release/acquire and the
assertion can never fire.
"""

from __future__ import annotations

from ..memory.events import ACQ, REL, RLX
from ..runtime.errors import require
from ..runtime.program import Program

POISON = -1

#: Poll bound; below the executor's default spin threshold (8).
MAX_POLL = 6


def spsc(capacity: int = 4, items: int = 3, fixed: bool = False) -> Program:
    """Build the SPSC ring benchmark."""
    if capacity < 2 or items < 1:
        raise ValueError("need capacity >= 2 and items >= 1")
    publish = REL if fixed else RLX
    observe = ACQ if fixed else RLX
    p = Program("spsc" + ("-fixed" if fixed else ""))
    p.races_are_bugs = False
    slots = [p.atomic(f"slot{i}", POISON) for i in range(capacity)]
    head = p.atomic("head", 0)
    tail = p.atomic("tail", 0)

    def producer():
        produced = 0
        local_tail = 0
        for n in range(items):
            # Wait for space: head must be within capacity-1 of tail.
            for _ in range(MAX_POLL):
                h = yield head.load(observe)
                if local_tail - h < capacity - 1:
                    break
            else:
                return produced  # consumer stalled; give up
            yield slots[local_tail % capacity].store(100 + n, RLX)
            local_tail += 1
            yield tail.store(local_tail, publish)  # seeded when relaxed
            produced += 1
        return produced

    def consumer():
        got = []
        local_head = 0
        for _n in range(items):
            for _ in range(MAX_POLL):
                t = yield tail.load(observe)  # the communication sink
                if t > local_head:
                    break
            else:
                return got  # producer stalled; give up
            value = yield slots[local_head % capacity].load(RLX)
            require(value != POISON,
                    "spsc: consumed a slot before its payload arrived")
            got.append(value)
            local_head += 1
            yield head.store(local_head, publish)
        return got

    p.add_thread(producer)
    p.add_thread(consumer)
    return p
