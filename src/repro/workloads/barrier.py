"""Two-thread barrier with a seeded release-order bug.

Paper Table 1: LOC 38, k ≈ 15, k_com ≈ 10, bug depth d = 1.

Each thread writes its data and raises an arrival flag; the barrier opens
when both arrivals are visible, after which each thread reads its partner's
data.  Every barrier access is ``relaxed`` (the seeded bug — a correct
barrier releases on arrival and acquires on the wait), so passing the
barrier requires one communication relation (observing the partner's
arrival flag) but does *not* propagate the partner's data write: the
post-barrier read can still see the stale initial value.

Bug depth 1: a single communication relation — the wait loop's flag read —
suffices; the data read then misses from the thread-local view.  The wait
loops are bounded below the executor's spin threshold so that a ``d = 0``
run gives up (inconclusive) rather than being rescued by the livelock
heuristic.
"""

from __future__ import annotations

from ..memory.events import ACQ, REL, RLX
from ..runtime.errors import require
from ..runtime.program import Program

#: Kept below the executor's default spin threshold (8): a d = 0 run must
#: starve and give up, not get promoted to global reads by the heuristic.
MAX_WAIT = 6


def barrier(inserted_writes: int = 0, fixed: bool = False) -> Program:
    """Build the barrier benchmark.

    ``fixed=True`` releases on arrival and acquires on the wait, so a
    thread that passes the barrier always sees its partner's data
    (soundness check).
    """
    arrive_order = REL if fixed else RLX
    wait_order = ACQ if fixed else RLX
    p = Program("barrier" + ("-fixed" if fixed else ""))
    p.races_are_bugs = False
    data0 = p.atomic("data0", 0)
    data1 = p.atomic("data1", 0)
    arrived0 = p.atomic("arrived0", 0)
    arrived1 = p.atomic("arrived1", 0)

    def body(my_data, my_flag, other_flag, other_data, my_value):
        yield my_data.store(my_value, RLX)
        for _ in range(inserted_writes):
            yield my_data.store(my_value, RLX)  # benign duplicate (Fig. 6)
        yield my_flag.store(1, arrive_order)  # relaxed = the seeded bug
        for _ in range(MAX_WAIT):
            seen = yield other_flag.load(wait_order)
            if seen == 1:
                break
        else:
            return None  # starved at the barrier: inconclusive, not a bug
        observed = yield other_data.load(RLX)
        require(observed != 0,
                "barrier: passed the barrier but partner data is stale")
        return observed

    p.add_thread(body, data0, arrived0, arrived1, data1, 10, name="t0")
    p.add_thread(body, data1, arrived1, arrived0, data0, 20, name="t1")
    return p
