"""Multi-round reader-writer lock benchmark with seeded relaxed publication.

Paper Table 1: LOC 98, k ≈ 84, k_com ≈ 74, bug depth d = 2.

A heavier rwlock workload than :mod:`repro.workloads.linuxrwlocks`: the
writer performs two update rounds under the write lock, raising a per-round
ready flag after each.  Readers enter the read lock, poll *both* round
flags (two plain-load gate windows — the two required communication
relations), and then check the six-word payload.  All publication is
``relaxed`` (the seeded bug), so a reader can observe both round flags
while its entire payload view is still initial — breaking the lock's
atomic-update contract.

Depth 2: one communication per round flag.  The wide six-word payload makes
the staleness free for PCTWM's local views but expensive for uniform-rf
testers (each word must independently sample the stale value).
"""

from __future__ import annotations

from ..memory.events import ACQ, REL, RLX
from ..runtime.errors import require
from ..runtime.program import Program

WRITER = -1000

#: Lock retry bound.
MAX_TRIES = 4

#: Per-flag poll bound; below the executor's default spin threshold (8).
MAX_POLL = 5

FIELD_COUNT = 6


def rwlock(inserted_writes: int = 0, readers: int = 2,
           fixed: bool = False) -> Program:
    """Build the rwlock benchmark: one two-round writer, N readers.

    ``fixed=True`` raises the round flags with release and polls them
    with acquire, so the payload is always fresh under the read lock
    (soundness check).
    """
    flag_order = REL if fixed else RLX
    poll_order = ACQ if fixed else RLX
    p = Program("rwlock" + ("-fixed" if fixed else ""))
    p.races_are_bugs = False
    lock = p.atomic("lock", 0)
    fields = [p.atomic(f"field{i}", 0) for i in range(FIELD_COUNT)]
    round1_done = p.atomic("round1_done", 0)
    round2_done = p.atomic("round2_done", 0)

    def writer():
        done = 0
        for r, flag in ((1, round1_done), (2, round2_done)):
            for _ in range(MAX_TRIES):
                ok, _ = yield lock.cas(0, WRITER, RLX)
                if ok:
                    break
            else:
                return done
            for i, field in enumerate(fields):
                yield field.store(r * 100 + i, RLX)
            for _ in range(inserted_writes):
                yield fields[0].store(r * 100, RLX)  # benign (Fig. 6)
            yield flag.store(1, flag_order)   # relaxed = seeded bug
            yield lock.store(0, RLX)   # seeded: unlock without release
            done = r
        return done

    def reader(idx: int):
        for _ in range(MAX_TRIES):
            ok, state = yield lock.cas(0, 1, RLX)
            if ok:
                break
            if state > 0:
                ok2, _ = yield lock.cas(state, state + 1, RLX)
                if ok2:
                    break
        else:
            return None  # never acquired the read lock
        flags = []
        for flag in (round1_done, round2_done):
            seen = 0
            for _ in range(MAX_POLL):
                seen = yield flag.load(poll_order)  # gate window
                if seen == 1:
                    break
            flags.append(seen)
        observed = []
        if flags == [1, 1]:
            for field in fields:
                observed.append((yield field.load(RLX)))
            require(any(v != 0 for v in observed),
                    "rwlock: both round flags visible but the whole "
                    "payload is stale under the read lock")
        yield lock.fetch_sub(1, RLX)
        return (flags, observed)

    p.add_thread(writer)
    for i in range(readers):
        p.add_thread(reader, i, name=f"reader{i}")
    return p
