"""Bounded MPMC queue with a seeded two-step publication bug.

Paper Table 1: LOC 108, k ≈ 19, k_com ≈ 17, bug depth d = 2.

Producers claim a slot with an atomic ticket, write the payload, then raise
the slot's ``published`` flag; consumers poll the tail ticket and the flag
with plain relaxed loads before claiming the slot.  Both the tail poll and
the flag poll are ``relaxed`` (the seeded bug — the flag should be a
release/acquire pair), so exposing the bug needs *two* communication
relations: (1) the consumer observes the advanced tail, (2) it observes the
published flag — and the payload load can still read the stale local view.

Depth 2 because with fewer communications the consumer either believes the
queue is empty or never sees the flag, giving up without asserting.
"""

from __future__ import annotations

from ..memory.events import ACQ, REL, RLX
from ..runtime.errors import require
from ..runtime.program import Program

POISON = -1

#: Poll bound per gate; below the executor's default spin threshold (8).
MAX_POLL = 6


def mpmcqueue(inserted_writes: int = 0, producers: int = 2,
              fixed: bool = False) -> Program:
    """Build the mpmcqueue benchmark: N producers, one polling consumer.

    ``fixed=True`` raises the publication flag with release and polls it
    with acquire, so a claimed slot always carries its payload and
    checksum (soundness check).
    """
    publish_order = REL if fixed else RLX
    poll_order = ACQ if fixed else RLX
    p = Program("mpmcqueue" + ("-fixed" if fixed else ""))
    p.races_are_bugs = False
    capacity = producers
    data = [p.atomic(f"data{i}", POISON) for i in range(capacity)]
    check = [p.atomic(f"check{i}", POISON) for i in range(capacity)]
    published = [p.atomic(f"pub{i}", 0) for i in range(capacity)]
    tail = p.atomic("tail", 0)
    head = p.atomic("head", 0)

    def producer(item: int):
        slot = yield tail.fetch_add(1, RLX)
        yield data[slot].store(item, RLX)
        yield check[slot].store(item + 1, RLX)  # payload checksum word
        for _ in range(inserted_writes):
            yield data[slot].store(item, RLX)  # benign duplicate (Fig. 6)
        # Relaxed publication is the seeded bug (correct: release).
        yield published[slot].store(1, publish_order)

    def consumer():
        got = []
        for _ in range(MAX_POLL):
            t = yield tail.load(RLX)  # communication sink #1
            claimed = yield head.fetch_add(0, RLX)  # RMW-read of head
            if claimed >= t:
                continue  # queue looks empty from here
            flag = 0
            for _ in range(MAX_POLL):
                flag = yield published[claimed].load(poll_order)  # sink 2
                if flag == 1:
                    break
            if flag != 1:
                continue  # never saw the publication
            slot = yield head.fetch_add(1, RLX)
            if slot >= t:
                continue  # raced with another consumer
            item = yield data[slot].load(RLX)
            checksum = yield check[slot].load(RLX)
            require(not (item == POISON and checksum == POISON),
                    "mpmcqueue: consumed a slot whose payload and checksum "
                    "are both unpublished (poison)")
            got.append(item)
        return got

    for i in range(producers):
        p.add_thread(producer, 500 + i, name=f"producer{i}")
    p.add_thread(consumer)
    return p
