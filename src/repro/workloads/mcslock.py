"""MCS queue lock with a seeded handoff-order bug.

Paper Table 1: LOC 75, k ≈ 26, k_com ≈ 16, bug depth d = 1.

Each contender enqueues itself with an atomic exchange on ``tail`` and —
when there is a predecessor — spins on its own ``locked`` flag, which the
predecessor clears on release.  The tail exchange/CAS pair is
acquire/release (correct), so the *uncontended* path synchronizes; the
seeded bug is the contended handoff: the predecessor clears the successor's
flag with a ``relaxed`` store instead of a release.

The critical section updates a two-word account (balance and audit log);
with the broken handoff the successor enters the critical section with a
stale view of *both* words, producing a simultaneous lost update — both
threads compute the same new balance and the same audit entry.

Effective bug depth in this substrate is 2, one more than the paper's 1:
our atomic updates always observe the real lock state (atomicity forces
RMWs to read the mo-maximal write), so producing lock contention costs one
extra communication — the predecessor must be delayed inside its critical
section (sink 1) so the successor queues behind it, and the successor's
handoff spin read is sink 2.  DESIGN.md documents this substitution.
"""

from __future__ import annotations

from ..memory.events import ACQ, ACQ_REL, REL, RLX
from ..runtime.errors import require
from ..runtime.program import Program

#: Handoff wait bound; below the executor's default spin threshold (8).
MAX_WAIT = 6

#: Null "pointer" for the tail / next fields (thread ids are offset by 1).
NONE = 0


def mcslock(inserted_writes: int = 0, fixed: bool = False) -> Program:
    """Build the mcslock benchmark: two contenders, one lock acquisition each.

    ``fixed=True`` releases on the handoff store and acquires on the
    handoff spin, making the lost update impossible (soundness check).
    """
    handoff_store = REL if fixed else RLX
    handoff_load = ACQ if fixed else RLX
    p = Program("mcslock" + ("-fixed" if fixed else ""))
    p.races_are_bugs = False
    tail = p.atomic("tail", NONE)
    locked = [p.atomic(f"locked{i}", 0) for i in range(2)]
    nexts = [p.atomic(f"next{i}", NONE) for i in range(2)]
    balance = p.atomic("balance", 0)
    audit = p.atomic("audit", 0)

    def contender(me: int):
        node = me + 1
        # -- acquire -------------------------------------------------------
        yield locked[me].store(1, RLX)
        yield nexts[me].store(NONE, RLX)
        pred = yield tail.exchange(node, ACQ_REL)
        if pred != NONE:
            yield nexts[pred - 1].store(node, RLX)
            for _ in range(MAX_WAIT):
                flag = yield locked[me].load(handoff_load)  # handoff sink
                if flag == 0:
                    break
            else:
                return None  # starved waiting for the handoff
        # -- critical section: two-word unprotected account update ----------
        bal = yield balance.load(RLX)
        log = yield audit.load(RLX)
        new_bal = bal + 10
        new_log = log + 1
        yield balance.store(new_bal, RLX)
        yield audit.store(new_log, RLX)
        for _ in range(inserted_writes):
            yield balance.store(new_bal, RLX)  # benign duplicate (Fig. 6)
        # -- release ----------------------------------------------------------
        ok, _ = yield tail.cas(node, NONE, ACQ_REL)
        if not ok:
            # A successor enqueued; wait for its next-pointer to appear.
            # The re-check is an RMW-read (as in implementations that spin
            # with an atomic exchange), so it observes the real pointer.
            succ = NONE
            for _ in range(MAX_WAIT):
                _ok, succ = yield nexts[me].cas(-2, -2, RLX)
                if succ != NONE:
                    break
            if succ != NONE:
                # Relaxed handoff is the seeded bug (correct: release).
                yield locked[succ - 1].store(0, handoff_store)
        return (new_bal, new_log)

    p.add_thread(contender, 0, name="c0")
    p.add_thread(contender, 1, name="c1")

    def check(results):
        completed = [v for v in results.values() if v is not None]
        if len(completed) < 2:
            return  # a starved contender is inconclusive, not a bug
        balances = [bal for bal, _log in completed]
        logs = [log for _bal, log in completed]
        require(
            not (len(set(balances)) == 1 and len(set(logs)) == 1),
            "mcslock: lost update — both critical sections produced the "
            f"same balance {balances[0]} and audit entry {logs[0]}",
        )

    p.add_final_check(check)
    return p
