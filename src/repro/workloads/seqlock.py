"""Seqlock with all-relaxed accesses (the paper's hardest benchmark).

Paper Table 1: LOC 50, k ≈ 20, k_com ≈ 18, bug depth d = 3.

The writer runs two rounds: bump the sequence to odd, write both data
words, bump to even.  The reader retries until it sees an even non-zero
sequence, reads the pair, and re-checks the sequence.  Everything is
``relaxed`` (the seeded bug — a correct seqlock uses acquire loads of the
sequence and release stores), so a reader can satisfy the sequence check
while assembling a *torn* pair across rounds.

Exposing the torn pair needs three communications: observe an even
sequence, observe one data word from a newer round, and observe the other
data word from an older round (reading both words from the same stale
local view yields the consistent initial pair, which the seeded assertion
does not flag).  Section 6.2 of the paper singles this benchmark out: its
wait loop makes bounded algorithms rely on the livelock heuristic, so PCT
and PCTWM trail plain random testing here — the loop bound is deliberately
*above* the executor's spin threshold to reproduce that effect.
"""

from __future__ import annotations

from ..memory.events import ACQ, REL, RLX
from ..runtime.api import fence
from ..runtime.errors import require
from ..runtime.program import Program

#: Above the default spin threshold (8): the livelock heuristic engages.
MAX_ATTEMPTS = 20


def seqlock(inserted_writes: int = 0, rounds: int = 2,
            fixed: bool = False) -> Program:
    """Build the seqlock benchmark: one two-round writer, one reader.

    ``fixed=True`` builds the correct C11 seqlock (Boehm's construction):
    the writer separates the odd bump from the data writes with a release
    fence and publishes the even bump with release; the reader loads the
    first sequence with acquire and re-checks it after an acquire fence.
    If a data read then observes a later round, the fence forces the
    second sequence read to observe that round's odd bump, failing the
    ``s1 == s2`` check and retrying — torn reads are impossible.
    """
    p = Program("seqlock" + ("-fixed" if fixed else ""))
    p.races_are_bugs = False
    seq = p.atomic("seq", 0)
    data1 = p.atomic("data1", 0)
    data2 = p.atomic("data2", 0)

    def writer():
        s = 0
        for r in range(1, rounds + 1):
            s += 1
            yield seq.store(s, RLX)     # odd: write in progress
            if fixed:
                yield fence(REL)        # order the bump before the data
            yield data1.store(r, RLX)
            for _ in range(inserted_writes):
                yield data1.store(r, RLX)  # benign duplicate (Fig. 6)
            yield data2.store(r, RLX)
            s += 1
            # Relaxed final bump is the seeded bug (correct: release).
            yield seq.store(s, REL if fixed else RLX)
        return s

    def reader():
        for _ in range(MAX_ATTEMPTS):
            s1 = yield seq.load(ACQ if fixed else RLX)
            if s1 == 0 or s1 % 2 == 1:
                continue  # nothing written yet, or writer mid-round
            d1 = yield data1.load(RLX)
            d2 = yield data2.load(RLX)
            if fixed:
                yield fence(ACQ)        # order the data before the re-check
            s2 = yield seq.load(RLX)
            if s1 != s2:
                continue  # writer interfered; retry
            require(not (d1 != d2 and d1 > 0 and d2 > 0),
                    f"seqlock: torn read across rounds "
                    f"(seq={s1}, data1={d1}, data2={d2})")
            return (s1, d1, d2)
        return None

    p.add_thread(writer)
    p.add_thread(reader)
    return p
