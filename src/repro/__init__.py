"""PCTWM: Probabilistic Concurrency Testing for Weak Memory Programs.

Reproduction of Gao, Chakraborty & Kulahcioglu Ozkan (ASPLOS 2023).

Quickstart::

    from repro import PCTWMScheduler, run_once
    from repro.litmus import store_buffering

    result = run_once(store_buffering(), PCTWMScheduler(depth=0, k_com=4))
    assert result.bug_found   # the non-SC outcome a = b = 0

Public surface:

* :mod:`repro.memory` — the C11 axiomatic model substrate
* :mod:`repro.runtime` — the program DSL and controlled executor
* :mod:`repro.core` — PCTWM, PCT, C11Tester, naive schedulers and bounds
* :mod:`repro.litmus` — litmus programs
* :mod:`repro.workloads` — the paper's nine benchmarks and three apps
* :mod:`repro.harness` — test campaigns and table/figure rendering
"""

from .core import (
    C11TesterScheduler,
    NaiveRandomScheduler,
    PCTScheduler,
    PCTWMScheduler,
    empirical_bug_depth,
    estimate_parameters,
    pct_lower_bound,
    pctwm_lower_bound,
)
from .memory.events import ACQ, ACQ_REL, MemoryOrder, NA, REL, RLX, SC
from .runtime import (
    AssertionViolation,
    Executor,
    Program,
    RunResult,
    Scheduler,
    fence,
    join,
    require,
    run_once,
)

__version__ = "1.0.0"

__all__ = [
    "ACQ",
    "ACQ_REL",
    "AssertionViolation",
    "C11TesterScheduler",
    "Executor",
    "MemoryOrder",
    "NA",
    "NaiveRandomScheduler",
    "PCTScheduler",
    "PCTWMScheduler",
    "Program",
    "REL",
    "RLX",
    "RunResult",
    "SC",
    "Scheduler",
    "__version__",
    "empirical_bug_depth",
    "estimate_parameters",
    "fence",
    "join",
    "pct_lower_bound",
    "pctwm_lower_bound",
    "require",
    "run_once",
]
