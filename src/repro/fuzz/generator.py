"""Deterministic, seed-keyed program generator over the operation DSL.

A generated program is first materialized as a *plan*: a nested structure
of JSON-safe lists and scalars describing locations and per-thread
instruction sequences.  Plans are the unit of everything downstream —
they pickle, they JSON round-trip, they shrink by instruction deletion,
and they rebuild into :class:`~repro.runtime.program.Program` instances
via :func:`build_plan_program`.  The ``"fuzz"`` registry kind
(:func:`fuzz_program`) accepts either a generation seed (plus config
knobs) or an explicit plan, so campaign artifacts and corpus entries
replay through the same :class:`~repro.workloads.registry.ProgramSpec`
machinery as every hand-written workload.

Tractability follows *Variable and Thread Bounding for Systematic
Testing*: thread/op/location counts are hard-capped by config knobs, and
accesses are biased toward a small "hot" subset of locations so the
conflicting-access pairs that drive weak behaviours concentrate on a few
variables instead of diffusing across the whole footprint.

Two profiles:

``mixed``
    Anything goes — mixed memory orders, RMW/CAS loops, fences, bounded
    spin loops, an optional embedded message-passing assertion oracle
    (sound: it can only fire when a genuinely weak behaviour was
    observed), and optionally non-atomic (racy) accesses.

``determinate``
    Race-free programs whose *final memory state* is the same under
    every interleaving and every memory model: each location is either
    store-owned by exactly one thread or a pure fetch-add counter.
    :func:`expected_final_memory` computes the unique final state, which
    powers the TSO-vs-C11 differential mode.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..memory.events import MemoryOrder
from ..runtime.api import fence, spin_until
from ..runtime.errors import ProgramDefinitionError, require
from ..runtime.program import Program
from ..workloads.registry import ProgramSpec

#: Current plan schema version; bump on incompatible instruction changes.
PLAN_VERSION = 1

#: Canonical order names used inside plans (JSON-safe strings).
ORDER_BY_NAME: Dict[str, MemoryOrder] = {
    "rlx": MemoryOrder.RELAXED,
    "acq": MemoryOrder.ACQUIRE,
    "rel": MemoryOrder.RELEASE,
    "acq_rel": MemoryOrder.ACQ_REL,
    "sc": MemoryOrder.SEQ_CST,
}

#: Orders legal per access kind (C11: no release loads, no acquire stores).
_LOAD_ORDERS = ("rlx", "acq", "sc")
_STORE_ORDERS = ("rlx", "rel", "sc")
_RMW_ORDERS = ("rlx", "acq", "rel", "acq_rel", "sc")
_FENCE_ORDERS = ("acq", "rel", "acq_rel", "sc")

#: The message-passing oracle's bug message.  Static on purpose: corpus
#: entries pin expected bug messages byte-for-byte.
MP_ORACLE_MESSAGE = "fuzz-mp: flag observed but data is stale"


@dataclass(frozen=True)
class FuzzConfig:
    """Bounding knobs and op-mix weights for the generator.

    All fields are JSON-safe scalars/tuples so configs ride inside
    ``ProgramSpec.params`` (see :meth:`to_params` / :meth:`from_params`).
    """

    #: Thread bounding (inclusive).
    min_threads: int = 2
    max_threads: int = 3
    #: Op bounding per thread, *including* any embedded oracle ops.
    min_ops: int = 2
    max_ops: int = 6
    #: Variable bounding: total locations (incl. oracle/non-atomic locs).
    max_locations: int = 4
    #: Memory orders the generator may draw from (plan order names).
    orders: Tuple[str, ...] = ("rlx", "acq", "rel", "acq_rel", "sc")
    #: Op-mix weights (any may be 0 to disable the kind).
    load_weight: int = 4
    store_weight: int = 4
    rmw_weight: int = 2
    cas_weight: int = 1
    fence_weight: int = 1
    spin_weight: int = 1
    #: Probability that an access targets the hot location subset.
    hot_bias: float = 0.75
    #: ``"mixed"`` or ``"determinate"`` (see module docstring).
    profile: str = "mixed"
    #: Embedded MP assertion oracle: "off" | "auto" (coin flip) | "always".
    oracle: str = "auto"
    #: Add a non-atomic location with racy accesses (mixed profile only).
    allow_nonatomic: bool = False
    #: Bounds that keep every generated program finite.
    max_spins: int = 4
    cas_retries: int = 3
    #: Stored values are drawn from 1..value_range.
    value_range: int = 8

    def __post_init__(self) -> None:
        if not (2 <= self.min_threads <= self.max_threads):
            raise ValueError("need 2 <= min_threads <= max_threads")
        if not (1 <= self.min_ops <= self.max_ops):
            raise ValueError("need 1 <= min_ops <= max_ops")
        if self.max_locations < 1:
            raise ValueError("max_locations must be >= 1")
        if not self.orders:
            raise ValueError("orders must be non-empty")
        unknown = [o for o in self.orders if o not in ORDER_BY_NAME]
        if unknown:
            raise ValueError(f"unknown memory orders: {unknown}")
        weights = (self.load_weight, self.store_weight, self.rmw_weight,
                   self.cas_weight, self.fence_weight, self.spin_weight)
        if any(w < 0 for w in weights):
            raise ValueError("op weights must be >= 0")
        if self.load_weight + self.store_weight <= 0:
            raise ValueError("load_weight + store_weight must be > 0")
        if not (0.0 <= self.hot_bias <= 1.0):
            raise ValueError("hot_bias must be in [0, 1]")
        if self.profile not in ("mixed", "determinate"):
            raise ValueError("profile must be 'mixed' or 'determinate'")
        if self.oracle not in ("off", "auto", "always"):
            raise ValueError("oracle must be 'off', 'auto' or 'always'")
        if self.max_spins < 1 or self.cas_retries < 1 or self.value_range < 1:
            raise ValueError("max_spins/cas_retries/value_range must be >= 1")
        object.__setattr__(self, "orders", tuple(self.orders))

    def to_params(self) -> Dict[str, Any]:
        """JSON-safe keyword dict; ``FuzzConfig.from_params`` inverts it."""
        params: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            params[f.name] = list(value) if isinstance(value, tuple) else value
        return params

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "FuzzConfig":
        kwargs = dict(params)
        if "orders" in kwargs:
            kwargs["orders"] = tuple(kwargs["orders"])
        return cls(**kwargs)


# -- plan generation -----------------------------------------------------------


def _pick_order(rng: random.Random, allowed: Sequence[str],
                legal: Sequence[str]) -> str:
    pool = [o for o in legal if o in allowed]
    return rng.choice(pool) if pool else "sc"


def _pick_loc(rng: random.Random, locs: Sequence[str], hot: Sequence[str],
              hot_bias: float) -> str:
    if hot and rng.random() < hot_bias:
        return rng.choice(list(hot))
    return rng.choice(list(locs))


def _weighted_kind(rng: random.Random,
                   choices: Sequence[Tuple[str, int]]) -> str:
    kinds = [k for k, w in choices if w > 0]
    weights = [w for _, w in choices if w > 0]
    return rng.choices(kinds, weights=weights)[0]


def plan_program(gen_seed: int, config: Optional[FuzzConfig] = None) -> dict:
    """Generate the plan for seed ``gen_seed`` (pure, deterministic).

    The same ``(gen_seed, config)`` pair always yields a structurally
    identical plan: generation uses only :class:`random.Random`, whose
    algorithms are stable across platforms and Python versions.
    """
    config = config or FuzzConfig()
    rng = random.Random(gen_seed)
    determinate = config.profile == "determinate"

    n_threads = rng.randint(config.min_threads, config.max_threads)

    # Decide the oracle up-front so the location budget can reserve its
    # two dedicated locations.  Determinate programs never embed one: a
    # mid-run assertion abort would make the final state depend on the
    # interleaving.
    want_oracle = (not determinate and config.oracle != "off"
                   and config.max_locations >= 3)
    if want_oracle and config.oracle == "auto":
        want_oracle = rng.random() < 0.5
    nonatomic = (config.allow_nonatomic and not determinate
                 and config.max_locations >= (4 if want_oracle else 2))

    budget = config.max_locations - (2 if want_oracle else 0) \
        - (1 if nonatomic else 0)
    n_locs = rng.randint(1, max(1, min(budget, 4)))
    locs = [f"X{i}" for i in range(n_locs)]
    locations: List[List[Any]] = [[name, 0, True] for name in locs]

    # Variable bounding: concentrate accesses on a small hot subset.
    hot = sorted(rng.sample(locs, min(2, len(locs))))

    # Determinate partition: each location is either a single-writer
    # store cell or a fetch-add counter; both make the final state
    # interleaving-invariant.
    owners: Dict[str, int] = {}
    counters: List[str] = []
    if determinate:
        for name in locs:
            if rng.random() < 0.4:
                counters.append(name)
            else:
                owners[name] = rng.randrange(n_threads)
        if not counters and not owners:  # pragma: no cover - unreachable
            counters.append(locs[0])

    def gen_instr(tid: int) -> Optional[list]:
        if determinate:
            owned = [l for l in locs if owners.get(l) == tid]
            choices = [
                ("load", config.load_weight),
                ("store", config.store_weight if owned else 0),
                ("add", config.rmw_weight if counters else 0),
                ("fence", config.fence_weight),
                ("spin", config.spin_weight),
            ]
        else:
            choices = [
                ("load", config.load_weight),
                ("store", config.store_weight),
                ("rmw", config.rmw_weight),
                ("cas", config.cas_weight),
                ("fence", config.fence_weight),
                ("spin", config.spin_weight),
                ("na", 2 if nonatomic else 0),
            ]
        if not any(w > 0 for _, w in choices):
            return None
        kind = _weighted_kind(rng, choices)
        value = rng.randint(1, config.value_range)
        if kind == "load":
            loc = _pick_loc(rng, locs, hot, config.hot_bias)
            return ["load", loc, _pick_order(rng, config.orders, _LOAD_ORDERS)]
        if kind == "store":
            loc = (rng.choice(owned) if determinate
                   else _pick_loc(rng, locs, hot, config.hot_bias))
            return ["store", loc, value,
                    _pick_order(rng, config.orders, _STORE_ORDERS)]
        if kind == "add":
            return ["add", rng.choice(counters), value,
                    _pick_order(rng, config.orders, _RMW_ORDERS)]
        if kind == "rmw":
            loc = _pick_loc(rng, locs, hot, config.hot_bias)
            order = _pick_order(rng, config.orders, _RMW_ORDERS)
            if rng.random() < 0.5:
                return ["add", loc, value, order]
            return ["xchg", loc, value, order]
        if kind == "cas":
            loc = _pick_loc(rng, locs, hot, config.hot_bias)
            order = _pick_order(rng, config.orders, _RMW_ORDERS)
            if rng.random() < 0.5:
                return ["cas", loc, rng.randint(0, config.value_range), value,
                        order, _pick_order(rng, config.orders, _LOAD_ORDERS)]
            return ["casloop", loc, value, order, config.cas_retries]
        if kind == "fence":
            return ["fence", _pick_order(rng, config.orders, _FENCE_ORDERS)]
        if kind == "spin":
            loc = _pick_loc(rng, locs, hot, config.hot_bias)
            return ["spin", loc, rng.randint(1, config.value_range),
                    _pick_order(rng, config.orders, _LOAD_ORDERS),
                    config.max_spins]
        if kind == "na":
            if rng.random() < 0.5:
                return ["na_store", "N0", value]
            return ["na_load", "N0"]
        raise AssertionError(kind)  # pragma: no cover

    writer = reader = -1
    magic = 0
    if want_oracle:
        writer = rng.randrange(n_threads)
        reader = rng.choice([t for t in range(n_threads) if t != writer])
        magic = rng.randint(1, config.value_range)

    threads: List[List[list]] = []
    for tid in range(n_threads):
        ops = rng.randint(config.min_ops, config.max_ops)
        # The oracle's ops count against the per-thread bound, so the
        # max_ops knob is a hard cap even on oracle threads.
        if tid == writer:
            ops = max(0, ops - 2)
        elif tid == reader:
            ops = max(0, ops - 1)
        body = []
        for _ in range(ops):
            instr = gen_instr(tid)
            if instr is not None:
                body.append(instr)
        threads.append(body)

    if want_oracle:
        d_order = _pick_order(rng, config.orders, _STORE_ORDERS)
        f_order = _pick_order(rng, config.orders, _STORE_ORDERS)
        lf_order = _pick_order(rng, config.orders, _LOAD_ORDERS)
        ld_order = _pick_order(rng, config.orders, _LOAD_ORDERS)
        locations.append(["FD", 0, True])
        locations.append(["FF", 0, True])
        threads[writer].append(["store", "FD", magic, d_order])
        threads[writer].append(["store", "FF", 1, f_order])
        threads[reader].append(["mp_check", "FF", "FD", magic,
                                lf_order, ld_order])
    if nonatomic:
        locations.append(["N0", 0, False])

    # No thread body may be empty: Program.instantiate would be fine, but
    # zero-op threads waste scheduler slots and trip nothing.
    for body in threads:
        if not body:
            body.append(["load", locs[0],
                         _pick_order(rng, config.orders, _LOAD_ORDERS)])

    name = f"fuzz-{gen_seed & ((1 << 64) - 1):016x}"
    return {
        "version": PLAN_VERSION,
        "name": name,
        "profile": config.profile,
        "locations": locations,
        "threads": threads,
    }


# -- plan -> Program -----------------------------------------------------------


def _make_body(instrs: Sequence[Sequence[Any]], handles: Dict[str, Any]):
    instrs = tuple(tuple(i) for i in instrs)

    def body():
        for ins in instrs:
            kind = ins[0]
            if kind == "store":
                yield handles[ins[1]].store(ins[2], ORDER_BY_NAME[ins[3]])
            elif kind == "load":
                yield handles[ins[1]].load(ORDER_BY_NAME[ins[2]])
            elif kind == "add":
                yield handles[ins[1]].fetch_add(ins[2], ORDER_BY_NAME[ins[3]])
            elif kind == "xchg":
                yield handles[ins[1]].exchange(ins[2], ORDER_BY_NAME[ins[3]])
            elif kind == "cas":
                yield handles[ins[1]].cas(ins[2], ins[3],
                                          ORDER_BY_NAME[ins[4]],
                                          ORDER_BY_NAME[ins[5]])
            elif kind == "casloop":
                _loc, desired, order, retries = ins[1], ins[2], \
                    ORDER_BY_NAME[ins[3]], ins[4]
                for _ in range(retries):
                    current = yield handles[_loc].load(order)
                    if current == desired:
                        break
                    ok, _old = yield handles[_loc].cas(current, desired, order)
                    if ok:
                        break
            elif kind == "fence":
                yield fence(ORDER_BY_NAME[ins[1]])
            elif kind == "spin":
                target = ins[2]
                yield from spin_until(handles[ins[1]],
                                      lambda v, t=target: v == t,
                                      ORDER_BY_NAME[ins[3]], ins[4])
            elif kind == "na_store":
                yield handles[ins[1]].store(ins[2])
            elif kind == "na_load":
                yield handles[ins[1]].load()
            elif kind == "mp_check":
                flag = yield handles[ins[1]].load(ORDER_BY_NAME[ins[4]])
                if flag == 1:
                    data = yield handles[ins[2]].load(ORDER_BY_NAME[ins[5]])
                    require(data == ins[3], MP_ORACLE_MESSAGE)
            else:
                raise ProgramDefinitionError(
                    f"unknown plan instruction {kind!r}")

    return body


def build_plan_program(plan: Mapping[str, Any]) -> Program:
    """Materialize a plan into a reusable :class:`Program`.

    The returned program keeps all per-run state inside its generator
    bodies, so it satisfies the registry's ``supports_reuse`` contract
    (one build, many instantiations).
    """
    version = plan.get("version", PLAN_VERSION)
    if version != PLAN_VERSION:
        raise ValueError(f"unsupported plan version {version!r}")
    program = Program(str(plan.get("name", "fuzz")))
    handles: Dict[str, Any] = {}
    for name, init, atomic in plan["locations"]:
        if atomic:
            handles[name] = program.atomic(name, init,
                                           MemoryOrder.SEQ_CST)
        else:
            handles[name] = program.non_atomic(name, init)
    for tid, instrs in enumerate(plan["threads"]):
        program.add_thread(_make_body(instrs, handles), name=f"t{tid}")
    return program


# -- plan analysis -------------------------------------------------------------


def plan_stats(plan: Mapping[str, Any]) -> Dict[str, int]:
    """Thread/op/location counts, for bound checks and reports."""
    threads = plan["threads"]
    return {
        "threads": len(threads),
        "ops": sum(len(t) for t in threads),
        "max_thread_ops": max((len(t) for t in threads), default=0),
        "locations": len(plan["locations"]),
    }


def plan_step_bound(plan: Mapping[str, Any]) -> int:
    """A step budget every execution of the plan fits inside, any model.

    Spin loops and CAS loops are bounded by construction; the factor of 2
    covers TSO's separately-scheduled store-buffer flush commits, and the
    per-thread slack covers joins and end-of-thread bookkeeping.
    """
    cost = 0
    for instrs in plan["threads"]:
        for ins in instrs:
            kind = ins[0]
            if kind == "spin":
                cost += ins[4]
            elif kind == "casloop":
                cost += 2 * ins[4]
            elif kind == "mp_check":
                cost += 2
            else:
                cost += 1
    return 2 * cost + 16 * len(plan["threads"]) + 64


def plan_is_determinate(plan: Mapping[str, Any]) -> bool:
    """True when the final memory state cannot depend on scheduling.

    Structural check: all locations atomic, no CAS/exchange/oracle, and
    each location is either stored to by at most one thread (and never
    fetch-added) or only fetch-added.  Loads, fences, and bounded spins
    never affect the final state.
    """
    for _name, _init, atomic in plan["locations"]:
        if not atomic:
            return False
    store_tids: Dict[str, set] = {}
    adders: Dict[str, set] = {}
    for tid, instrs in enumerate(plan["threads"]):
        for ins in instrs:
            kind = ins[0]
            if kind == "store":
                store_tids.setdefault(ins[1], set()).add(tid)
            elif kind == "add":
                adders.setdefault(ins[1], set()).add(tid)
            elif kind in ("load", "fence", "spin"):
                continue
            else:
                return False
    for loc, tids in store_tids.items():
        if len(tids) > 1 or loc in adders:
            return False
    return True


def expected_final_memory(plan: Mapping[str, Any]) -> Dict[str, int]:
    """The unique final memory state of a determinate plan."""
    if not plan_is_determinate(plan):
        raise ValueError("plan is not determinate")
    final: Dict[str, Any] = {name: init
                             for name, init, _atomic in plan["locations"]}
    for instrs in plan["threads"]:
        for ins in instrs:
            if ins[0] == "store":
                final[ins[1]] = ins[2]
            elif ins[0] == "add":
                final[ins[1]] += ins[2]
    return final


# -- registry integration ------------------------------------------------------


def fuzz_program(gen_seed: Optional[int] = None,
                 plan: Optional[Mapping[str, Any]] = None,
                 **config_params: Any) -> Program:
    """The ``"fuzz"`` registry factory.

    Two parameter shapes, both picklable/JSON-safe:

    * ``{"gen_seed": <int>, **config_knobs}`` — regenerate the plan from
      its seed (the form campaign artifacts carry);
    * ``{"plan": {...}}`` — build an explicit (possibly shrunk) plan
      (the form corpus entries carry).
    """
    if plan is not None:
        if gen_seed is not None or config_params:
            raise ValueError("pass either plan= or gen_seed=, not both")
        return build_plan_program(plan)
    if gen_seed is None:
        raise ValueError("fuzz_program needs gen_seed= or plan=")
    config = FuzzConfig.from_params(config_params)
    return build_plan_program(plan_program(gen_seed, config))


def generate_spec(gen_seed: int,
                  config: Optional[FuzzConfig] = None) -> ProgramSpec:
    """The picklable registry spec for generation seed ``gen_seed``."""
    config = config or FuzzConfig()
    name = f"fuzz-{gen_seed & ((1 << 64) - 1):016x}"
    return ProgramSpec(name, "fuzz",
                       {"gen_seed": gen_seed, **config.to_params()})


def plan_spec(plan: Mapping[str, Any]) -> ProgramSpec:
    """The registry spec of an explicit (e.g. shrunk) plan."""
    return ProgramSpec(str(plan.get("name", "fuzz")), "fuzz",
                       {"plan": dict(plan)})
