"""The regression corpus: minimized findings pinned as JSON files.

Each corpus entry is a self-contained replay recipe: an explicit
(shrunk) program plan, the scheduler name/parameters, the memory model,
the witness seed, and the pinned expected outcome.  Replay is
seed-based — rebuild the program through the ``"fuzz"`` registry kind,
rebuild the scheduler from the registry, run once, compare — so entries
stay valid across engine refactors as long as seed-for-seed determinism
holds (which the fast-vs-reference and serial-vs-parallel suites pin
separately).

``tests/test_corpus.py`` replays every committed entry on every run of
the tier-1 suite; ``scripts/regen_corpus.py`` regenerates the committed
set from fixed fuzzer seeds.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from ..core.factory import make_scheduler
from ..harness.artifact import classify_outcome
from ..memory.model import resolve_model
from ..runtime.errors import ReproError
from ..workloads.registry import ProgramSpec
from .shrink import ShrunkFinding

CORPUS_VERSION = 1


def entry_from_finding(finding: ShrunkFinding, name: str,
                       provenance: Optional[Mapping[str, Any]] = None) -> dict:
    """Build the JSON-safe corpus entry for a shrunk finding."""
    return {
        "version": CORPUS_VERSION,
        "name": name,
        "model": finding.model,
        "program": {
            "kind": "fuzz",
            "name": finding.plan.get("name", name),
            "params": {"plan": finding.plan},
        },
        "scheduler": {
            "name": finding.scheduler_name,
            "params": dict(finding.scheduler_params),
        },
        "seed": finding.seed,
        "max_steps": finding.max_steps,
        "spin_threshold": finding.spin_threshold,
        "expected": {
            "outcome": finding.outcome,
            "bug_kind": finding.bug_kind,
            "bug_message": finding.bug_message,
        },
        "provenance": dict(provenance or {}),
    }


def save_entry(directory: str, entry: Mapping[str, Any]) -> str:
    """Write an entry as ``<name>.json``; deterministic byte-for-byte."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{entry['name']}.json")
    with open(path, "w") as fh:
        json.dump(entry, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_entry(path: str) -> dict:
    with open(path, "r") as fh:
        entry = json.load(fh)
    version = entry.get("version")
    if version != CORPUS_VERSION:
        raise ValueError(f"{path}: unsupported corpus version {version!r}")
    return entry


def corpus_files(directory: str) -> List[str]:
    """All corpus entry paths in a directory, sorted by filename."""
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, fn)
        for fn in os.listdir(directory)
        if fn.endswith(".json")
    )


@dataclass
class CorpusReplay:
    """Outcome of replaying one corpus entry against its pinned verdict."""

    name: str
    model: str
    ok: bool
    expected: Dict[str, Any]
    got: Dict[str, Any]

    def render(self) -> str:
        status = "ok" if self.ok else "MISMATCH"
        return (f"{self.name} [{self.model}] {status}: "
                f"expected {self.expected}, got {self.got}")


def replay_entry(entry: Mapping[str, Any]) -> CorpusReplay:
    """Re-execute an entry under its recorded configuration and compare.

    The comparison pins ``(outcome, bug_kind, bug_message)``; entries
    whose expected ``bug_message`` is null only pin the first two (racy
    diagnostics may embed event identities that a legitimate engine
    change can renumber).
    """
    backend = resolve_model(entry["model"])
    program_spec = entry["program"]
    program = ProgramSpec(program_spec["name"], program_spec["kind"],
                          program_spec.get("params", {})).build()
    scheduler = make_scheduler(entry["scheduler"]["name"],
                               entry["scheduler"].get("params", {}),
                               seed=entry["seed"])
    expected = dict(entry["expected"])
    sanitize = expected.get("outcome") == "inconsistent"
    try:
        result = backend.run_once(
            program, scheduler,
            max_steps=entry.get("max_steps", 20000),
            spin_threshold=entry.get("spin_threshold", 8),
            keep_graph=False, sanitize=sanitize)
        got: Dict[str, Any] = {
            "outcome": classify_outcome(result, None),
            "bug_kind": result.bug_kind,
            "bug_message": result.bug_message,
        }
    except ReproError as exc:
        got = {"outcome": "error", "bug_kind": type(exc).__name__,
               "bug_message": str(exc)}
    ok = (got["outcome"] == expected.get("outcome")
          and got["bug_kind"] == expected.get("bug_kind"))
    if ok and expected.get("bug_message") is not None:
        ok = got["bug_message"] == expected["bug_message"]
    return CorpusReplay(
        name=str(entry.get("name", "?")),
        model=str(entry["model"]),
        ok=ok,
        expected=expected,
        got=got,
    )
