"""Coverage-guided fuzz campaigns and the standing differential modes.

:func:`run_fuzz` is the ``generate → campaign → shrink → corpus``
pipeline behind ``repro fuzz``:

1. **generate** — derive one 64-bit generation seed per program from the
   base seed (same derivation as campaign trial seeds, so the stream is
   independent of count/jobs) and materialize its plan;
2. **steer** — estimate (k, k_com) via
   :func:`repro.core.depth.estimate_parameters`, then probe a small
   (d, h) grid in-process, scoring each candidate by bug hits, distinct
   rf/mo shapes, distinct execution signatures, and weak-read volume
   (:mod:`repro.harness.coverage`); ties prefer the smaller
   configuration, honouring the Section 5.4 sample-space bound;
3. **campaign** — run the winning configuration through
   :func:`repro.harness.parallel.run_campaign_parallel` with
   record-on-failure artifacts (warm-worker reuse applies: fuzz specs
   are registry specs);
4. **shrink → corpus** — dedupe findings by (outcome, bug kind), ddmin
   the decision trace and the plan itself
   (:mod:`repro.fuzz.shrink`), and pin each survivor as a corpus entry.

Everything reported is a pure function of (base seed, count, config,
scheduler, model, trials): probes run in-process on derived seeds and
campaigns are jobs-invariant, so ``repro fuzz`` output is bit-identical
across runs and across ``--jobs``.

The module also hosts the two standing differential modes the fuzzer
powers: :func:`engine_divergences` (fast vs reference, trace-exact,
under both models) and :func:`model_divergences` (TSO vs C11 final
state on generated race-free determinate programs).
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.depth import estimate_parameters
from ..core.factory import SchedulerSpec, make_scheduler
from ..harness.artifact import load_artifact
from ..harness.coverage import (
    behaviour_shape,
    execution_signature,
    weak_read_count,
)
from ..harness.parallel import run_campaign_parallel
from ..harness.seeding import derive_trial_seed
from ..memory.model import MemoryModel, resolve_model
from ..replay.minimize import minimize_trace
from ..runtime.errors import ReproError
from .corpus import entry_from_finding, replay_entry, save_entry
from .generator import (
    FuzzConfig,
    build_plan_program,
    expected_final_memory,
    generate_spec,
    plan_program,
    plan_stats,
    plan_step_bound,
)
from .shrink import shrink_plan

#: Probe trial indices start here so they never collide with campaign
#: trial indices (0..trials-1) in the per-program seed stream.
_PROBE_OFFSET = 1_000_000

#: The (depth, history) grid the steering probe searches for PCTWM.
_PCTWM_GRID: Tuple[Tuple[int, int], ...] = (
    (0, 1), (1, 1), (1, 2), (2, 1), (2, 2), (3, 2),
)

#: Depths probed for plain PCT.
_PCT_DEPTHS: Tuple[int, ...] = (0, 1, 2, 3)


# -- fingerprints and divergence dumps ----------------------------------------


def run_fingerprint(result) -> tuple:
    """A hashable trace-exact summary of one run (graph + verdicts).

    Mirrors the fast-vs-reference differential suite: per-event tuples
    over stable fields, per-location modification orders, the SC order,
    and the run's verdict fields.  Two runs with equal fingerprints made
    identical memory-model choices everywhere.
    """
    graph = result.graph
    events = tuple(
        (e.uid, e.tid, e.label.kind.name, int(e.label.order), e.label.loc,
         e.label.rval, e.label.wval, e.po_index, e.mo_index, e.sc_index,
         None if e.reads_from is None else e.reads_from.uid)
        for e in graph.events
    )
    mo = tuple(sorted(
        (loc, tuple(w.uid for w in writes))
        for loc, writes in graph.writes_by_loc.items()
    ))
    return (
        events, mo,
        result.bug_found, result.bug_kind, result.bug_message,
        tuple(sorted(str(r) for r in result.races)),
        tuple(sorted(result.thread_results.items())),
        tuple(result.violations),
    )


def write_divergence(dump_dir: str, divergence: Mapping[str, Any]) -> str:
    """Persist a replayable divergence record; returns its path."""
    os.makedirs(dump_dir, exist_ok=True)
    gen_seed = divergence.get("gen_seed", 0) & ((1 << 64) - 1)
    name = (f"{divergence.get('kind', 'divergence')}-"
            f"{gen_seed:016x}-{divergence.get('seed', 0)}.json")
    path = os.path.join(dump_dir, name)
    with open(path, "w") as fh:
        json.dump(divergence, fh, indent=2, sort_keys=True, default=repr)
        fh.write("\n")
    return path


def _divergence(kind: str, gen_seed: int, seed: int, model: str,
                scheduler_name: str, scheduler_params: Mapping[str, Any],
                plan: Mapping[str, Any], max_steps: int,
                detail: str, dump_dir: Optional[str]) -> Dict[str, Any]:
    record: Dict[str, Any] = {
        "kind": kind,
        "gen_seed": gen_seed,
        "seed": seed,
        "model": model,
        "scheduler": {"name": scheduler_name,
                      "params": dict(scheduler_params)},
        "program": {"kind": "fuzz", "name": plan.get("name", "fuzz"),
                    "params": {"plan": dict(plan)}},
        "max_steps": max_steps,
        "detail": detail,
    }
    if dump_dir is not None:
        record["artifact"] = write_divergence(dump_dir, record)
    return record


#: Scheduler configurations the differential modes exercise.  Both are
#: TSO-allowlisted; the PCTWM cell uses a fixed small configuration so
#: the sweep needs no per-program estimation.
DIFFERENTIAL_SCHEDULERS: Tuple[Tuple[str, Dict[str, Any]], ...] = (
    ("naive", {}),
    ("pctwm", {"depth": 2, "k_com": 6, "history": 2}),
)


def engine_divergences(gen_seeds: Iterable[int],
                       config: Optional[FuzzConfig] = None,
                       models: Sequence[str] = ("c11", "tso"),
                       schedulers: Sequence[Tuple[str, Mapping[str, Any]]]
                       = DIFFERENTIAL_SCHEDULERS,
                       runs_per_seed: int = 2,
                       sanitize: bool = False,
                       dump_dir: Optional[str] = None) -> List[Dict[str, Any]]:
    """Fast-vs-reference trace equivalence over generated programs.

    For every generated program, scheduler cell, and derived run seed,
    executes once per engine and compares :func:`run_fingerprint`; with
    ``sanitize=True`` the runs also carry the online consistency
    sanitizer, whose violations land in the fingerprint.  Returns one
    record per divergence (empty list = engines agree everywhere).
    """
    config = config or FuzzConfig()
    divergences: List[Dict[str, Any]] = []
    for gen_seed in gen_seeds:
        plan = plan_program(gen_seed, config)
        program = build_plan_program(plan)
        bound = plan_step_bound(plan)
        for model_name in models:
            backend = resolve_model(model_name)
            for sched_name, sched_params in schedulers:
                if not backend.supports_scheduler(sched_name):
                    continue
                for j in range(runs_per_seed):
                    seed = derive_trial_seed(gen_seed, j)
                    prints = {}
                    for engine in ("fast", "reference"):
                        scheduler = make_scheduler(sched_name, sched_params,
                                                   seed=seed)
                        result = backend.run_once(
                            program, scheduler, max_steps=bound,
                            sanitize=sanitize, engine=engine)
                        prints[engine] = run_fingerprint(result)
                    if prints["fast"] != prints["reference"]:
                        divergences.append(_divergence(
                            "engine-mismatch", gen_seed, seed, model_name,
                            sched_name, sched_params, plan, bound,
                            "fast and reference engines produced different "
                            "trace fingerprints", dump_dir))
    return divergences


def model_divergences(gen_seeds: Iterable[int],
                      config: Optional[FuzzConfig] = None,
                      schedulers: Sequence[Tuple[str, Mapping[str, Any]]]
                      = DIFFERENTIAL_SCHEDULERS,
                      runs_per_seed: int = 2,
                      dump_dir: Optional[str] = None) -> List[Dict[str, Any]]:
    """TSO-vs-C11 agreement on generated race-free determinate programs.

    Programs come from the ``determinate`` profile, whose final memory
    state is interleaving- and model-invariant by construction; both
    backends must drive every location to
    :func:`~repro.fuzz.generator.expected_final_memory` on every seed,
    and must never report a bug (the programs are race- and
    assertion-free).
    """
    config = dataclasses.replace(config or FuzzConfig(),
                                 profile="determinate", oracle="off",
                                 allow_nonatomic=False)
    divergences: List[Dict[str, Any]] = []
    for gen_seed in gen_seeds:
        plan = plan_program(gen_seed, config)
        program = build_plan_program(plan)
        bound = plan_step_bound(plan)
        expected = expected_final_memory(plan)
        for sched_name, sched_params in schedulers:
            for j in range(runs_per_seed):
                seed = derive_trial_seed(gen_seed, j)
                for model_name in ("c11", "tso"):
                    backend = resolve_model(model_name)
                    if not backend.supports_scheduler(sched_name):
                        continue
                    scheduler = make_scheduler(sched_name, sched_params,
                                               seed=seed)
                    result = backend.run_once(program, scheduler,
                                              max_steps=bound)
                    if result.bug_found or result.limit_exceeded \
                            or result.timed_out:
                        divergences.append(_divergence(
                            "determinate-misrun", gen_seed, seed,
                            model_name, sched_name, sched_params, plan,
                            bound,
                            f"determinate program misbehaved: "
                            f"bug={result.bug_kind!r} "
                            f"limit={result.limit_exceeded} "
                            f"timeout={result.timed_out}", dump_dir))
                        continue
                    final = {loc: result.graph.mo_max(loc).wval
                             for loc in result.graph.locations()}
                    bad = {loc: (value, expected.get(loc))
                           for loc, value in final.items()
                           if expected.get(loc) != value}
                    if bad:
                        divergences.append(_divergence(
                            "model-final-state", gen_seed, seed,
                            model_name, sched_name, sched_params, plan,
                            bound,
                            f"final memory diverged from the unique "
                            f"determinate state: {bad}", dump_dir))
    return divergences


# -- coverage-steered (d, h) search -------------------------------------------


def _probe_batch(backend: MemoryModel, program, scheduler: str,
                 params: Mapping[str, Any], gen_seed: int, start_index: int,
                 trials: int, max_steps: int, spin_threshold: int,
                 sigs: set, shapes: set) -> Tuple[int, int, int, int]:
    """Run ``trials`` in-process probes; returns (hits, shapes, sigs, weak).

    Distinct counts are *per batch*; the shared ``sigs``/``shapes`` sets
    accumulate the program's overall probe coverage across batches.
    """
    batch_sigs: set = set()
    batch_shapes: set = set()
    hits = 0
    weak = 0
    for j in range(trials):
        seed = derive_trial_seed(gen_seed, start_index + j)
        scheduler_obj = make_scheduler(scheduler, params, seed=seed)
        try:
            result = backend.run_once(program, scheduler_obj,
                                      max_steps=max_steps,
                                      spin_threshold=spin_threshold)
        except ReproError:
            continue
        batch_sigs.add(execution_signature(result.graph))
        batch_shapes.add(behaviour_shape(result.graph))
        weak += weak_read_count(result.graph)
        hits += bool(result.bug_found)
    sigs |= batch_sigs
    shapes |= batch_shapes
    return hits, len(batch_shapes), len(batch_sigs), weak


def _search_params(backend: MemoryModel, program, scheduler: str, k: int,
                   k_com: int, gen_seed: int, probe_trials: int,
                   max_steps: int, spin_threshold: int,
                   sigs: set, shapes: set) -> Dict[str, Any]:
    """Pick the scheduler parameters the probes score best.

    Candidates are scored lexicographically by (bug hits, distinct
    rf/mo shapes, distinct signatures, weak reads); ties fall to the
    *smallest* (d, h) — the Section 5.4 sample space grows as
    ``C(k_com, d)·d!·h^d``, so among equally-diverse configurations the
    smallest concentrates probability hardest on each behaviour.
    """
    if scheduler == "pctwm":
        candidates = [{"depth": d, "k_com": k_com, "history": h}
                      for d, h in _PCTWM_GRID]
    elif scheduler == "pct":
        candidates = [{"depth": d, "k_events": max(1, k)}
                      for d in _PCT_DEPTHS]
    else:
        candidates = [{}]
    best_params: Dict[str, Any] = candidates[0]
    best_score: Optional[tuple] = None
    for index, params in enumerate(candidates):
        stats = _probe_batch(
            backend, program, scheduler, params, gen_seed,
            _PROBE_OFFSET + index * probe_trials, probe_trials,
            max_steps, spin_threshold, sigs, shapes)
        score = stats + (-params.get("depth", 0), -params.get("history", 0))
        if best_score is None or score > best_score:
            best_score = score
            best_params = params
    return best_params


# -- the generate → campaign → shrink → corpus pipeline ------------------------


@dataclass
class FuzzProgramReport:
    """Everything the pipeline learned about one generated program."""

    index: int
    gen_seed: int
    name: str
    threads: int
    ops: int
    locations: int
    k: int
    k_com: int
    scheduler: str
    scheduler_params: Dict[str, Any]
    max_steps: int
    trials: int
    hits: int
    errors: int
    timeouts: int
    inconsistent: int
    #: Probe-phase coverage (in-process, over all (d, h) candidates).
    distinct_signatures: int
    distinct_shapes: int
    weak_reads: int
    findings: List[Dict[str, Any]] = field(default_factory=list)

    def render(self) -> List[str]:
        params = self.scheduler_params
        dh = ""
        if "depth" in params:
            dh = f" d={params['depth']}"
            if "history" in params:
                dh += f" h={params['history']}"
        lines = [
            f"[{self.index:03d}] {self.name} threads={self.threads} "
            f"ops={self.ops} locs={self.locations} "
            f"k={self.k} k_com={self.k_com}{dh} "
            f"sigs={self.distinct_signatures} shapes={self.distinct_shapes} "
            f"weak={self.weak_reads} hits={self.hits}/{self.trials}"
        ]
        for finding in self.findings:
            kind = finding["outcome"]
            if finding.get("bug_kind"):
                kind += f"/{finding['bug_kind']}"
            if finding.get("corpus"):
                tail = (f"shrunk {finding['ops_before']}->"
                        f"{finding['ops_after']} ops, "
                        f"seed={finding['seed']}, "
                        f"corpus={finding['corpus']}")
            else:
                tail = finding.get("note", "not reproducible; dropped")
            lines.append(f"      {kind}: {tail}")
        return lines


@dataclass
class FuzzReport:
    """Deterministic aggregate of one ``repro fuzz`` invocation."""

    model: str
    scheduler: str
    base_seed: int
    count: int
    trials: int
    programs: List[FuzzProgramReport] = field(default_factory=list)
    corpus_paths: List[str] = field(default_factory=list)
    #: Programs skipped because the wall-clock budget ran out.
    truncated: int = 0

    @property
    def findings(self) -> List[Dict[str, Any]]:
        return [f for p in self.programs for f in p.findings]

    def render(self) -> List[str]:
        lines = [
            f"fuzz: model={self.model} scheduler={self.scheduler} "
            f"seed={self.base_seed} count={self.count} trials={self.trials}"
        ]
        for program in self.programs:
            lines.extend(program.render())
        total_hits = sum(p.hits for p in self.programs)
        pinned = sum(1 for f in self.findings if f.get("corpus"))
        lines.append(
            f"summary: programs={len(self.programs)} "
            f"truncated={self.truncated} hits={total_hits} "
            f"errors={sum(p.errors for p in self.programs)} "
            f"timeouts={sum(p.timeouts for p in self.programs)} "
            f"inconsistent={sum(p.inconsistent for p in self.programs)} "
            f"findings={len(self.findings)} corpus-entries={pinned}"
        )
        return lines


def _finding_name(model: str, scheduler: str, outcome: str,
                  bug_kind: Optional[str], gen_seed: int) -> str:
    parts = [model, scheduler, outcome]
    if bug_kind:
        parts.append(bug_kind.replace(" ", "-"))
    parts.append(f"{gen_seed & ((1 << 64) - 1):016x}")
    return "-".join(parts)


def run_fuzz(base_seed: int = 0, count: int = 20, model: str = "c11",
             scheduler: str = "pctwm", trials: int = 100,
             probe_trials: int = 16, jobs: int = 1,
             config: Optional[FuzzConfig] = None,
             corpus_dir: Optional[str] = None,
             budget_s: Optional[float] = None,
             sanitize: str = "sampled", spin_threshold: int = 8,
             max_steps: Optional[int] = None,
             minimize_traces: bool = True,
             seed_attempts: int = 8) -> FuzzReport:
    """The full pipeline (see module docstring).  Deterministic output.

    ``budget_s`` is a soft wall-clock cap checked *between* programs, so
    a budgeted run may truncate the program list but never produces
    different per-program results — only fewer of them.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    backend = resolve_model(model)
    if not backend.supports_scheduler(scheduler):
        raise ValueError(
            f"scheduler {scheduler!r} is not supported by model {model!r}")
    config = config or FuzzConfig()
    deadline = None if budget_s is None else time.monotonic() + budget_s
    report = FuzzReport(model=backend.name, scheduler=scheduler,
                        base_seed=base_seed, count=count, trials=trials)

    for index in range(count):
        if deadline is not None and time.monotonic() > deadline:
            report.truncated = count - index
            break
        gen_seed = derive_trial_seed(base_seed, index)
        plan = plan_program(gen_seed, config)
        program = build_plan_program(plan)
        stats = plan_stats(plan)
        bound = max_steps if max_steps is not None else plan_step_bound(plan)

        estimate = estimate_parameters(program, runs=3, seed=gen_seed,
                                       max_steps=bound, model=backend.name)
        k = max(1, estimate.k)
        k_com = max(1, estimate.k_com)

        sigs: set = set()
        shapes: set = set()
        weak_total = 0
        params = _search_params(backend, program, scheduler, k, k_com,
                                gen_seed, probe_trials, bound,
                                spin_threshold, sigs, shapes)
        # One extra pass at the chosen configuration for the weak-read
        # tally reported per program (batch tallies vary per candidate).
        _hits, _, _, weak_total = _probe_batch(
            backend, program, scheduler, params, gen_seed,
            _PROBE_OFFSET - probe_trials, probe_trials, bound,
            spin_threshold, sigs, shapes)

        spec = generate_spec(gen_seed, config)
        sched_spec = SchedulerSpec(scheduler, params)
        with tempfile.TemporaryDirectory(prefix="fuzz-artifacts-") as tmp:
            result = run_campaign_parallel(
                spec, sched_spec, trials=trials, base_seed=gen_seed,
                max_steps=bound, jobs=jobs, scheduler_name=scheduler,
                sanitize=sanitize, artifact_dir=tmp,
                spin_threshold=spin_threshold, record_mode="on_failure",
                model=backend.name)
            artifacts = [load_artifact(path)
                         for path in sorted(result.artifacts)]

        program_report = FuzzProgramReport(
            index=index, gen_seed=gen_seed, name=plan["name"],
            threads=stats["threads"], ops=stats["ops"],
            locations=stats["locations"], k=k, k_com=k_com,
            scheduler=scheduler, scheduler_params=dict(params),
            max_steps=bound, trials=result.completed, hits=result.hits,
            errors=result.errors, timeouts=result.timeouts,
            inconsistent=result.inconsistent,
            distinct_signatures=len(sigs), distinct_shapes=len(shapes),
            weak_reads=weak_total)

        seen_keys = set()
        for artifact in artifacts:
            key = (artifact.outcome, artifact.bug_kind)
            if key in seen_keys or artifact.outcome == "timeout":
                continue
            seen_keys.add(key)
            finding: Dict[str, Any] = {
                "outcome": artifact.outcome,
                "bug_kind": artifact.bug_kind,
                "bug_message": artifact.bug_message,
                "trial_index": artifact.trial_index,
                "corpus": None,
            }
            trace_len = None
            if minimize_traces and artifact.outcome == "bug":
                try:
                    minimized = minimize_trace(spec, artifact.trace,
                                               max_steps=bound,
                                               model=backend.name)
                    trace_len = len(minimized.decisions)
                except (ReproError, ValueError):
                    trace_len = None
            shrunk = shrink_plan(
                plan, scheduler, params, artifact.trial_seed, key,
                backend, bound, spin_threshold=spin_threshold,
                seed_attempts=seed_attempts)
            if shrunk is None:
                finding["note"] = "not reproducible within seed sweep"
                program_report.findings.append(finding)
                continue
            name = _finding_name(backend.name, scheduler,
                                 artifact.outcome, artifact.bug_kind,
                                 gen_seed)
            entry = entry_from_finding(shrunk, name, provenance={
                "gen_seed": gen_seed,
                "base_seed": base_seed,
                "trial_index": artifact.trial_index,
                "trial_seed": artifact.trial_seed,
                "config": config.to_params(),
                "minimized_trace_len": trace_len,
            })
            finding.update({
                "corpus": name,
                "seed": shrunk.seed,
                "ops_before": shrunk.ops_before,
                "ops_after": shrunk.ops_after,
                "bug_message": shrunk.bug_message,
                "scheduler_params": dict(shrunk.scheduler_params),
                "replays": shrunk.replays,
                "entry": entry,
            })
            replay = replay_entry(entry)
            if not replay.ok:  # pragma: no cover - defensive
                finding["corpus"] = None
                finding["note"] = f"entry failed replay: {replay.got}"
            elif corpus_dir is not None:
                report.corpus_paths.append(save_entry(corpus_dir, entry))
            program_report.findings.append(finding)
        report.programs.append(program_report)
    return report
