"""Seeded program fuzzer: generate → campaign → shrink → corpus.

The generator emits small weak-memory programs over the operation DSL as
pure-data *plans* (JSON-safe nested lists), keyed deterministically by a
64-bit seed.  Plans build into :class:`repro.runtime.program.Program`
instances through the ``"fuzz"`` registry kind, so generated programs are
picklable, replayable, and campaign-compatible exactly like the
hand-written workloads.  The driver steers campaigns by behavioural
coverage (distinct signatures, rf/mo shapes, weak reads) and funnels
findings through the ddmin minimizers into a regression corpus.
"""

from .corpus import (
    CORPUS_VERSION,
    corpus_files,
    load_entry,
    replay_entry,
    save_entry,
)
from .driver import (
    FuzzProgramReport,
    FuzzReport,
    engine_divergences,
    model_divergences,
    run_fuzz,
    write_divergence,
)
from .generator import (
    FuzzConfig,
    build_plan_program,
    expected_final_memory,
    fuzz_program,
    generate_spec,
    plan_is_determinate,
    plan_program,
    plan_spec,
    plan_stats,
    plan_step_bound,
)
from .shrink import ShrunkFinding, shrink_plan

__all__ = [
    "CORPUS_VERSION",
    "FuzzConfig",
    "FuzzProgramReport",
    "FuzzReport",
    "ShrunkFinding",
    "build_plan_program",
    "corpus_files",
    "engine_divergences",
    "expected_final_memory",
    "fuzz_program",
    "generate_spec",
    "load_entry",
    "model_divergences",
    "plan_is_determinate",
    "plan_program",
    "plan_spec",
    "plan_stats",
    "plan_step_bound",
    "replay_entry",
    "run_fuzz",
    "save_entry",
    "shrink_plan",
]
