"""Plan-level shrinking: ddmin over instructions, then over (d, h).

A campaign finding arrives as ``(plan, scheduler, witness seed)``.
Unlike decision-trace minimization (which shrinks the *schedule* of a
fixed program), this module shrinks the *program*: it deletes plan
instructions with the same greedy ddmin the trace minimizer uses
(:func:`repro.replay.minimize.greedy_ddmin`) and accepts a deletion when
the finding still reproduces — at the original witness seed or, because
a smaller program reshuffles every scheduling decision, at one of a
small derived-seed sweep.  The reproducing seed is carried forward, so
the final plan always comes with a live witness.

After the program is minimal, the scheduler configuration is shrunk the
same way :func:`repro.replay.minimize.minimize_configuration` does —
depth first (the Section 5.4 bound is exponential in d), then history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ..core.factory import make_scheduler
from ..harness.artifact import classify_outcome
from ..harness.seeding import derive_trial_seed
from ..memory.model import MemoryModel, resolve_model
from ..replay.minimize import greedy_ddmin
from ..runtime.errors import ReproError
from ..runtime.program import Program
from .generator import build_plan_program

#: (outcome kind, bug kind) — what a shrunk candidate must preserve.
Target = Tuple[str, Optional[str]]

#: Locations an instruction reads or writes, by instruction kind.
_LOC_SLOTS = {
    "store": (1,), "load": (1,), "add": (1,), "xchg": (1,), "cas": (1,),
    "casloop": (1,), "spin": (1,), "na_store": (1,), "na_load": (1,),
    "mp_check": (1, 2),
}


@dataclass
class ShrunkFinding:
    """A minimized, replayable finding: plan + scheduler + witness seed."""

    plan: dict
    seed: int
    scheduler_name: str
    scheduler_params: Dict[str, Any]
    model: str
    outcome: str
    bug_kind: Optional[str]
    bug_message: Optional[str]
    max_steps: int
    spin_threshold: int
    #: Instruction counts before/after the plan ddmin.
    ops_before: int = 0
    ops_after: int = 0
    #: Total candidate replays spent across both shrink phases.
    replays: int = 0
    violations: List[str] = field(default_factory=list)


def _probe(program: Program, model: MemoryModel, scheduler_name: str,
           scheduler_params: Mapping[str, Any], seed: int, max_steps: int,
           spin_threshold: int, sanitize: bool):
    """One replay; returns ``(outcome, bug_kind, bug_message, violations)``."""
    scheduler = make_scheduler(scheduler_name, scheduler_params, seed=seed)
    try:
        result = model.run_once(program, scheduler, max_steps=max_steps,
                                spin_threshold=spin_threshold,
                                keep_graph=False, sanitize=sanitize)
    except ReproError as exc:
        return ("error", type(exc).__name__, str(exc), [])
    outcome = classify_outcome(result, None)
    return (outcome, result.bug_kind, result.bug_message,
            list(result.violations))


def _regroup(plan: Mapping[str, Any],
             items: List[Tuple[int, list]]) -> dict:
    """Rebuild a plan from surviving ``(thread_index, instruction)`` items.

    Emptied threads are dropped and locations no surviving instruction
    references are pruned, so location/thread counts shrink along with
    the instruction list.
    """
    threads: List[List[list]] = [[] for _ in plan["threads"]]
    refs = set()
    for tid, instr in items:
        threads[tid].append(instr)
        for slot in _LOC_SLOTS.get(instr[0], ()):
            refs.add(instr[slot])
    new = dict(plan)
    new["threads"] = [body for body in threads if body]
    new["locations"] = [loc for loc in plan["locations"] if loc[0] in refs]
    return new


def shrink_plan(plan: Mapping[str, Any], scheduler_name: str,
                scheduler_params: Mapping[str, Any], witness_seed: int,
                target: Target, model: Union[str, MemoryModel],
                max_steps: int, spin_threshold: int = 8,
                seed_attempts: int = 8,
                shrink_scheduler: bool = True) -> Optional[ShrunkFinding]:
    """Minimize a finding's plan (and scheduler config) while it reproduces.

    Returns ``None`` when even the unshrunk plan fails to reproduce
    ``target`` within the seed sweep — a finding that flaky is not worth
    pinning in a corpus.
    """
    backend = resolve_model(model) if isinstance(model, str) else model
    sanitize = target[0] == "inconsistent"
    state = {"seed": witness_seed, "replays": 0}

    def find_witness(candidate_plan: Mapping[str, Any],
                     params: Mapping[str, Any]) -> Optional[int]:
        program = build_plan_program(candidate_plan)
        seeds = [state["seed"]] + [derive_trial_seed(state["seed"], j)
                                   for j in range(seed_attempts)]
        for seed in seeds:
            state["replays"] += 1
            got = _probe(program, backend, scheduler_name, params, seed,
                         max_steps, spin_threshold, sanitize)
            if (got[0], got[1]) == target:
                return seed
        return None

    items = [(tid, list(instr))
             for tid, instrs in enumerate(plan["threads"])
             for instr in instrs]
    ops_before = len(items)

    def test(candidate: List[Tuple[int, list]]) -> Optional[List]:
        seed = find_witness(_regroup(plan, candidate), scheduler_params)
        if seed is None:
            return None
        state["seed"] = seed
        return candidate

    if test(items) is None:
        return None
    best = greedy_ddmin(items, test)
    shrunk = _regroup(plan, best)

    # Scheduler-configuration descent: depth first, then history, each
    # step revalidated by the same seed sweep against the shrunk plan.
    params = dict(scheduler_params)
    if shrink_scheduler:
        while params.get("depth", 0) > 0:
            candidate = dict(params, depth=params["depth"] - 1)
            seed = find_witness(shrunk, candidate)
            if seed is None:
                break
            params = candidate
            state["seed"] = seed
        while params.get("history", 1) > 1:
            candidate = dict(params, history=params["history"] - 1)
            seed = find_witness(shrunk, candidate)
            if seed is None:
                break
            params = candidate
            state["seed"] = seed

    outcome, bug_kind, bug_message, violations = _probe(
        build_plan_program(shrunk), backend, scheduler_name, params,
        state["seed"], max_steps, spin_threshold, sanitize)
    state["replays"] += 1
    if (outcome, bug_kind) != target:  # pragma: no cover - defensive
        return None
    return ShrunkFinding(
        plan=shrunk,
        seed=state["seed"],
        scheduler_name=scheduler_name,
        scheduler_params=params,
        model=backend.name,
        outcome=outcome,
        bug_kind=bug_kind,
        bug_message=bug_message,
        max_steps=max_steps,
        spin_threshold=spin_threshold,
        ops_before=ops_before,
        ops_after=len(best),
        replays=state["replays"],
        violations=violations,
    )
