"""Litmus tests: the paper's running examples and classic shapes."""

from .extended import (
    EXTENDED_LITMUS,
    corr2,
    corw,
    coww,
    cowr,
    isa2,
    r_shape,
    s_shape,
    wrc,
)
from .programs import (
    ALL_LITMUS,
    corr,
    iriw,
    load_buffering,
    message_passing,
    mp1,
    mp2,
    p1,
    store_buffering,
    two_plus_two_w,
)

__all__ = [
    "ALL_LITMUS",
    "EXTENDED_LITMUS",
    "corr2",
    "corw",
    "coww",
    "cowr",
    "isa2",
    "r_shape",
    "s_shape",
    "wrc",
    "corr",
    "iriw",
    "load_buffering",
    "message_passing",
    "mp1",
    "mp2",
    "p1",
    "store_buffering",
    "two_plus_two_w",
]
