"""Extended litmus gallery: classic shapes beyond the paper's examples.

Coherence tests (CoWW / CoWR / CoRW), causality chains (WRC, ISA2), and
the R and S shapes.  Each factory's final check raises on the outcome of
interest; docstrings state whether the memory model must forbid it
(engine-soundness tests) or may produce it (weak-outcome tests).
"""

from __future__ import annotations

from ..memory.events import ACQ, REL, RLX
from ..runtime.errors import require
from ..runtime.program import Program


def coww(order=RLX) -> Program:
    """CoWW: same-thread same-location writes must keep po order in mo.

    The final value must be the po-later write's — always, any scheduler.
    """
    p = Program("CoWW")
    x = p.atomic("X", 0)

    def writer():
        yield x.store(1, order)
        yield x.store(2, order)
        final = yield x.load(order)
        require(final == 2, "CoWW: own writes reordered")
        return final

    p.add_thread(writer)

    def observer():
        return (yield x.load(order))

    p.add_thread(observer)
    return p


def cowr(order=RLX) -> Program:
    """CoWR: a thread cannot read a write mo-older than its own last write.

    Forbidden outcome: the writer's read returning the *other* thread's
    value that is mo-older than its own store.
    """
    p = Program("CoWR")
    x = p.atomic("X", 0)

    def t1():
        yield x.store(1, order)
        a = yield x.load(order)
        require(a != 0, "CoWR: read initial value after own write")
        return a

    def t2():
        yield x.store(2, order)

    p.add_thread(t1)
    p.add_thread(t2)
    return p


def corw(order=RLX) -> Program:
    """CoRW: read then write same location; the write must be mo-after
    the read's source.  The observer checks the final mo state instead of
    asserting (engine tests inspect the graph)."""
    p = Program("CoRW")
    x = p.atomic("X", 0)

    def t1():
        a = yield x.load(order)
        yield x.store(a + 10, order)
        return a

    def t2():
        yield x.store(1, order)

    p.add_thread(t1)
    p.add_thread(t2)
    return p


def wrc(flag_order=RLX, observe_order=RLX, data_order=RLX) -> Program:
    """WRC (write-to-read causality), three threads.

    T1 writes X; T2 reads X and raises Y; T3 reads Y then X.  All-relaxed:
    T3 may see Y=1 but X=0 (a depth-2 weak outcome).

    Note the subtlety with ``flag_order=REL, observe_order=ACQ`` only:
    the outcome is *still C11-legal*, because T2's read of T1's relaxed
    write creates rf but no happens-before — hb reaches back only to T2's
    events.  Forbidding it requires ``data_order=REL`` as well (T1's write
    release, T2's observation acquire), completing the hb chain.  PCTWM's
    view semantics (Algorithm 2, line 16) is causally cumulative — T2's
    bag carries T1's write — so the view-based scheduler never produces
    the intermediate-strength outcome even though the axiomatic model
    admits it; the tests pin down both behaviours.
    """
    p = Program("WRC")
    x = p.atomic("X", 0)
    y = p.atomic("Y", 0)

    def t1():
        yield x.store(1, data_order)

    def t2():
        a = yield x.load(observe_order)
        if a == 1:
            yield y.store(1, flag_order)
        return a

    def t3():
        b = yield y.load(observe_order)
        if b == 1:
            c = yield x.load(RLX)
            require(c == 1, "WRC: causality violated")
        return b

    p.add_thread(t1)
    p.add_thread(t2)
    p.add_thread(t3)
    return p


def isa2() -> Program:
    """ISA2: rel/acq chain through two locations must transfer the data.

    All synchronization edges present — the assertion can never fire
    (engine-soundness test for cumulativity through sw chains).
    """
    p = Program("ISA2")
    x = p.atomic("X", 0)
    y = p.atomic("Y", 0)
    z = p.atomic("Z", 0)

    def t1():
        yield x.store(1, RLX)
        yield y.store(1, REL)

    def t2():
        a = yield y.load(ACQ)
        if a == 1:
            yield z.store(1, REL)
        return a

    def t3():
        b = yield z.load(ACQ)
        if b == 1:
            c = yield x.load(RLX)
            require(c == 1, "ISA2: rel/acq chain failed to transfer X")
        return b

    p.add_thread(t1)
    p.add_thread(t2)
    p.add_thread(t3)
    return p


def r_shape(order=RLX) -> Program:
    """R: W-W vs W-R across two locations.

    Weak outcome: T2 reads X=0 while mo places T1's Y write after T2's.
    The check records the outcome via return values (graph-level tests
    decide legality); no assertion is raised here.
    """
    p = Program("R")
    x = p.atomic("X", 0)
    y = p.atomic("Y", 0)

    def t1():
        yield x.store(1, order)
        yield y.store(1, order)

    def t2():
        yield y.store(2, order)
        return (yield x.load(order))

    p.add_thread(t1)
    p.add_thread(t2)
    return p


def s_shape(order=RLX) -> Program:
    """S: W-W vs R-W across two locations; observational shape test."""
    p = Program("S")
    x = p.atomic("X", 0)
    y = p.atomic("Y", 0)

    def t1():
        yield x.store(2, order)
        yield y.store(1, order)

    def t2():
        a = yield y.load(order)
        yield x.store(1, order)
        return a

    p.add_thread(t1)
    p.add_thread(t2)
    return p


def corr2(order=RLX) -> Program:
    """CoRR2: two readers must agree on the order of same-location writes.

    mo is total per location (sc-per-location), so reader A observing
    1-then-2 while reader B observes 2-then-1 is forbidden under every
    scheduler — a cross-thread coherence check the single-reader CoRR
    cannot express.
    """
    p = Program("CoRR2")
    x = p.atomic("X", 0)

    def w1():
        yield x.store(1, order)

    def w2():
        yield x.store(2, order)

    def reader(name):
        a = yield x.load(order)
        b = yield x.load(order)
        return (a, b)

    p.add_thread(w1)
    p.add_thread(w2)
    p.add_thread(reader, "ra", name="ra")
    p.add_thread(reader, "rb", name="rb")

    def check(results):
        ra, rb = results["ra"], results["rb"]
        require(not (ra == (1, 2) and rb == (2, 1)) and
                not (ra == (2, 1) and rb == (1, 2)),
                f"CoRR2: readers disagree on mo ({ra} vs {rb})")

    p.add_final_check(check)
    return p


EXTENDED_LITMUS = {
    "CoRR2": corr2,
    "CoWW": coww,
    "CoWR": cowr,
    "CoRW": corw,
    "WRC": wrc,
    "ISA2": isa2,
    "R": r_shape,
    "S": s_shape,
}
