"""Parameterized litmus families (litmus-generator style).

Scalable versions of the classic shapes, for studying how algorithms
degrade with size — the same spirit as the paper's Figure 6 experiment:

* ``sb_family(n)`` — n threads in a store-buffering ring;
* ``mp_chain(n)`` — message passing relayed through n intermediate hops
  (the bug depth grows with the chain length);
* ``coherence_chain(writes)`` — one location, many writes, one reader
  that must respect mo (engine stress test);
* ``staleness_gauge(writes, target)`` — Program P1 generalized: the
  reader hits iff it reads a specific mo position, for calibrating
  history-depth behaviour.
"""

from __future__ import annotations

from ..memory.events import RLX
from ..runtime.errors import require
from ..runtime.program import Program


def sb_family(n: int = 2) -> Program:
    """n-thread store-buffering ring: Ti writes Xi then reads X(i+1).

    The all-zero read outcome needs no communication (depth 0) for any n;
    under SC at least one thread must observe a one.
    """
    if n < 2:
        raise ValueError("the ring needs at least two threads")
    p = Program(f"SB[{n}]")
    locs = [p.atomic(f"X{i}", 0) for i in range(n)]

    def body(i):
        yield locs[i].store(1, RLX)
        return (yield locs[(i + 1) % n].load(RLX))

    for i in range(n):
        p.add_thread(body, i, name=f"t{i}")

    def check(results):
        require(any(v == 1 for v in results.values()),
                f"SB[{n}]: every thread read 0")

    p.add_final_check(check)
    return p


def mp_chain(hops: int = 1) -> Program:
    """Message passing through ``hops`` relay threads (depth = hops + 1).

    T0 writes DATA then FLAG0; relay i forwards FLAGi -> FLAGi+1; the
    final consumer reads the last flag and then DATA.  All relaxed: the
    consumer can observe the flag chain yet miss the data.
    """
    if hops < 0:
        raise ValueError("hops must be >= 0")
    p = Program(f"MPchain[{hops}]")
    data = p.atomic("DATA", 0)
    flags = [p.atomic(f"FLAG{i}", 0) for i in range(hops + 1)]

    def producer():
        yield data.store(42, RLX)
        yield flags[0].store(1, RLX)

    def relay(i):
        for _ in range(6):
            seen = yield flags[i].load(RLX)
            if seen == 1:
                yield flags[i + 1].store(1, RLX)
                return True
        return False

    def consumer():
        for _ in range(6):
            seen = yield flags[hops].load(RLX)
            if seen == 1:
                value = yield data.load(RLX)
                require(value == 42,
                        f"MPchain[{hops}]: flag chain outran the data")
                return value
        return None

    p.add_thread(producer)
    for i in range(hops):
        p.add_thread(relay, i, name=f"relay{i}")
    p.add_thread(consumer)
    return p


def coherence_chain(writes: int = 6) -> Program:
    """One writer producing a long mo chain; a reader samples twice.

    The second read must never observe an mo-earlier write than the
    first (sc-per-location) — an engine invariant for any scheduler.
    """
    if writes < 1:
        raise ValueError("need at least one write")
    p = Program(f"CoChain[{writes}]")
    x = p.atomic("X", 0)

    def writer():
        for v in range(1, writes + 1):
            yield x.store(v, RLX)

    def reader():
        first = yield x.load(RLX)
        second = yield x.load(RLX)
        require(second >= first,
                f"coherence violated: {first} then {second}")
        return (first, second)

    p.add_thread(writer)
    p.add_thread(reader)
    return p


def staleness_gauge(writes: int = 5, target: int = 0) -> Program:
    """The reader 'hits' iff it observes exactly mo position ``target``.

    Generalizes Program P1: with ``target = writes`` the hit needs the
    freshest value (h = 1 suffices); with ``target = 0`` it needs the
    initial value (PCTWM's d = 0 hits deterministically; uniform-rf
    testers hit with probability 1/(writes+1)).
    """
    if writes < 1:
        raise ValueError("need at least one write")
    if not 0 <= target <= writes:
        raise ValueError("target must be within [0, writes]")
    p = Program(f"Gauge[{writes}->{target}]")
    x = p.atomic("X", 0)

    def writer():
        for v in range(1, writes + 1):
            yield x.store(v, RLX)

    def reader():
        value = yield x.load(RLX)
        require(value != target, f"gauge hit: read {value}")
        return value

    p.add_thread(writer)
    p.add_thread(reader)
    return p
