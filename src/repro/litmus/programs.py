"""Litmus programs from the paper and the weak-memory literature.

Each factory returns a fresh :class:`repro.runtime.Program` whose final
check raises :class:`AssertionViolation` exactly when the weak (or buggy)
outcome of interest occurred, so a campaign's hit rate measures how often a
scheduler produces that outcome.
"""

from __future__ import annotations

from ..memory.events import ACQ, REL, RLX, SC
from ..runtime.api import fence
from ..runtime.errors import require
from ..runtime.program import Program


def store_buffering(order=RLX) -> Program:
    """Program SB (Section 2.1): the a = b = 0 outcome is non-SC.

    The assertion ``a == 1 or b == 1`` holds under every interleaving but
    fails under weak memory when both loads read the initial values.
    """
    p = Program("SB")
    x = p.atomic("X", 0)
    y = p.atomic("Y", 0)

    def left():
        yield x.store(1, order)
        a = yield y.load(order)
        return a

    def right():
        yield y.store(1, order)
        b = yield x.load(order)
        return b

    p.add_thread(left)
    p.add_thread(right)
    p.add_final_check(
        lambda r: require(r["left"] == 1 or r["right"] == 1,
                          "SB: both threads read 0")
    )
    return p


def p1(k: int = 5, order=SC) -> Program:
    """Program P1 (Section 2.2): writer storing 1..k; bug when reader sees k.

    Under SC the bug has depth 1 (schedule the read after ``X = k``); under
    weak memory it needs one communication relation with history depth
    reaching the last write.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    p = Program(f"P1(k={k})")
    x = p.atomic("X", 0)

    def writer():
        for value in range(1, k + 1):
            yield x.store(value, order)

    def reader():
        value = yield x.load(order)
        require(value != k, f"P1: read X == {k}")
        return value

    p.add_thread(writer)
    p.add_thread(reader)
    return p


def mp1() -> Program:
    """Program MP1 (Section 5.2): fence-synchronized message passing.

    ``a == 1 and b == 0`` is the bug: if the reader sees the flag, the
    release/acquire fences must make it see the data.
    """
    p = Program("MP1")
    x = p.atomic("X", 0)
    y = p.atomic("Y", 0)

    def writer():
        yield x.store(1, RLX)
        yield fence(REL)
        yield y.store(1, RLX)

    def reader():
        a = yield y.load(RLX)
        yield fence(ACQ)
        b = yield x.load(RLX)
        return (a, b)

    p.add_thread(writer)
    p.add_thread(reader)

    def check(r):
        a, b = r["reader"]
        require(not (a == 1 and b == 0), "MP1: saw flag but not data")

    p.add_final_check(check)
    return p


def mp2() -> Program:
    """Program MP2 (Section 5.3): all-relaxed three-thread message passing.

    The bug (depth d = 2) fires when T3 reads ``Y == 1`` but ``X == 0`` —
    it needs two communication relations: X from T1 to T2 and Y from T2 to
    T3, while X never reaches T3's view.
    """
    p = Program("MP2")
    x = p.atomic("X", 0)
    y = p.atomic("Y", 0)

    def t1():
        yield x.store(1, RLX)

    def t2():
        a = yield x.load(RLX)
        if a == 1:
            yield y.store(1, RLX)

    def t3():
        b = yield y.load(RLX)
        if b == 1:
            c = yield x.load(RLX)
            require(c != 0, "MP2: Y == 1 but X == 0")

    p.add_thread(t1)
    p.add_thread(t2)
    p.add_thread(t3)
    return p


def message_passing(data_order=RLX, flag_store_order=RLX,
                    flag_load_order=RLX) -> Program:
    """Two-thread message passing with configurable orders.

    With ``flag_store_order=REL`` and ``flag_load_order=ACQ`` the bug is
    impossible (sw protects the data); all-relaxed it is a depth-1 weak bug.
    """
    p = Program("MP")
    data = p.atomic("DATA", 0)
    flag = p.atomic("FLAG", 0)

    def producer():
        yield data.store(42, data_order)
        yield flag.store(1, flag_store_order)

    def consumer():
        f = yield flag.load(flag_load_order)
        if f == 1:
            d = yield data.load(data_order)
            require(d == 42, "MP: stale data after flag")
            return d
        return None

    p.add_thread(producer)
    p.add_thread(consumer)
    return p


def load_buffering(order=RLX) -> Program:
    """LB: both loads reading 1 requires a (po ∪ rf) cycle.

    The executor forbids out-of-thin-air by construction (reads only read
    executed writes), so the ``a == b == 1`` outcome must never occur; the
    final check asserts its absence and a hit would be an engine bug.
    """
    p = Program("LB")
    x = p.atomic("X", 0)
    y = p.atomic("Y", 0)

    def left():
        a = yield x.load(order)
        yield y.store(1, order)
        return a

    def right():
        b = yield y.load(order)
        yield x.store(1, order)
        return b

    p.add_thread(left)
    p.add_thread(right)
    p.add_final_check(
        lambda r: require(not (r["left"] == 1 and r["right"] == 1),
                          "LB: out-of-thin-air outcome")
    )
    return p


def iriw(order=RLX) -> Program:
    """IRIW: two readers disagreeing on the order of independent writes.

    Weak under relaxed accesses; forbidden when every access is SC.
    """
    p = Program("IRIW")
    x = p.atomic("X", 0)
    y = p.atomic("Y", 0)

    def w1():
        yield x.store(1, order)

    def w2():
        yield y.store(1, order)

    def r1():
        a = yield x.load(order)
        b = yield y.load(order)
        return (a, b)

    def r2():
        c = yield y.load(order)
        d = yield x.load(order)
        return (c, d)

    p.add_thread(w1)
    p.add_thread(w2)
    p.add_thread(r1)
    p.add_thread(r2)

    def check(r):
        a, b = r["r1"]
        c, d = r["r2"]
        require(not (a == 1 and b == 0 and c == 1 and d == 0),
                "IRIW: readers saw the writes in opposite orders")

    p.add_final_check(check)
    return p


def corr(order=RLX) -> Program:
    """CoRR: same-location read pairs must respect mo (coherence).

    ``a == 2, b == 1`` would violate read-coherence; the engine must never
    produce it under any scheduler.
    """
    p = Program("CoRR")
    x = p.atomic("X", 0)

    def writer():
        yield x.store(1, order)
        yield x.store(2, order)

    def reader():
        a = yield x.load(order)
        b = yield x.load(order)
        require(not (a == 2 and b == 1), "CoRR: coherence violation")
        return (a, b)

    p.add_thread(writer)
    p.add_thread(reader)
    return p


def two_plus_two_w(order=RLX) -> Program:
    """2+2W: both locations ending with value 1 needs mo against po order.

    With append-only modification order the final value at each location is
    whichever store executed last, so the check documents which outcomes
    the substrate can produce (tests assert engine invariants on it).
    """
    p = Program("2+2W")
    x = p.atomic("X", 0)
    y = p.atomic("Y", 0)

    def left():
        yield x.store(1, order)
        yield y.store(2, order)

    def right():
        yield y.store(1, order)
        yield x.store(2, order)

    p.add_thread(left)
    p.add_thread(right)
    return p


ALL_LITMUS = {
    "SB": store_buffering,
    "P1": p1,
    "MP1": mp1,
    "MP2": mp2,
    "MP": message_passing,
    "LB": load_buffering,
    "IRIW": iriw,
    "CoRR": corr,
    "2+2W": two_plus_two_w,
}
