"""Behavioural coverage: how many distinct executions a campaign sampled.

Section 5.4's analysis bounds the *size of the set of executions PCTWM
samples from* by ``C(k_com, d) · d! · h^d``.  This module makes that
measurable: an execution's *signature* is its reads-from function keyed by
stable event identities ``(tid, po_index)``, so two runs have the same
signature iff every read observed the same write.  Counting distinct
signatures over a campaign shows how concentrated each algorithm's
sampling is — PCTWM's restriction is the mechanism behind its hit-rate
guarantee.

Two coarser lenses support coverage *steering* (the fuzz driver's
adaptive (d, h) search):

* :func:`weak_read_count` — how many reads observed a stale write, i.e.
  one that had already been mo-overwritten by the time the read
  executed.  Nonzero means the run exhibited genuinely weak behaviour;
  an interleaving-only (SC) explanation would not produce it.
* :func:`behaviour_shape` — the cross-thread communication topology:
  which (writer thread → reader thread, location) reads-from edges
  occurred, plus each location's modification order as a tuple of
  writer thread ids.  Far coarser than a signature, so distinct-shape
  counts measure *structural* diversity rather than value choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Optional, Set, Tuple

from ..memory.execution import ExecutionGraph
from ..memory.model import resolve_model
from ..runtime.program import Program
from ..runtime.scheduler import Scheduler
from .seeding import derive_trial_seed

#: Stable event identity across runs with identical control flow.
EventKey = Tuple[int, int]
Signature = FrozenSet[Tuple[EventKey, EventKey]]

#: (source tid, reader tid, location) — source ``-1`` is the init write.
RfEdge = Tuple[int, int, str]
Shape = Tuple[FrozenSet[RfEdge], Tuple[Tuple[str, Tuple[int, ...]], ...]]

INIT_KEY = (-1, -1)


def execution_signature(graph: ExecutionGraph) -> Signature:
    """The run's reads-from function over stable event identities."""
    pairs = set()
    for event in graph.events:
        if event.reads_from is None:
            continue
        source = event.reads_from
        source_key = INIT_KEY if source.is_init \
            else (source.tid, source.po_index)
        pairs.add(((event.tid, event.po_index), source_key))
    return frozenset(pairs)


def weak_read_count(graph: ExecutionGraph) -> int:
    """Reads that observed a write already mo-overwritten when they ran.

    Walks ``graph.events`` in execution order, tracking the mo-maximal
    write each location had *executed so far*; a read whose source sits
    strictly below that frontier saw a stale value.  Reads from the
    initialization write only count once a newer write has executed —
    so an SC execution always scores zero.
    """
    latest: Dict[str, int] = {}
    count = 0
    for event in graph.events:
        if event.reads_from is not None:
            source = event.reads_from
            if latest.get(event.loc, 0) > source.mo_index:
                count += 1
        if event.is_write and not event.is_init:
            if event.mo_index > latest.get(event.loc, 0):
                latest[event.loc] = event.mo_index
    return count


def behaviour_shape(graph: ExecutionGraph) -> Shape:
    """The run's rf/mo communication topology (hashable, value-blind).

    ``(rf_edges, mo_orders)`` where ``rf_edges`` is the set of
    cross-identity ``(source_tid, reader_tid, loc)`` reads-from edges
    (init writes as tid ``-1``) and ``mo_orders`` lists each location's
    modification order as the tuple of writing thread ids (init writes
    omitted), sorted by location.
    """
    rf_edges = set()
    for event in graph.events:
        if event.reads_from is None:
            continue
        source = event.reads_from
        source_tid = -1 if source.is_init else source.tid
        rf_edges.add((source_tid, event.tid, event.loc))
    mo_orders = tuple(sorted(
        (loc, tuple(w.tid for w in writes if not w.is_init))
        for loc, writes in graph.writes_by_loc.items()
    ))
    return (frozenset(rf_edges), mo_orders)


@dataclass
class CoverageReport:
    """Distinct behaviours observed over a campaign."""

    program: str
    scheduler: str
    trials: int
    distinct: int
    bug_signatures: int
    #: Distinct :func:`behaviour_shape` values (structural diversity).
    distinct_shapes: int = 0
    #: Total stale reads observed across all trials.
    weak_reads: int = 0
    #: Trials with at least one stale read (a genuinely weak execution).
    weak_trials: int = 0

    @property
    def concentration(self) -> float:
        """Average trials spent per distinct behaviour (higher = more
        focused sampling)."""
        return self.trials / self.distinct if self.distinct else 0.0


def coverage_campaign(program_factory: Callable[[], Program],
                      scheduler_factory: Callable[[int], Scheduler],
                      trials: int = 100, base_seed: int = 0,
                      max_steps: int = 20000,
                      model: str = "c11",
                      spin_threshold: int = 8,
                      seen: Optional[Set[Signature]] = None,
                      shapes: Optional[Set[Shape]] = None,
                      ) -> CoverageReport:
    """Run ``trials`` tests and count distinct execution signatures.

    ``seen``/``shapes`` may be passed in to accumulate across calls (the
    fuzz driver folds many probe batches into one coverage picture);
    they are mutated in place.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    backend = resolve_model(model)
    seen = seen if seen is not None else set()
    shapes = shapes if shapes is not None else set()
    buggy: Set[Signature] = set()
    weak_reads = 0
    weak_trials = 0
    name = ""
    sched_name = ""
    for i in range(trials):
        scheduler = scheduler_factory(derive_trial_seed(base_seed, i))
        sched_name = scheduler.name
        result = backend.run_once(program_factory(), scheduler,
                                  max_steps=max_steps,
                                  spin_threshold=spin_threshold)
        name = result.program
        signature = execution_signature(result.graph)
        seen.add(signature)
        shapes.add(behaviour_shape(result.graph))
        stale = weak_read_count(result.graph)
        weak_reads += stale
        weak_trials += bool(stale)
        if result.bug_found:
            buggy.add(signature)
    return CoverageReport(
        program=name,
        scheduler=sched_name,
        trials=trials,
        distinct=len(seen),
        bug_signatures=len(buggy),
        distinct_shapes=len(shapes),
        weak_reads=weak_reads,
        weak_trials=weak_trials,
    )
