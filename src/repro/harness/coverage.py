"""Behavioural coverage: how many distinct executions a campaign sampled.

Section 5.4's analysis bounds the *size of the set of executions PCTWM
samples from* by ``C(k_com, d) · d! · h^d``.  This module makes that
measurable: an execution's *signature* is its reads-from function keyed by
stable event identities ``(tid, po_index)``, so two runs have the same
signature iff every read observed the same write.  Counting distinct
signatures over a campaign shows how concentrated each algorithm's
sampling is — PCTWM's restriction is the mechanism behind its hit-rate
guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Set, Tuple

from ..memory.execution import ExecutionGraph
from ..runtime.executor import run_once
from ..runtime.program import Program
from ..runtime.scheduler import Scheduler
from .seeding import derive_trial_seed

#: Stable event identity across runs with identical control flow.
EventKey = Tuple[int, int]
Signature = FrozenSet[Tuple[EventKey, EventKey]]

INIT_KEY = (-1, -1)


def execution_signature(graph: ExecutionGraph) -> Signature:
    """The run's reads-from function over stable event identities."""
    pairs = set()
    for event in graph.events:
        if event.reads_from is None:
            continue
        source = event.reads_from
        source_key = INIT_KEY if source.is_init \
            else (source.tid, source.po_index)
        pairs.add(((event.tid, event.po_index), source_key))
    return frozenset(pairs)


@dataclass
class CoverageReport:
    """Distinct behaviours observed over a campaign."""

    program: str
    scheduler: str
    trials: int
    distinct: int
    bug_signatures: int

    @property
    def concentration(self) -> float:
        """Average trials spent per distinct behaviour (higher = more
        focused sampling)."""
        return self.trials / self.distinct if self.distinct else 0.0


def coverage_campaign(program_factory: Callable[[], Program],
                      scheduler_factory: Callable[[int], Scheduler],
                      trials: int = 100, base_seed: int = 0,
                      max_steps: int = 20000) -> CoverageReport:
    """Run ``trials`` tests and count distinct execution signatures."""
    if trials < 1:
        raise ValueError("trials must be >= 1")
    seen: Set[Signature] = set()
    buggy: Set[Signature] = set()
    name = ""
    sched_name = ""
    for i in range(trials):
        scheduler = scheduler_factory(derive_trial_seed(base_seed, i))
        sched_name = scheduler.name
        result = run_once(program_factory(), scheduler, max_steps=max_steps)
        name = result.program
        signature = execution_signature(result.graph)
        seen.add(signature)
        if result.bug_found:
            buggy.add(signature)
    return CoverageReport(
        program=name,
        scheduler=sched_name,
        trials=trials,
        distinct=len(seen),
        bug_signatures=len(buggy),
    )
