"""Replayable bug artifacts: a found failure that survives the process.

A campaign trial that finds something — a bug, an engine fault, a
wall-clock timeout, a consistency-sanitizer violation — used to die with
the worker process that ran it.  An *artifact* captures everything needed
to re-execute that exact trial anywhere:

* the recorded decision trace (which thread stepped, which write each
  read observed),
* the program and scheduler as registry *specs* (kind/name/params), so a
  fresh process can rebuild them without pickles or closures,
* the trial seed, step budget, spin threshold, and a config fingerprint
  that detects mismatched replays,
* the structured failure diagnostics (per-thread pending op, last-k
  events, thread-local views) collected at failure time.

Artifacts are JSON files written by the worker that observed the failure
(inside :class:`repro.harness.campaign.TrialRunner`), so they survive the
``ProcessPoolExecutor`` boundary, SIGKILL, and checkpoint/resume.  Under
the default ``record_mode="on_failure"`` the decision trace comes from a
deterministic re-execution of the failing trial (byte-identical to what
always-on recording captures, without taxing clean trials); all other
fields describe the original run.  The ``repro replay <artifact>`` CLI
re-executes one deterministically and verifies the outcome matches the
recording.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, List, Optional

from ..replay.trace import Trace
from ..runtime.executor import RunResult, run_once

__all__ = [
    "ARTIFACT_VERSION",
    "BugArtifact",
    "ReplayReport",
    "classify_outcome",
    "config_fingerprint",
    "load_artifact",
    "program_spec_dict",
    "replay_artifact",
    "scheduler_spec_dict",
]

ARTIFACT_VERSION = 1

#: Outcomes worth an artifact (``limit_exceeded`` alone is routine).
ARTIFACT_OUTCOMES = ("bug", "error", "timeout", "inconsistent")


def classify_outcome(run: Optional[RunResult],
                     error: Optional[str]) -> Optional[str]:
    """The artifact outcome kind of a finished trial, or None.

    An inconsistent graph outranks everything else: if the engine built a
    graph violating the consistency axioms, any bug/timeout verdict from
    that run is suspect.
    """
    if error is not None:
        return "error"
    if run is None:
        return None
    if run.violations:
        return "inconsistent"
    if run.bug_found:
        return "bug"
    if run.timed_out:
        return "timeout"
    return None


def program_spec_dict(factory: Any) -> Optional[dict]:
    """The registry spec of a program factory, when it carries one.

    :class:`repro.workloads.ProgramSpec` instances (the picklable
    factories parallel campaigns use) expose ``kind``/``name``/``params``;
    plain closures do not, and their trials produce spec-less artifacts
    that only replay with a caller-supplied factory.
    """
    kind = getattr(factory, "kind", None)
    name = getattr(factory, "name", None)
    if isinstance(kind, str) and isinstance(name, str):
        return {"kind": kind, "name": name,
                "params": dict(getattr(factory, "params", {}) or {})}
    return None


def scheduler_spec_dict(factory: Any) -> Optional[dict]:
    """The registry spec of a scheduler factory, when it carries one."""
    name = getattr(factory, "name", None)
    params = getattr(factory, "params", None)
    if isinstance(name, str) and params is not None:
        return {"name": name, "params": dict(params)}
    return None


def config_fingerprint(obj: dict) -> str:
    """Short stable hash over a config dict (canonical JSON, sha256)."""
    canonical = json.dumps(obj, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass
class BugArtifact:
    """A self-contained, replayable record of one failed trial."""

    outcome: str                  # "bug" | "error" | "timeout" | "inconsistent"
    program: str                  # display names, for humans
    scheduler: str
    trial_index: int
    trial_seed: int
    base_seed: int
    max_steps: int
    spin_threshold: int
    trace: Trace
    #: Memory-model backend the trial executed under ("c11" | "tso");
    #: replay re-executes on the same backend.
    model: str = "c11"
    steps: int = 0
    bug_kind: Optional[str] = None
    bug_message: Optional[str] = None
    error: Optional[str] = None
    violations: List[str] = field(default_factory=list)
    diagnostics: Optional[dict] = None
    #: Registry specs; None when the campaign ran on closures.
    program_spec: Optional[dict] = None
    scheduler_spec: Optional[dict] = None
    fingerprint: str = ""
    version: int = ARTIFACT_VERSION

    def __post_init__(self) -> None:
        if not self.fingerprint:
            self.fingerprint = config_fingerprint({
                "program_spec": self.program_spec,
                "scheduler_spec": self.scheduler_spec,
                "base_seed": self.base_seed,
                "trial_index": self.trial_index,
                "trial_seed": self.trial_seed,
                "max_steps": self.max_steps,
                "spin_threshold": self.spin_threshold,
                "model": self.model,
            })

    # -- serialization -------------------------------------------------------

    def to_json(self) -> str:
        obj = {
            "kind": "bug-artifact",
            "version": self.version,
            "outcome": self.outcome,
            "program": self.program,
            "scheduler": self.scheduler,
            "trial_index": self.trial_index,
            "trial_seed": self.trial_seed,
            "base_seed": self.base_seed,
            "max_steps": self.max_steps,
            "spin_threshold": self.spin_threshold,
            "model": self.model,
            "steps": self.steps,
            "bug_kind": self.bug_kind,
            "bug_message": self.bug_message,
            "error": self.error,
            "violations": self.violations,
            "diagnostics": self.diagnostics,
            "program_spec": self.program_spec,
            "scheduler_spec": self.scheduler_spec,
            "fingerprint": self.fingerprint,
            "trace": self.trace.to_obj(),
        }
        return json.dumps(obj, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "BugArtifact":
        raw = json.loads(text)
        if raw.get("kind") != "bug-artifact":
            raise ValueError("not a bug artifact (missing kind marker)")
        return cls(
            outcome=raw["outcome"],
            program=raw.get("program", ""),
            scheduler=raw.get("scheduler", ""),
            trial_index=int(raw["trial_index"]),
            trial_seed=int(raw["trial_seed"]),
            base_seed=int(raw.get("base_seed", 0)),
            max_steps=int(raw.get("max_steps", 20000)),
            spin_threshold=int(raw.get("spin_threshold", 8)),
            trace=Trace.from_obj(raw["trace"]),
            model=raw.get("model", "c11"),
            steps=int(raw.get("steps", 0)),
            bug_kind=raw.get("bug_kind"),
            bug_message=raw.get("bug_message"),
            error=raw.get("error"),
            violations=list(raw.get("violations") or []),
            diagnostics=raw.get("diagnostics"),
            program_spec=raw.get("program_spec"),
            scheduler_spec=raw.get("scheduler_spec"),
            fingerprint=raw.get("fingerprint", ""),
            version=int(raw.get("version", ARTIFACT_VERSION)),
        )

    def save(self, path: str) -> str:
        with open(path, "w") as fh:
            fh.write(self.to_json())
        return path


def load_artifact(path: str) -> BugArtifact:
    with open(path, "r") as fh:
        return BugArtifact.from_json(fh.read())


def artifact_path(directory: str, trial_index: int) -> str:
    return os.path.join(directory, f"trial-{trial_index:06d}.json")


# -- replay ----------------------------------------------------------------------


@dataclass
class ReplayReport:
    """Outcome of re-executing an artifact, compared to the recording."""

    artifact: BugArtifact
    outcome: str                       # outcome kind of the *replay*
    matched: bool
    result: Optional[RunResult] = None
    error: Optional[str] = None
    mismatch: Optional[str] = None     # why matched is False
    minimized: Optional[Trace] = None

    def render(self) -> str:
        lines = [
            f"artifact: {self.artifact.outcome} in "
            f"{self.artifact.program} / {self.artifact.scheduler} "
            f"(model {self.artifact.model}, "
            f"trial {self.artifact.trial_index}, "
            f"seed {self.artifact.trial_seed}, "
            f"fingerprint {self.artifact.fingerprint})",
            f"replay outcome: {self.outcome} -> "
            + ("MATCH" if self.matched else f"MISMATCH ({self.mismatch})"),
        ]
        if self.artifact.bug_message:
            lines.append(f"recorded bug: [{self.artifact.bug_kind}] "
                         f"{self.artifact.bug_message}")
        if self.error:
            lines.append(f"replay error: {self.error}")
        for violation in self.artifact.violations:
            lines.append(f"recorded violation: {violation}")
        if self.minimized is not None:
            lines.append(
                f"minimized trace: {len(self.artifact.trace)} -> "
                f"{len(self.minimized)} decisions"
            )
        return "\n".join(lines)


def _build_program_factory(artifact: BugArtifact, program_factory=None):
    if program_factory is not None:
        return program_factory
    if artifact.program_spec is None:
        raise ValueError(
            "artifact carries no program spec (the campaign ran on a "
            "closure); pass program_factory= explicitly"
        )
    from ..workloads.registry import ProgramSpec  # local: avoid cycle

    spec = artifact.program_spec
    return ProgramSpec(spec["name"], spec.get("kind", "benchmark"),
                       spec.get("params", {}))


def replay_artifact(artifact: BugArtifact, program_factory=None,
                    minimize: bool = False) -> ReplayReport:
    """Deterministically re-execute an artifact and verify the outcome.

    The replay drives the recorded decision trace through a fresh
    executor.  For ``timeout`` artifacts the step budget is pinned to the
    recorded step count — wall clocks do not replay, but the decision
    prefix does, so the replay stops at the same boundary (reported as
    ``limit_exceeded``) and is compared on steps executed.  With
    ``minimize=True`` a matching ``bug`` artifact's trace is additionally
    shrunk via :func:`repro.replay.minimize.minimize_trace`.
    """
    from ..memory.model import resolve_model
    from ..replay.recording import ReplayScheduler
    from .campaign import summarize_exception

    factory = _build_program_factory(artifact, program_factory)
    model = resolve_model(artifact.model)
    max_steps = artifact.max_steps
    if artifact.outcome == "timeout" and artifact.steps:
        max_steps = artifact.steps
    scheduler = ReplayScheduler(artifact.trace)
    result: Optional[RunResult] = None
    error: Optional[str] = None
    try:
        result = model.run_once(
            factory(), scheduler, max_steps=max_steps,
            spin_threshold=artifact.spin_threshold,
            sanitize=artifact.outcome == "inconsistent")
    except Exception as exc:
        error = summarize_exception(exc)
    outcome = classify_outcome(result, error)
    if outcome is None and result is not None and result.limit_exceeded:
        outcome = "limit"
    outcome = outcome or "clean"

    matched, mismatch = _verify(artifact, outcome, result, error, scheduler)
    report = ReplayReport(artifact=artifact, outcome=outcome,
                          matched=matched, result=result, error=error,
                          mismatch=mismatch)
    if minimize and matched and artifact.outcome == "bug":
        from ..replay.minimize import minimize_trace

        report.minimized = minimize_trace(factory, artifact.trace,
                                          max_steps=artifact.max_steps,
                                          model=artifact.model)
    return report


def _verify(artifact: BugArtifact, outcome: str,
            result: Optional[RunResult], error: Optional[str],
            scheduler) -> tuple:
    """Compare a replay against the recording; ``(matched, why_not)``."""
    if artifact.outcome == "bug":
        if outcome != "bug":
            return False, f"recorded a bug, replay was {outcome}"
        if (result.bug_kind, result.bug_message) != \
                (artifact.bug_kind, artifact.bug_message):
            return False, (
                f"bug differs: recorded [{artifact.bug_kind}] "
                f"{artifact.bug_message!r}, replayed [{result.bug_kind}] "
                f"{result.bug_message!r}"
            )
        if not scheduler.fully_consumed:
            return False, (f"{scheduler.remaining} recorded decisions "
                           "left unconsumed")
        return True, None
    if artifact.outcome == "error":
        if outcome != "error":
            return False, f"recorded an error, replay was {outcome}"
        if error != artifact.error:
            return False, (f"error differs: recorded {artifact.error!r}, "
                           f"replayed {error!r}")
        return True, None
    if artifact.outcome == "timeout":
        # Wall clocks don't replay; the decision prefix does.  The replay
        # ran with max_steps pinned to the recorded step count, so a
        # faithful replay stops at the same step on the step budget.
        if result is None:
            return False, f"recorded a timeout, replay was {outcome}"
        if artifact.steps and result.steps != artifact.steps:
            return False, (f"steps differ: recorded {artifact.steps}, "
                           f"replayed {result.steps}")
        return True, None
    if artifact.outcome == "inconsistent":
        if result is None or not result.violations:
            return False, ("recorded axiom violations did not reproduce "
                           "(engine fixed, or fault was environmental)")
        return True, None
    return False, f"unknown recorded outcome {artifact.outcome!r}"
