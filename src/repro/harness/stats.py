"""Small statistics helpers for campaign reporting."""

from __future__ import annotations

import math
from typing import Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation (the paper reports RSD over 10 runs)."""
    if not values:
        raise ValueError("stdev of empty sequence")
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def relative_stdev_pct(values: Sequence[float]) -> float:
    """Relative standard deviation in percent, as in Table 4."""
    mu = mean(values)
    if mu == 0:
        return 0.0
    return 100.0 * stdev(values) / abs(mu)


def wilson_interval(hits: int, trials: int,
                    z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval for a hit rate — used by tests to compare
    empirical rates against theoretical bounds without flakiness."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= hits <= trials:
        raise ValueError("hits out of range")
    phat = hits / trials
    denom = 1 + z * z / trials
    center = (phat + z * z / (2 * trials)) / denom
    margin = (
        z
        * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials ** 2))
        / denom
    )
    return (max(0.0, center - margin), min(1.0, center + margin))


def two_proportion_z(hits_a: int, trials_a: int,
                     hits_b: int, trials_b: int) -> float:
    """Two-proportion z statistic for comparing hit rates.

    Positive when A's rate exceeds B's.  Used to state Figure 5 claims
    ("PCTWM beats C11Tester on benchmark X") with statistical backing
    rather than raw-point comparison.
    """
    if trials_a <= 0 or trials_b <= 0:
        raise ValueError("trials must be positive")
    if not (0 <= hits_a <= trials_a and 0 <= hits_b <= trials_b):
        raise ValueError("hits out of range")
    pa, pb = hits_a / trials_a, hits_b / trials_b
    pooled = (hits_a + hits_b) / (trials_a + trials_b)
    if pooled in (0.0, 1.0):
        return 0.0
    se = math.sqrt(pooled * (1 - pooled) * (1 / trials_a + 1 / trials_b))
    return (pa - pb) / se


def significantly_greater(hits_a: int, trials_a: int, hits_b: int,
                          trials_b: int, z_threshold: float = 1.645) -> bool:
    """One-sided test at ~95%: is A's hit rate significantly above B's?"""
    return two_proportion_z(hits_a, trials_a, hits_b, trials_b) \
        > z_threshold
