"""Deterministic per-trial seed derivation for campaigns.

Campaigns used to seed trial ``i`` with ``base_seed + i``, which has two
problems:

* campaigns with nearby base seeds rerun overlapping trial streams
  (``base_seed=0`` trials 1..N-1 are ``base_seed=1`` trials 0..N-2), so
  "independent" experiment cells share most of their randomness;
* a parallel campaign would have to thread the additive index through
  every sharding scheme to stay reproducible.

``derive_trial_seed`` instead splitmixes ``(base_seed, trial_index)``
through BLAKE2b, giving every (campaign, trial) pair its own
statistically independent 64-bit seed.  The derivation depends only on
the two integers — not on process identity, hash randomization
(``PYTHONHASHSEED``), worker count, or chunking — so serial and parallel
campaigns over the same base seed run bit-identical trials.
"""

from __future__ import annotations

import hashlib

#: Domain-separation tag so other subsystems can derive non-colliding
#: seed streams from the same base seed if they ever need to.
_DOMAIN = b"repro.campaign.trial"

#: Separate domain for the run-time reservoir sample, so sample
#: membership is uncorrelated with the trial seeds themselves.
_SAMPLE_DOMAIN = b"repro.campaign.sample"


def derive_trial_seed(base_seed: int, trial_index: int) -> int:
    """The seed of trial ``trial_index`` in a campaign over ``base_seed``.

    Deterministic, stable across processes and platforms, and injective
    in practice: distinct ``(base_seed, trial_index)`` pairs map to
    distinct 64-bit outputs with overwhelming probability.
    """
    if trial_index < 0:
        raise ValueError("trial_index must be >= 0")
    payload = b"%s:%d:%d" % (_DOMAIN, base_seed, trial_index)
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big")


def sample_rank(trial_index: int) -> int:
    """Deterministic 64-bit reservoir rank of a trial index.

    Keeping the bottom-k trials by this rank yields a uniform sample of
    any trial population that is identical no matter the order trials
    are folded in — the property that keeps serial, sharded, and resumed
    campaigns' bounded ``run_times_s`` samples bit-identical.
    """
    if trial_index < 0:
        raise ValueError("trial_index must be >= 0")
    payload = b"%s:%d" % (_SAMPLE_DOMAIN, trial_index)
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big")
