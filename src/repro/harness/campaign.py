"""Test campaigns: repeated randomized runs with hit-rate accounting.

A *campaign* runs a program factory under a scheduler factory for N trials
(the paper uses 1000 trials for Tables 2-3 and 500 for Figure 6) and
reports the bug hitting rate plus timing, mirroring the artifact's metrics
(Bug Hitting Rate %, Average Running time, Throughput).

Trial ``i`` is seeded by ``derive_trial_seed(base_seed, i)`` — a
splitmix-style derivation that makes trial streams independent across
nearby base seeds and identical between the serial path here and the
sharded parallel path in :mod:`repro.harness.parallel`.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..core.c11tester import C11TesterScheduler
from ..core.naive import NaiveRandomScheduler
from ..core.pct import PCTScheduler
from ..core.pctwm import PCTWMScheduler
from ..runtime.executor import RunResult, run_once
from ..runtime.program import Program
from ..runtime.scheduler import Scheduler
from .seeding import derive_trial_seed

ProgramFactory = Callable[[], Program]
SchedulerFactory = Callable[[int], Scheduler]

#: How many error summaries a campaign keeps verbatim; further errors are
#: still counted but not sampled (long campaigns must stay bounded).
ERROR_SAMPLE_LIMIT = 8

#: ``--sanitize sampled`` checks every Nth trial (indices 0, N, 2N, ...),
#: bounding the sanitizer's overhead while still auditing the campaign.
SANITIZE_SAMPLE_STRIDE = 10

#: Valid values for the campaign ``sanitize`` knob.
SANITIZE_MODES = ("off", "sampled", "all")


def sanitize_this_trial(sanitize: str, index: int) -> bool:
    """Whether trial ``index`` runs under the consistency sanitizer.

    Sampling is by trial *index*, not by a counter, so serial and sharded
    parallel campaigns sanitize exactly the same trials.
    """
    if sanitize == "all":
        return True
    if sanitize == "sampled":
        return index % SANITIZE_SAMPLE_STRIDE == 0
    return False


@dataclass
class CampaignResult:
    """Aggregate outcome of N randomized test runs."""

    program: str
    scheduler: str
    trials: int
    hits: int = 0
    inconclusive: int = 0
    total_steps: int = 0
    total_events: int = 0
    elapsed_s: float = 0.0
    #: Per-run elapsed times, for Table 4's RSD column.
    run_times_s: List[float] = field(default_factory=list)
    #: Per-run application-defined operation counts (Silo throughput).
    operations: int = 0
    #: Worker processes used (1 = serial execution).
    jobs: int = 1
    #: Wall time of each shard, in shard (= trial) order; empty when
    #: the campaign ran serially.
    shard_times_s: List[float] = field(default_factory=list)
    #: Trials whose workload/scheduler raised an unexpected exception.
    #: These are contained faults, not bugs: the campaign keeps going.
    errors: int = 0
    #: Trials that exhausted their per-trial wall-clock budget.
    timeouts: int = 0
    #: Up to :data:`ERROR_SAMPLE_LIMIT` verbatim error summaries, in
    #: trial order, for post-mortem triage.
    error_samples: List[str] = field(default_factory=list)
    #: Trials actually folded into the aggregate.  Equals ``trials``
    #: unless the campaign was interrupted (SIGINT) before finishing.
    completed: int = 0
    #: True when the campaign stopped early on operator interrupt; the
    #: aggregates then cover only ``completed`` trials.
    interrupted: bool = False
    #: Trials restored from a checkpoint journal rather than re-run.
    resumed_trials: int = 0
    #: Trials whose execution graph violated the C11 consistency axioms
    #: (only counted when the sanitizer ran on that trial).  A nonzero
    #: count means the *engine* is broken — the run's verdicts are suspect.
    inconsistent: int = 0
    #: Up to :data:`ERROR_SAMPLE_LIMIT` verbatim axiom-violation
    #: summaries, in trial order.
    violation_samples: List[str] = field(default_factory=list)
    #: Paths of bug artifacts written during the campaign, trial order.
    artifacts: List[str] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        """Bug hitting rate in percent (the paper's headline metric)."""
        return 100.0 * self.hits / self.trials if self.trials else 0.0

    @property
    def faults(self) -> int:
        """Contained faults: errored plus timed-out trials."""
        return self.errors + self.timeouts

    @property
    def avg_time_ms(self) -> float:
        return 1000.0 * self.elapsed_s / self.trials if self.trials else 0.0

    @property
    def ops_per_second(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.operations / self.elapsed_s

    def __str__(self) -> str:  # pragma: no cover - reporting aid
        text = (
            f"{self.program} / {self.scheduler}: "
            f"{self.hit_rate:.1f}% over {self.trials} runs "
            f"({self.avg_time_ms:.2f} ms/run)"
        )
        if self.errors or self.timeouts:
            text += f" [{self.errors} errors, {self.timeouts} timeouts]"
        if self.interrupted:
            text += f" [interrupted at {self.completed}/{self.trials}]"
        return text


@dataclass
class TrialRecord:
    """Outcome of a single campaign trial, in aggregation-ready form.

    This is what worker processes ship back to the parent: small, picklable,
    and ordered by ``index`` so shard merges are deterministic.
    """

    index: int
    bug_found: bool
    limit_exceeded: bool
    steps: int
    k: int
    elapsed_s: float
    operations: int = 0
    #: True when the trial exhausted its wall-clock budget.
    timed_out: bool = False
    #: ``"ExcType: message @ file:line"`` when the trial raised instead of
    #: completing; ``None`` for a clean run.  Errored trials report zero
    #: steps/events and never count as bugs.
    error: Optional[str] = None
    #: True when the sanitizer found the trial's graph axiom-inconsistent.
    inconsistent: bool = False
    #: The axiom violations behind ``inconsistent`` (strings, bounded).
    violations: List[str] = field(default_factory=list)
    #: Path of the bug artifact written for this trial, if any.
    artifact: Optional[str] = None


def summarize_exception(exc: BaseException) -> str:
    """One-line fault summary: exception type, message, innermost frame."""
    site = ""
    tb = exc.__traceback__
    while tb is not None and tb.tb_next is not None:
        tb = tb.tb_next
    if tb is not None:
        filename = os.path.basename(tb.tb_frame.f_code.co_filename)
        site = f" @ {filename}:{tb.tb_lineno}"
    message = str(exc)
    if len(message) > 200:
        message = message[:197] + "..."
    return f"{type(exc).__name__}: {message}{site}"


def run_trial(program_factory: ProgramFactory,
              scheduler_factory: SchedulerFactory,
              base_seed: int, index: int, max_steps: int = 20000,
              count_operations: Optional[Callable[[RunResult], int]] = None,
              trial_timeout_s: Optional[float] = None,
              sanitize: str = "off",
              artifact_dir: Optional[str] = None,
              spin_threshold: int = 8,
              ) -> TrialRecord:
    """Run campaign trial ``index`` — the unit shared by serial and
    parallel campaigns, so both execute bit-identical work.

    Faults are *contained*: any exception escaping the workload, the
    scheduler, or the engine (``ReproError``, ``ProgramDefinitionError``,
    arbitrary workload crashes) becomes a :class:`TrialRecord` with
    ``error`` set instead of aborting the campaign.  ``KeyboardInterrupt``
    and ``SystemExit`` still propagate — interrupting a campaign is an
    operator action, not a trial fault.

    With ``sanitize`` on (``"all"``, or ``"sampled"`` for every
    :data:`SANITIZE_SAMPLE_STRIDE`-th trial) the run additionally audits
    its execution graph against the C11 consistency axioms; violations
    mark the record ``inconsistent`` without aborting anything.  With
    ``artifact_dir`` set, the trial records its decision trace and any
    bug/error/timeout/inconsistent outcome is serialized as a replayable
    JSON artifact in that directory (written here, in the worker, so it
    survives the process boundary).

    Timing covers scheduler construction *and* program construction plus
    the run itself, so per-trial cost comparisons between schedulers and
    workloads are symmetric.
    """
    trial_seed = derive_trial_seed(base_seed, index)
    recorder = None
    run: Optional[RunResult] = None
    error: Optional[str] = None
    operations = 0
    t0 = time.perf_counter()
    try:
        scheduler = scheduler_factory(trial_seed)
        if artifact_dir is not None:
            from ..replay.recording import RecordingScheduler

            scheduler = recorder = RecordingScheduler(scheduler)
        run = run_once(program_factory(), scheduler, max_steps=max_steps,
                       keep_graph=False, wall_timeout_s=trial_timeout_s,
                       spin_threshold=spin_threshold,
                       sanitize=sanitize_this_trial(sanitize, index))
        operations = count_operations(run) if count_operations else 0
    except Exception as exc:
        error = summarize_exception(exc)
        run = None
    elapsed = time.perf_counter() - t0
    if error is not None:
        record = TrialRecord(
            index=index,
            bug_found=False,
            limit_exceeded=False,
            steps=0,
            k=0,
            elapsed_s=elapsed,
            error=error,
        )
    else:
        record = TrialRecord(
            index=index,
            bug_found=run.bug_found,
            limit_exceeded=run.limit_exceeded,
            steps=run.steps,
            k=run.k,
            elapsed_s=elapsed,
            operations=operations,
            timed_out=run.timed_out,
            inconsistent=run.inconsistent,
            violations=list(run.violations),
        )
    if recorder is not None:
        # Artifact writing is best-effort and outside the timed region:
        # a full disk or unwritable directory must not fail the trial.
        try:
            record.artifact = _write_artifact(
                artifact_dir, program_factory, scheduler_factory,
                recorder, run, error,
                base_seed=base_seed, index=index, trial_seed=trial_seed,
                max_steps=max_steps, spin_threshold=spin_threshold,
            )
        except Exception as exc:  # pragma: no cover - defensive
            print(f"warning: trial {index}: could not write artifact: "
                  f"{summarize_exception(exc)}", file=sys.stderr)
    return record


def _write_artifact(artifact_dir: str, program_factory: ProgramFactory,
                    scheduler_factory: SchedulerFactory,
                    recorder, run: Optional[RunResult],
                    error: Optional[str], *, base_seed: int, index: int,
                    trial_seed: int, max_steps: int,
                    spin_threshold: int) -> Optional[str]:
    """Serialize a failed trial as a replayable artifact; None if clean."""
    from .artifact import (BugArtifact, artifact_path, classify_outcome,
                           program_spec_dict, scheduler_spec_dict)

    outcome = classify_outcome(run, error)
    if outcome is None:
        return None
    trace = recorder.trace
    trace.seed = trial_seed
    trace.spin_threshold = spin_threshold
    artifact = BugArtifact(
        outcome=outcome,
        program=trace.program or getattr(program_factory, "name", ""),
        scheduler=recorder.inner.name,
        trial_index=index,
        trial_seed=trial_seed,
        base_seed=base_seed,
        max_steps=max_steps,
        spin_threshold=spin_threshold,
        trace=trace,
        steps=run.steps if run is not None else 0,
        bug_kind=run.bug_kind if run is not None else None,
        bug_message=run.bug_message if run is not None else None,
        error=error,
        violations=list(run.violations) if run is not None else [],
        diagnostics=run.diagnostics if run is not None else None,
        program_spec=program_spec_dict(program_factory),
        scheduler_spec=scheduler_spec_dict(scheduler_factory),
    )
    os.makedirs(artifact_dir, exist_ok=True)
    return artifact.save(artifact_path(artifact_dir, index))


def fold_trial(result: CampaignResult, record: TrialRecord) -> None:
    """Accumulate one trial into the campaign aggregate (trial order)."""
    result.run_times_s.append(record.elapsed_s)
    result.completed += 1
    if record.artifact:
        result.artifacts.append(record.artifact)
    if record.error is not None:
        result.errors += 1
        if len(result.error_samples) < ERROR_SAMPLE_LIMIT:
            result.error_samples.append(
                f"trial {record.index}: {record.error}")
        return
    if record.inconsistent:
        result.inconsistent += 1
        for violation in record.violations:
            if len(result.violation_samples) >= ERROR_SAMPLE_LIMIT:
                break
            result.violation_samples.append(
                f"trial {record.index}: {violation}")
    if record.bug_found:
        result.hits += 1
    if record.limit_exceeded:
        result.inconclusive += 1
    if record.timed_out:
        result.timeouts += 1
    result.total_steps += record.steps
    result.total_events += record.k
    result.operations += record.operations


def resolve_campaign_names(program_factory: ProgramFactory,
                           scheduler_factory: SchedulerFactory,
                           base_seed: int,
                           scheduler_name: Optional[str]) -> tuple:
    """The (program, scheduler) display names for a campaign result.

    Builds a throwaway probe scheduler only when the caller did not name
    the scheduler — factory specs carry their name statically.  A probe
    that *raises* is contained (the campaign must survive a crashing
    workload to report it as errors), falling back to the factory's own
    name.
    """
    if scheduler_name is None:
        scheduler_name = getattr(scheduler_factory, "scheduler_name", None)
    if scheduler_name is None:
        try:
            scheduler_name = scheduler_factory(
                derive_trial_seed(base_seed, 0)).name
        except Exception:
            scheduler_name = getattr(scheduler_factory, "__name__",
                                     "<scheduler>")
    try:
        program_name = program_factory().name
    except Exception:
        program_name = getattr(program_factory, "name", None) \
            or getattr(program_factory, "__name__", "<program>")
    return program_name, scheduler_name


def run_campaign(program_factory: ProgramFactory,
                 scheduler_factory: SchedulerFactory,
                 trials: int = 100,
                 base_seed: int = 0,
                 max_steps: int = 20000,
                 scheduler_name: Optional[str] = None,
                 count_operations: Optional[Callable[[RunResult], int]] = None,
                 trial_timeout_s: Optional[float] = None,
                 sanitize: str = "off",
                 artifact_dir: Optional[str] = None,
                 spin_threshold: int = 8,
                 ) -> CampaignResult:
    """Run ``trials`` independent randomized tests and aggregate.

    Trials that raise are contained as ``errors``; trials that exhaust
    ``trial_timeout_s`` of wall clock are contained as ``timeouts`` —
    neither aborts the campaign (see :func:`run_trial`).  ``sanitize``
    audits trial graphs against the consistency axioms (``"sampled"``:
    every :data:`SANITIZE_SAMPLE_STRIDE`-th trial; ``"all"``: every
    trial); ``artifact_dir`` makes failing trials emit replayable bug
    artifacts there.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    if sanitize not in SANITIZE_MODES:
        raise ValueError(
            f"sanitize must be one of {SANITIZE_MODES}, got {sanitize!r}")
    program_name, sched_name = resolve_campaign_names(
        program_factory, scheduler_factory, base_seed, scheduler_name)
    result = CampaignResult(
        program=program_name,
        scheduler=sched_name,
        trials=trials,
    )
    start = time.perf_counter()
    for i in range(trials):
        fold_trial(result, run_trial(
            program_factory, scheduler_factory, base_seed, i,
            max_steps=max_steps, count_operations=count_operations,
            trial_timeout_s=trial_timeout_s, sanitize=sanitize,
            artifact_dir=artifact_dir, spin_threshold=spin_threshold,
        ))
    result.elapsed_s = time.perf_counter() - start
    return result


# -- convenience scheduler factories ------------------------------------------


def pctwm_factory(depth: int, k_com: int,
                  history: int = 1) -> SchedulerFactory:
    return lambda seed: PCTWMScheduler(depth, k_com, history, seed=seed)


def pct_factory(depth: int, k_events: int) -> SchedulerFactory:
    return lambda seed: PCTScheduler(depth, k_events, seed=seed)


def c11tester_factory() -> SchedulerFactory:
    return lambda seed: C11TesterScheduler(seed=seed)


def naive_factory() -> SchedulerFactory:
    return lambda seed: NaiveRandomScheduler(seed=seed)
