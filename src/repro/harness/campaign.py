"""Test campaigns: repeated randomized runs with hit-rate accounting.

A *campaign* runs a program factory under a scheduler factory for N trials
(the paper uses 1000 trials for Tables 2-3 and 500 for Figure 6) and
reports the bug hitting rate plus timing, mirroring the artifact's metrics
(Bug Hitting Rate %, Average Running time, Throughput).

Trial ``i`` is seeded by ``derive_trial_seed(base_seed, i)`` — a
splitmix-style derivation that makes trial streams independent across
nearby base seeds and identical between the serial path here and the
sharded parallel path in :mod:`repro.harness.parallel`.

Fast path
    Campaign trials share far more than they differ in: the same program,
    the same scheduler family, the same engine configuration.
    :class:`TrialRunner` exploits that — one warm scheduler instance
    reseeded per trial (registry specs only), one program object
    re-instantiated per run, one pooled :class:`ExecutionState` reset in
    place between trials — and records decision traces *on failure only*
    by deterministically re-executing the failing trial
    (``record_mode="on_failure"``).  Aggregation streams through
    :class:`CampaignAccumulator`, whose fold is order-independent and
    memory-bounded.  All of it is seed-for-seed identical to the
    one-object-web-per-trial slow path; the equivalence suite pins this.
"""

from __future__ import annotations

import gc
import heapq
import math
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..core.c11tester import C11TesterScheduler
from ..core.naive import NaiveRandomScheduler
from ..core.pct import PCTScheduler
from ..core.pctwm import PCTWMScheduler
from ..memory.model import resolve_model
from ..runtime.executor import (ExecutionState, Executor, RunResult,
                                run_once)
from ..runtime.program import Program
from ..runtime.scheduler import Scheduler
from .seeding import derive_trial_seed, sample_rank

ProgramFactory = Callable[[], Program]
SchedulerFactory = Callable[[int], Scheduler]

#: How many error summaries a campaign keeps verbatim; further errors are
#: still counted but not sampled (long campaigns must stay bounded).
ERROR_SAMPLE_LIMIT = 8

#: How many per-trial times ``CampaignResult.run_times_s`` retains.  Up
#: to this many trials the sample is the full population; beyond it, a
#: deterministic uniform reservoir (bottom-k by :func:`sample_rank`).
#: Exact mean/RSD always come from the aggregate sums, never the sample.
RUN_TIME_SAMPLE_LIMIT = 1024

#: ``--sanitize sampled`` checks every Nth trial (indices 0, N, 2N, ...),
#: bounding the sanitizer's overhead while still auditing the campaign.
SANITIZE_SAMPLE_STRIDE = 10

#: Valid values for the campaign ``sanitize`` knob.
SANITIZE_MODES = ("off", "sampled", "all")

#: Valid values for the campaign ``record_mode`` knob (meaningful only
#: with an artifact directory).  ``"on_failure"`` runs trials without the
#: recording wrapper and deterministically re-executes failing trials to
#: capture their traces; ``"always"`` records every trial as it runs.
RECORD_MODES = ("on_failure", "always")

#: With the cyclic collector disabled during a campaign loop, collect
#: manually every this many trials to bound floating garbage.
GC_COLLECT_STRIDE = 512

#: Smallest meaningful per-trial wall-clock budget.  The executor
#: enforces ``trial_timeout_s`` cooperatively, checking the clock once
#: per scheduler step; budgets below one step quantum cannot distinguish
#: a slow trial from any trial at all and just time everything out, so
#: the CLI rejects them (the API keeps accepting any value — tests use
#: 0.0 to force deterministic immediate timeouts).
TRIAL_TIMEOUT_MIN_S = 0.001


def sanitize_this_trial(sanitize: str, index: int) -> bool:
    """Whether trial ``index`` runs under the consistency sanitizer.

    Sampling is by trial *index*, not by a counter, so serial and sharded
    parallel campaigns sanitize exactly the same trials.
    """
    if sanitize == "all":
        return True
    if sanitize == "sampled":
        return index % SANITIZE_SAMPLE_STRIDE == 0
    return False


@dataclass
class CampaignResult:
    """Aggregate outcome of N randomized test runs."""

    program: str
    scheduler: str
    trials: int
    hits: int = 0
    inconclusive: int = 0
    total_steps: int = 0
    total_events: int = 0
    elapsed_s: float = 0.0
    #: Bounded deterministic sample of per-run elapsed times, in trial
    #: order — the full population while ``completed`` stays within
    #: :data:`RUN_TIME_SAMPLE_LIMIT`, a uniform reservoir beyond it.
    #: Exact aggregate statistics live in ``time_sum_s``/``time_sq_sum_s``
    #: (see :attr:`avg_run_time_s` / :attr:`run_time_rsd_pct`).
    run_times_s: List[float] = field(default_factory=list)
    #: Exact sum of per-trial elapsed times over *all* completed trials.
    time_sum_s: float = 0.0
    #: Exact sum of squared per-trial elapsed times (for the RSD).
    time_sq_sum_s: float = 0.0
    #: Per-run application-defined operation counts (Silo throughput).
    operations: int = 0
    #: Worker processes used (1 = serial execution).
    jobs: int = 1
    #: Wall time of each shard, in shard (= trial) order; empty when
    #: the campaign ran serially.
    shard_times_s: List[float] = field(default_factory=list)
    #: Trials whose workload/scheduler raised an unexpected exception.
    #: These are contained faults, not bugs: the campaign keeps going.
    errors: int = 0
    #: Trials that exhausted their per-trial wall-clock budget.
    timeouts: int = 0
    #: Up to :data:`ERROR_SAMPLE_LIMIT` verbatim error summaries, in
    #: trial order, for post-mortem triage.
    error_samples: List[str] = field(default_factory=list)
    #: Trials actually folded into the aggregate.  Equals ``trials``
    #: unless the campaign was interrupted (SIGINT) before finishing.
    completed: int = 0
    #: True when the campaign stopped early on operator interrupt; the
    #: aggregates then cover only ``completed`` trials.
    interrupted: bool = False
    #: Trials restored from a checkpoint journal rather than re-run.
    resumed_trials: int = 0
    #: Trials whose execution graph violated the C11 consistency axioms
    #: (only counted when the sanitizer ran on that trial).  A nonzero
    #: count means the *engine* is broken — the run's verdicts are suspect.
    inconsistent: int = 0
    #: Up to :data:`ERROR_SAMPLE_LIMIT` verbatim axiom-violation
    #: summaries, in trial order.
    violation_samples: List[str] = field(default_factory=list)
    #: Paths of bug artifacts written during the campaign, trial order.
    artifacts: List[str] = field(default_factory=list)
    #: Workers the supervisor watchdog hard-killed for stale heartbeats
    #: (a wedged trial preempted from outside the process).  Infra
    #: metrics, not trial outcomes: the lost shards were retried, so the
    #: deterministic aggregates above are unaffected.
    hang_preemptions: int = 0
    #: Workers the watchdog recycled for exceeding the RSS ceiling.
    rss_recycles: int = 0

    @property
    def hit_rate(self) -> float:
        """Bug hitting rate in percent (the paper's headline metric)."""
        return 100.0 * self.hits / self.trials if self.trials else 0.0

    @property
    def faults(self) -> int:
        """Contained faults: errored plus timed-out trials."""
        return self.errors + self.timeouts

    @property
    def avg_time_ms(self) -> float:
        return 1000.0 * self.elapsed_s / self.trials if self.trials else 0.0

    @property
    def avg_run_time_s(self) -> float:
        """Exact mean per-trial time, independent of the bounded sample."""
        return self.time_sum_s / self.completed if self.completed else 0.0

    @property
    def run_time_rsd_pct(self) -> float:
        """Relative standard deviation of per-trial times, in percent.

        Computed from the exact aggregate sums (population std / mean),
        so it covers every completed trial even when ``run_times_s`` is
        a bounded sample.
        """
        n = self.completed
        if n < 2:
            return 0.0
        mean = self.time_sum_s / n
        if mean <= 0.0:
            return 0.0
        variance = self.time_sq_sum_s / n - mean * mean
        if variance <= 0.0:
            return 0.0
        return 100.0 * math.sqrt(variance) / mean

    @property
    def ops_per_second(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.operations / self.elapsed_s

    def __str__(self) -> str:  # pragma: no cover - reporting aid
        text = (
            f"{self.program} / {self.scheduler}: "
            f"{self.hit_rate:.1f}% over {self.trials} runs "
            f"({self.avg_time_ms:.2f} ms/run)"
        )
        if self.errors or self.timeouts:
            text += f" [{self.errors} errors, {self.timeouts} timeouts]"
        if self.interrupted:
            text += f" [interrupted at {self.completed}/{self.trials}]"
        return text


@dataclass
class TrialRecord:
    """Outcome of a single campaign trial, in aggregation-ready form.

    This is what worker processes ship back to the parent: small, picklable,
    and ordered by ``index`` so shard merges are deterministic.
    """

    index: int
    bug_found: bool
    limit_exceeded: bool
    steps: int
    k: int
    elapsed_s: float
    operations: int = 0
    #: True when the trial exhausted its wall-clock budget.
    timed_out: bool = False
    #: ``"ExcType: message @ file:line"`` when the trial raised instead of
    #: completing; ``None`` for a clean run.  Errored trials report zero
    #: steps/events and never count as bugs.
    error: Optional[str] = None
    #: True when the sanitizer found the trial's graph axiom-inconsistent.
    inconsistent: bool = False
    #: The axiom violations behind ``inconsistent`` (strings, bounded).
    violations: List[str] = field(default_factory=list)
    #: Path of the bug artifact written for this trial, if any.
    artifact: Optional[str] = None


class CampaignAccumulator:
    """Order-independent, memory-bounded streaming fold of trial records.

    Counters and time sums are plain commutative additions; the bounded
    collections are deterministic functions of the record *set*:

    * ``run_times_s`` keeps the :data:`RUN_TIME_SAMPLE_LIMIT` trials with
      the smallest :func:`sample_rank` (a uniform reservoir);
    * error and violation samples keep the :data:`ERROR_SAMPLE_LIMIT`
      lowest-indexed offenders — exactly "the first N in trial order",
      however the records actually arrived.

    Folding the same records in any order therefore finalizes into the
    identical :class:`CampaignResult`, which is what keeps serial,
    sharded-parallel, retried, and checkpoint-resumed campaigns
    bit-identical while shard results stream in as they finish.
    """

    def __init__(self) -> None:
        self.completed = 0
        self.hits = 0
        self.inconclusive = 0
        self.total_steps = 0
        self.total_events = 0
        self.operations = 0
        self.errors = 0
        self.timeouts = 0
        self.inconsistent = 0
        self.time_sum_s = 0.0
        self.time_sq_sum_s = 0.0
        #: Min-heap of ``(-rank, index, elapsed)``: the root is the
        #: largest-rank member, i.e. the one a better candidate evicts.
        self._times: list = []
        #: Min-heap of ``(-index, summary)``: root = highest index.
        self._error_samples: list = []
        #: Min-heap of ``(-index, violation tuple)`` per offending trial.
        self._violation_samples: list = []
        #: ``(index, path)`` pairs; sorted once at finalize.
        self._artifacts: list = []

    def add(self, record: TrialRecord) -> None:
        """Fold one trial record (any order, idempotent per index)."""
        self.completed += 1
        elapsed = record.elapsed_s
        self.time_sum_s += elapsed
        self.time_sq_sum_s += elapsed * elapsed
        entry = (-sample_rank(record.index), record.index, elapsed)
        if len(self._times) < RUN_TIME_SAMPLE_LIMIT:
            heapq.heappush(self._times, entry)
        elif entry > self._times[0]:
            heapq.heapreplace(self._times, entry)
        if record.artifact:
            self._artifacts.append((record.index, record.artifact))
        if record.error is not None:
            self.errors += 1
            sample = (-record.index, f"trial {record.index}: {record.error}")
            if len(self._error_samples) < ERROR_SAMPLE_LIMIT:
                heapq.heappush(self._error_samples, sample)
            elif sample > self._error_samples[0]:
                heapq.heapreplace(self._error_samples, sample)
            return
        if record.inconsistent:
            self.inconsistent += 1
            if record.violations:
                sample = (-record.index, tuple(record.violations))
                if len(self._violation_samples) < ERROR_SAMPLE_LIMIT:
                    heapq.heappush(self._violation_samples, sample)
                elif sample > self._violation_samples[0]:
                    heapq.heapreplace(self._violation_samples, sample)
        if record.bug_found:
            self.hits += 1
        if record.limit_exceeded:
            self.inconclusive += 1
        if record.timed_out:
            self.timeouts += 1
        self.total_steps += record.steps
        self.total_events += record.k
        self.operations += record.operations

    def finalize(self, result: CampaignResult) -> None:
        """Materialize the aggregate into ``result`` (idempotent)."""
        result.completed = self.completed
        result.hits = self.hits
        result.inconclusive = self.inconclusive
        result.total_steps = self.total_steps
        result.total_events = self.total_events
        result.operations = self.operations
        result.errors = self.errors
        result.timeouts = self.timeouts
        result.inconsistent = self.inconsistent
        result.time_sum_s = self.time_sum_s
        result.time_sq_sum_s = self.time_sq_sum_s
        result.run_times_s = [
            elapsed for _, _, elapsed
            in sorted(self._times, key=lambda entry: entry[1])
        ]
        result.error_samples = [
            text for _, text
            in sorted(self._error_samples, key=lambda entry: -entry[0])
        ]
        violations: List[str] = []
        for neg_index, texts in sorted(self._violation_samples,
                                       key=lambda entry: -entry[0]):
            for text in texts:
                if len(violations) >= ERROR_SAMPLE_LIMIT:
                    break
                violations.append(f"trial {-neg_index}: {text}")
        result.violation_samples = violations
        result.artifacts = [path for _, path in sorted(self._artifacts)]


def summarize_exception(exc: BaseException) -> str:
    """One-line fault summary: exception type, message, innermost frame."""
    site = ""
    tb = exc.__traceback__
    while tb is not None and tb.tb_next is not None:
        tb = tb.tb_next
    if tb is not None:
        filename = os.path.basename(tb.tb_frame.f_code.co_filename)
        site = f" @ {filename}:{tb.tb_lineno}"
    message = str(exc)
    if len(message) > 200:
        message = message[:197] + "..."
    return f"{type(exc).__name__}: {message}{site}"


class TrialRunner:
    """Executes campaign trials with warm, reusable per-worker state.

    One runner serves many trials of the same campaign and keeps the
    expensive invariants alive between them:

    * **Scheduler**: when the factory declares ``supports_reuse`` (true
      of registry :class:`~repro.core.factory.SchedulerSpec`), one
      instance is constructed and :meth:`~repro.runtime.scheduler
      .Scheduler.reseed`-ed per trial; otherwise a fresh instance per
      trial, exactly as before.
    * **Program**: factories declaring ``supports_reuse`` (registry
      :class:`~repro.workloads.registry.ProgramSpec`) build the program
      once; ``instantiate()`` re-primes fresh generator threads per run.
    * **Execution state**: the graph and trackers are pooled and reset
      in place between runs instead of reallocated (safe because
      campaigns never keep run graphs).
    * **Recording**: with ``record_mode="on_failure"`` (default) trials
      run without the recording wrapper; a failing trial is re-executed
      deterministically with recording enabled, so the artifact is
      identical to what ``"always"`` would have captured — without
      taxing the overwhelmingly common clean trial.

    Every reuse lever is seed-for-seed neutral: a runner's records match
    :func:`run_trial` outcomes field for field (timings aside).
    """

    def __init__(self, program_factory: ProgramFactory,
                 scheduler_factory: SchedulerFactory,
                 base_seed: int, max_steps: int = 20000,
                 count_operations: Optional[
                     Callable[[RunResult], int]] = None,
                 trial_timeout_s: Optional[float] = None,
                 sanitize: str = "off",
                 artifact_dir: Optional[str] = None,
                 spin_threshold: int = 8,
                 record_mode: str = "on_failure",
                 model: str = "c11"):
        if sanitize not in SANITIZE_MODES:
            raise ValueError(
                f"sanitize must be one of {SANITIZE_MODES}, got {sanitize!r}")
        if record_mode not in RECORD_MODES:
            raise ValueError(
                f"record_mode must be one of {RECORD_MODES}, "
                f"got {record_mode!r}")
        self.model = model
        self._model = resolve_model(model)
        self.program_factory = program_factory
        self.scheduler_factory = scheduler_factory
        self.base_seed = base_seed
        self.max_steps = max_steps
        self.count_operations = count_operations
        self.trial_timeout_s = trial_timeout_s
        self.sanitize = sanitize
        self.artifact_dir = artifact_dir
        self.spin_threshold = spin_threshold
        self.record_mode = record_mode
        self._reuse_scheduler = bool(
            getattr(scheduler_factory, "supports_reuse", False))
        self._reuse_program = bool(
            getattr(program_factory, "supports_reuse", False))
        self._scheduler: Optional[Scheduler] = None
        self._program: Optional[Program] = None
        self._state: Optional[ExecutionState] = None
        self._executor: Optional[Executor] = None

    # -- warm components -----------------------------------------------------

    def _checkout_scheduler(self, trial_seed: int) -> Scheduler:
        if not self._reuse_scheduler:
            return self.scheduler_factory(trial_seed)
        if self._scheduler is None:
            self._scheduler = self.scheduler_factory(trial_seed)
        else:
            self._scheduler.reseed(trial_seed)
        return self._scheduler

    def _checkout_program(self) -> Program:
        if not self._reuse_program:
            return self.program_factory()
        if self._program is None:
            self._program = self.program_factory()
        return self._program

    def _execute(self, program: Program, scheduler: Scheduler,
                 sanitize_run: bool) -> RunResult:
        executor = self._executor
        if executor is None or executor.program is not program:
            executor = self._executor = self._model.make_executor(
                program, scheduler, max_steps=self.max_steps,
                spin_threshold=self.spin_threshold, keep_graph=False,
                wall_timeout_s=self.trial_timeout_s, sanitize=sanitize_run,
            )
        else:
            executor.scheduler = scheduler
            executor.sanitize = sanitize_run
        state = self._state
        if state is None or state.program is not program:
            state = self._state = self._model.make_state(
                program, self.spin_threshold, fast=True)
        else:
            state.reset(program)
        return executor.run(state)

    # -- one trial -----------------------------------------------------------

    def run(self, index: int) -> TrialRecord:
        """Run campaign trial ``index`` — the unit shared by serial and
        parallel campaigns, so both execute bit-identical work.

        Fault containment, sanitizer sampling, and artifact policy are
        those of :func:`run_trial` (which delegates here).
        """
        trial_seed = derive_trial_seed(self.base_seed, index)
        sanitize_run = sanitize_this_trial(self.sanitize, index)
        recorder = None
        run: Optional[RunResult] = None
        error: Optional[str] = None
        operations = 0
        t0 = time.perf_counter()
        try:
            scheduler = self._checkout_scheduler(trial_seed)
            if self.artifact_dir is not None \
                    and self.record_mode == "always":
                from ..replay.recording import RecordingScheduler

                scheduler = recorder = RecordingScheduler(scheduler)
            run = self._execute(self._checkout_program(), scheduler,
                                sanitize_run)
            operations = self.count_operations(run) \
                if self.count_operations else 0
        except Exception as exc:
            error = summarize_exception(exc)
            run = None
        elapsed = time.perf_counter() - t0
        if error is not None:
            record = TrialRecord(
                index=index,
                bug_found=False,
                limit_exceeded=False,
                steps=0,
                k=0,
                elapsed_s=elapsed,
                error=error,
            )
        else:
            record = TrialRecord(
                index=index,
                bug_found=run.bug_found,
                limit_exceeded=run.limit_exceeded,
                steps=run.steps,
                k=run.k,
                elapsed_s=elapsed,
                operations=operations,
                timed_out=run.timed_out,
                inconsistent=run.inconsistent,
                violations=list(run.violations),
            )
        if self.artifact_dir is not None:
            record.artifact = self._emit_artifact(
                index, trial_seed, sanitize_run, recorder, run, error)
        return record

    # -- record-on-failure ---------------------------------------------------

    def _emit_artifact(self, index: int, trial_seed: int,
                       sanitize_run: bool, recorder,
                       run: Optional[RunResult],
                       error: Optional[str]) -> Optional[str]:
        """Write the trial's replayable artifact, if its outcome merits one.

        Best-effort and outside the timed region: a full disk or an
        unwritable directory must not fail the trial.
        """
        from .artifact import classify_outcome

        if classify_outcome(run, error) is None:
            return None
        try:
            if recorder is None:
                recorder = self._record_failure(trial_seed, sanitize_run, run)
                if recorder is None:
                    return None
            return _write_artifact(
                self.artifact_dir, self.program_factory,
                self.scheduler_factory, recorder, run, error,
                base_seed=self.base_seed, index=index,
                trial_seed=trial_seed, max_steps=self.max_steps,
                spin_threshold=self.spin_threshold, model=self.model,
            )
        except Exception as exc:  # pragma: no cover - defensive
            print(f"warning: trial {index}: could not write artifact: "
                  f"{summarize_exception(exc)}", file=sys.stderr)
            return None

    def _record_failure(self, trial_seed: int, sanitize_run: bool,
                        first_run: Optional[RunResult]):
        """Deterministically re-execute a failing trial with recording on.

        Fresh scheduler and program instances (never the warm ones)
        replay the identical decision sequence — schedulers are
        seed-deterministic and recording consumes no randomness — so the
        captured trace is byte-identical to what ``record_mode="always"``
        would have produced on the first execution.  All artifact
        *metadata* still comes from the first run; only the decision
        trace comes from this re-run.

        A timed-out first run re-executes with its observed step count as
        the step budget and no wall clock, reproducing the same decision
        prefix without racing the clock again.  A first run that raised
        raises again at the same decision; the trace up to the raise is
        kept.  Returns ``None`` when the scheduler factory itself fails
        (then no trace can exist, matching always-record behaviour).
        """
        from ..replay.recording import RecordingScheduler

        try:
            recorder = RecordingScheduler(self.scheduler_factory(trial_seed))
        except Exception:
            return None
        max_steps = self.max_steps
        if first_run is not None and first_run.timed_out:
            max_steps = first_run.steps
        try:
            self._model.run_once(
                self.program_factory(), recorder, max_steps=max_steps,
                keep_graph=False, wall_timeout_s=None,
                spin_threshold=self.spin_threshold,
                sanitize=sanitize_run)
        except Exception:
            pass  # the first run's error reproduces at the same point
        return recorder


def run_trial(program_factory: ProgramFactory,
              scheduler_factory: SchedulerFactory,
              base_seed: int, index: int, max_steps: int = 20000,
              count_operations: Optional[Callable[[RunResult], int]] = None,
              trial_timeout_s: Optional[float] = None,
              sanitize: str = "off",
              artifact_dir: Optional[str] = None,
              spin_threshold: int = 8,
              record_mode: str = "on_failure",
              model: str = "c11",
              ) -> TrialRecord:
    """Run a single campaign trial with a throwaway :class:`TrialRunner`.

    Faults are *contained*: any exception escaping the workload, the
    scheduler, or the engine (``ReproError``, ``ProgramDefinitionError``,
    arbitrary workload crashes) becomes a :class:`TrialRecord` with
    ``error`` set instead of aborting the campaign.  ``KeyboardInterrupt``
    and ``SystemExit`` still propagate — interrupting a campaign is an
    operator action, not a trial fault.

    With ``sanitize`` on (``"all"``, or ``"sampled"`` for every
    :data:`SANITIZE_SAMPLE_STRIDE`-th trial) the run additionally audits
    its execution graph against the C11 consistency axioms; violations
    mark the record ``inconsistent`` without aborting anything.  With
    ``artifact_dir`` set, any bug/error/timeout/inconsistent outcome is
    serialized as a replayable JSON artifact in that directory (written
    here, in the worker, so it survives the process boundary); see
    :data:`RECORD_MODES` for when the decision trace is captured.
    """
    return TrialRunner(
        program_factory, scheduler_factory, base_seed,
        max_steps=max_steps, count_operations=count_operations,
        trial_timeout_s=trial_timeout_s, sanitize=sanitize,
        artifact_dir=artifact_dir, spin_threshold=spin_threshold,
        record_mode=record_mode, model=model,
    ).run(index)


def _write_artifact(artifact_dir: str, program_factory: ProgramFactory,
                    scheduler_factory: SchedulerFactory,
                    recorder, run: Optional[RunResult],
                    error: Optional[str], *, base_seed: int, index: int,
                    trial_seed: int, max_steps: int,
                    spin_threshold: int, model: str = "c11") -> Optional[str]:
    """Serialize a failed trial as a replayable artifact; None if clean."""
    from .artifact import (BugArtifact, artifact_path, classify_outcome,
                           program_spec_dict, scheduler_spec_dict)

    outcome = classify_outcome(run, error)
    if outcome is None:
        return None
    trace = recorder.trace
    trace.seed = trial_seed
    trace.spin_threshold = spin_threshold
    artifact = BugArtifact(
        outcome=outcome,
        program=trace.program or getattr(program_factory, "name", ""),
        scheduler=recorder.inner.name,
        trial_index=index,
        trial_seed=trial_seed,
        base_seed=base_seed,
        max_steps=max_steps,
        spin_threshold=spin_threshold,
        model=model,
        trace=trace,
        steps=run.steps if run is not None else 0,
        bug_kind=run.bug_kind if run is not None else None,
        bug_message=run.bug_message if run is not None else None,
        error=error,
        violations=list(run.violations) if run is not None else [],
        diagnostics=run.diagnostics if run is not None else None,
        program_spec=program_spec_dict(program_factory),
        scheduler_spec=scheduler_spec_dict(scheduler_factory),
    )
    os.makedirs(artifact_dir, exist_ok=True)
    return artifact.save(artifact_path(artifact_dir, index))


def fold_trial(result: CampaignResult, record: TrialRecord) -> None:
    """Accumulate one trial into the campaign aggregate.

    Compatibility wrapper over :class:`CampaignAccumulator`: the
    accumulator rides along on the result object and the aggregate
    fields are re-finalized after every fold, so incremental callers
    observe up-to-date totals.  Hot paths fold into an accumulator
    directly and finalize once.
    """
    acc = getattr(result, "_accumulator", None)
    if acc is None:
        acc = result._accumulator = CampaignAccumulator()
    acc.add(record)
    acc.finalize(result)


def resolve_campaign_names(program_factory: ProgramFactory,
                           scheduler_factory: SchedulerFactory,
                           base_seed: int,
                           scheduler_name: Optional[str]) -> tuple:
    """The (program, scheduler) display names for a campaign result.

    Builds a throwaway probe scheduler only when the caller did not name
    the scheduler — factory specs carry their name statically.  A probe
    that *raises* is contained (the campaign must survive a crashing
    workload to report it as errors), falling back to the factory's own
    name.
    """
    if scheduler_name is None:
        scheduler_name = getattr(scheduler_factory, "scheduler_name", None)
    if scheduler_name is None:
        try:
            scheduler_name = scheduler_factory(
                derive_trial_seed(base_seed, 0)).name
        except Exception:
            scheduler_name = getattr(scheduler_factory, "__name__",
                                     "<scheduler>")
    try:
        program_name = program_factory().name
    except Exception:
        program_name = getattr(program_factory, "name", None) \
            or getattr(program_factory, "__name__", "<program>")
    return program_name, scheduler_name


def run_campaign(program_factory: ProgramFactory,
                 scheduler_factory: SchedulerFactory,
                 trials: int = 100,
                 base_seed: int = 0,
                 max_steps: int = 20000,
                 scheduler_name: Optional[str] = None,
                 count_operations: Optional[Callable[[RunResult], int]] = None,
                 trial_timeout_s: Optional[float] = None,
                 sanitize: str = "off",
                 artifact_dir: Optional[str] = None,
                 spin_threshold: int = 8,
                 record_mode: str = "on_failure",
                 model: str = "c11",
                 ) -> CampaignResult:
    """Run ``trials`` independent randomized tests and aggregate.

    Trials that raise are contained as ``errors``; trials that exhaust
    ``trial_timeout_s`` of wall clock are contained as ``timeouts`` —
    neither aborts the campaign (see :func:`run_trial`).  ``sanitize``
    audits trial graphs against the consistency axioms (``"sampled"``:
    every :data:`SANITIZE_SAMPLE_STRIDE`-th trial; ``"all"``: every
    trial); ``artifact_dir`` makes failing trials emit replayable bug
    artifacts there (``record_mode`` selects how their traces are
    captured).  ``model`` selects the memory-model backend every trial
    executes under (``"c11"`` default, ``"tso"``); artifacts record it
    so replay picks the same backend.

    Trials execute on one warm :class:`TrialRunner` with the cyclic
    garbage collector paused (collected every
    :data:`GC_COLLECT_STRIDE` trials) — seed-for-seed identical
    outcomes to running each trial in isolation, at a fraction of the
    per-trial overhead.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    program_name, sched_name = resolve_campaign_names(
        program_factory, scheduler_factory, base_seed, scheduler_name)
    result = CampaignResult(
        program=program_name,
        scheduler=sched_name,
        trials=trials,
    )
    runner = TrialRunner(
        program_factory, scheduler_factory, base_seed,
        max_steps=max_steps, count_operations=count_operations,
        trial_timeout_s=trial_timeout_s, sanitize=sanitize,
        artifact_dir=artifact_dir, spin_threshold=spin_threshold,
        record_mode=record_mode, model=model,
    )
    acc = CampaignAccumulator()
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    start = time.perf_counter()
    try:
        for i in range(trials):
            acc.add(runner.run(i))
            if (i + 1) % GC_COLLECT_STRIDE == 0:
                gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    result.elapsed_s = time.perf_counter() - start
    acc.finalize(result)
    return result


# -- convenience scheduler factories ------------------------------------------


def pctwm_factory(depth: int, k_com: int,
                  history: int = 1) -> SchedulerFactory:
    return lambda seed: PCTWMScheduler(depth, k_com, history, seed=seed)


def pct_factory(depth: int, k_events: int) -> SchedulerFactory:
    return lambda seed: PCTScheduler(depth, k_events, seed=seed)


def c11tester_factory() -> SchedulerFactory:
    return lambda seed: C11TesterScheduler(seed=seed)


def naive_factory() -> SchedulerFactory:
    return lambda seed: NaiveRandomScheduler(seed=seed)
