"""Filesystem durability helpers: atomic renames that actually stick.

``os.replace`` gives atomicity (readers see the old file or the new
one, never a mix), but *not* durability: on most filesystems the rename
itself lives in the parent directory's metadata, and a crash between
the rename and the directory's next journal flush can resurrect the old
name or drop the new one entirely.  Every atomic-rename landing spot in
the campaign service therefore pairs the rename with an ``fsync`` of
the parent directory — that is :func:`durable_replace`.

The CRC helpers stamp JSON payloads with a checksum of their canonical
(``sort_keys=True``) serialization so torn or bit-rotted records are
*detected* on reload instead of being half-parsed: a job record or
journal line whose checksum does not match is quarantined or skipped,
never trusted.
"""

from __future__ import annotations

import json
import os
import zlib

__all__ = [
    "crc_of_obj",
    "fsync_dir",
    "durable_replace",
    "stamp_crc",
    "verify_crc",
]

#: Key under which the checksum is stored inside a stamped JSON object.
CRC_KEY = "crc32"


def fsync_dir(path: str) -> None:
    """Flush directory metadata so a completed rename survives a crash.

    Best-effort: platforms or filesystems that refuse ``open``/``fsync``
    on directories (some network mounts) degrade to the old behaviour
    rather than failing the caller — the rename already happened.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def durable_replace(tmp: str, path: str) -> None:
    """``os.replace`` followed by an fsync of the destination directory."""
    os.replace(tmp, path)
    fsync_dir(os.path.dirname(os.path.abspath(path)) or ".")


def crc_of_obj(obj: dict) -> int:
    """CRC32 of a JSON object's canonical serialization (sans checksum)."""
    payload = {k: v for k, v in obj.items() if k != CRC_KEY}
    return zlib.crc32(
        json.dumps(payload, sort_keys=True).encode("utf-8")) & 0xFFFFFFFF


def stamp_crc(obj: dict) -> dict:
    """Return ``obj`` plus its checksum under :data:`CRC_KEY`."""
    stamped = dict(obj)
    stamped[CRC_KEY] = crc_of_obj(obj)
    return stamped


def verify_crc(obj: dict) -> bool:
    """Whether a loaded object's checksum matches its content.

    Objects written before checksum stamping existed carry no
    :data:`CRC_KEY` and are accepted — the checksum detects corruption,
    it is not an authentication scheme.
    """
    stored = obj.get(CRC_KEY)
    if stored is None:
        return True
    try:
        return int(stored) == crc_of_obj(obj)
    except (TypeError, ValueError):
        return False
