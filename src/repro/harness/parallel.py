"""Parallel campaign engine: shard trials over a process pool.

The paper's headline experiments run 500-1000 randomized trials per
(program, scheduler, d, h) cell; each trial is pure-Python CPU-bound
work, so this module shards the trial index space across a
``multiprocessing`` worker pool:

* **Work units are picklable.**  Programs and schedulers cross the
  process boundary as registry specs (:class:`repro.workloads.ProgramSpec`,
  :class:`repro.core.factory.SchedulerSpec`) or any other picklable
  factory — not closures.
* **Seeding is shard-independent.**  Trial ``i`` always runs with
  ``derive_trial_seed(base_seed, i)``, so the aggregate counts are
  bit-identical to the serial path regardless of worker count or
  chunk size.
* **Merging is deterministic.**  Shards report per-trial records; the
  parent folds them in trial order, so ``hits``, ``inconclusive``,
  ``total_steps``, ``total_events`` and ``run_times_s`` match a serial
  campaign exactly.

A progress hook makes long campaigns observable: after every completed
shard the parent reports trials done, throughput, and an ETA.

    spec = ProgramSpec("seqlock")
    sched = SchedulerSpec("pctwm", {"depth": 3, "k_com": 18, "history": 2})
    result = run_campaign_parallel(spec, sched, trials=1000, jobs=4,
                                   progress=print_progress)
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..runtime.executor import RunResult
from .campaign import (
    CampaignResult,
    ProgramFactory,
    SchedulerFactory,
    TrialRecord,
    fold_trial,
    resolve_campaign_names,
    run_campaign,
    run_trial,
)

__all__ = [
    "CampaignProgress",
    "ShardResult",
    "ShardSpec",
    "print_progress",
    "run_campaign_parallel",
]


@dataclass
class ShardSpec:
    """One worker-pool task: a contiguous slice of the trial index space.

    Everything in here crosses the process boundary, so the factories must
    be picklable (registry specs or module-level callables).
    """

    program_factory: ProgramFactory
    scheduler_factory: SchedulerFactory
    base_seed: int
    start: int
    stop: int
    max_steps: int = 20000
    count_operations: Optional[Callable[[RunResult], int]] = None


@dataclass
class ShardResult:
    """Per-trial records of one shard, plus its wall time."""

    start: int
    records: List[TrialRecord]
    wall_s: float


@dataclass
class CampaignProgress:
    """Snapshot handed to the progress hook after each completed shard."""

    completed_trials: int
    total_trials: int
    elapsed_s: float
    #: Wall time of each shard completed so far, in completion order.
    shard_wall_times: List[float] = field(default_factory=list)

    @property
    def trials_per_second(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.completed_trials / self.elapsed_s

    @property
    def eta_s(self) -> float:
        """Estimated seconds until the campaign completes."""
        rate = self.trials_per_second
        if rate <= 0:
            return float("inf")
        return (self.total_trials - self.completed_trials) / rate

    def render(self) -> str:
        eta = f"{self.eta_s:.1f}s" if self.eta_s != float("inf") else "?"
        return (
            f"{self.completed_trials}/{self.total_trials} trials "
            f"({self.trials_per_second:.1f}/s, eta {eta})"
        )


def print_progress(progress: CampaignProgress) -> None:
    """Default progress hook: one status line per completed shard."""
    import sys

    print(f"  [campaign] {progress.render()}", file=sys.stderr, flush=True)


def _run_shard(shard: ShardSpec) -> ShardResult:
    """Worker entry point: run one contiguous slice of trials."""
    t0 = time.perf_counter()
    records = [
        run_trial(shard.program_factory, shard.scheduler_factory,
                  shard.base_seed, index, max_steps=shard.max_steps,
                  count_operations=shard.count_operations)
        for index in range(shard.start, shard.stop)
    ]
    return ShardResult(shard.start, records, time.perf_counter() - t0)


def shard_bounds(trials: int, jobs: int,
                 chunks_per_job: int = 4) -> List[tuple]:
    """Split ``range(trials)`` into contiguous ``(start, stop)`` slices.

    Oversplits to ``jobs * chunks_per_job`` shards for load balancing
    (trial durations vary, e.g. when some seeds hit the step budget);
    sharding never affects results because seeds are per-trial.
    """
    shards = max(1, min(trials, jobs * max(1, chunks_per_job)))
    bounds = []
    base, extra = divmod(trials, shards)
    start = 0
    for i in range(shards):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _pool_context():
    """Prefer fork (cheap on Linux); fall back to spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def run_campaign_parallel(
        program_factory: ProgramFactory,
        scheduler_factory: SchedulerFactory,
        trials: int = 100,
        base_seed: int = 0,
        max_steps: int = 20000,
        jobs: int = 1,
        scheduler_name: Optional[str] = None,
        count_operations: Optional[Callable[[RunResult], int]] = None,
        progress: Optional[Callable[[CampaignProgress], None]] = None,
        chunks_per_job: int = 4,
) -> CampaignResult:
    """Run a campaign sharded over ``jobs`` worker processes.

    Bit-identical to :func:`run_campaign` for the same ``base_seed``:
    aggregate counts and the per-trial ``run_times_s`` ordering do not
    depend on ``jobs`` or chunking (individual timings naturally vary).
    With ``jobs <= 1`` the campaign runs serially in-process, so callers
    can thread a jobs parameter through unconditionally.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    if jobs <= 1:
        result = run_campaign(
            program_factory, scheduler_factory, trials=trials,
            base_seed=base_seed, max_steps=max_steps,
            scheduler_name=scheduler_name,
            count_operations=count_operations,
        )
        if progress is not None:
            progress(CampaignProgress(trials, trials, result.elapsed_s))
        return result

    program_name, sched_name = resolve_campaign_names(
        program_factory, scheduler_factory, base_seed, scheduler_name)
    result = CampaignResult(
        program=program_name,
        scheduler=sched_name,
        trials=trials,
        jobs=jobs,
    )
    shards = [
        ShardSpec(program_factory, scheduler_factory, base_seed,
                  start, stop, max_steps, count_operations)
        for start, stop in shard_bounds(trials, jobs, chunks_per_job)
    ]
    start_time = time.perf_counter()
    outcomes: List[ShardResult] = []
    completed = 0
    wall_times: List[float] = []
    ctx = _pool_context()
    with ctx.Pool(processes=min(jobs, len(shards))) as pool:
        for outcome in pool.imap_unordered(_run_shard, shards):
            outcomes.append(outcome)
            completed += len(outcome.records)
            wall_times.append(outcome.wall_s)
            if progress is not None:
                progress(CampaignProgress(
                    completed, trials,
                    time.perf_counter() - start_time,
                    list(wall_times),
                ))
    # Deterministic merge: fold shards back in trial order.
    outcomes.sort(key=lambda o: o.start)
    for outcome in outcomes:
        for record in outcome.records:
            fold_trial(result, record)
    result.shard_times_s = [o.wall_s for o in outcomes]
    result.elapsed_s = time.perf_counter() - start_time
    return result
