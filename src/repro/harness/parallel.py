"""Fault-tolerant parallel campaign engine: supervised trial shards.

The paper's headline experiments run 500-1000 randomized trials per
(program, scheduler, d, h) cell; each trial is pure-Python CPU-bound
work, so this module shards the trial index space across a process pool
and *supervises* the shards so one fault cannot destroy a campaign:

* **Work units are picklable.**  Programs and schedulers cross the
  process boundary as registry specs (:class:`repro.workloads.ProgramSpec`,
  :class:`repro.core.factory.SchedulerSpec`) or any other picklable
  factory — not closures.
* **Seeding is shard-independent.**  Trial ``i`` always runs with
  ``derive_trial_seed(base_seed, i)``, so the aggregate counts are
  bit-identical to the serial path regardless of worker count, chunking,
  or how often a shard had to be retried.
* **Workers are warm.**  The pool initializer materializes one
  :class:`~repro.harness.campaign.TrialRunner` per worker process —
  program, scheduler, and pooled execution state built once — and each
  IPC round then ships only a tuple of trial indices, not a pickled
  factory bundle.
* **Merging is deterministic and streaming.**  Shard records fold into
  a :class:`~repro.harness.campaign.CampaignAccumulator` as each shard
  finishes; the fold is order-independent, so ``hits``,
  ``inconclusive``, ``total_steps``, ``total_events`` and
  ``run_times_s`` match a serial campaign exactly while the parent
  holds only bounded aggregate state.
* **Faults are contained at three levels.**  A trial that raises or
  exhausts its wall-clock budget becomes an ``error``/``timeout``
  record inside the worker (:func:`repro.harness.campaign.run_trial`).
  A worker that *dies* (OOM kill, fork-unsafe state, segfault) breaks
  the pool; the supervisor rebuilds it and retries the lost shards with
  bounded retries and exponential backoff — retries are bit-identical
  because seeds are per-trial.  Shards that keep failing degrade to
  in-process execution so the campaign still finishes (and a
  deterministic infrastructure fault surfaces with a real traceback).
* **Progress is durable.**  With ``checkpoint=PATH`` every completed
  shard is appended to a JSONL trial journal (flushed + fsynced);
  ``resume=True`` skips already-journaled trials.  SIGINT *and SIGTERM*
  (what container orchestrators send) stop the campaign cleanly:
  completed work is journaled, an ``interrupt`` event is appended, and
  the partial aggregates are returned with ``interrupted=True``.
* **Wedged workers are preempted.**  ``trial_timeout_s`` is enforced
  cooperatively inside the step loop, so it cannot fire while a worker
  is stuck *outside* it (a factory wedged in native code, an OS stall).
  With ``hang_timeout_s`` set, warm workers stamp a shared heartbeat
  slot per trial boundary and a supervisor-side watchdog thread
  (:mod:`repro.harness.watchdog`) hard-kills any worker whose busy
  heartbeat goes stale, feeding the lost shard back into the same
  bounded-retry path — the wall-clock budget becomes preemptive.
  ``memory_limit_mb`` likewise recycles workers whose RSS crosses a
  soft ceiling; worker restarts are seed-deterministic, so neither
  lever can change results.

    spec = ProgramSpec("seqlock")
    sched = SchedulerSpec("pctwm", {"depth": 3, "k_com": 18, "history": 2})
    result = run_campaign_parallel(spec, sched, trials=1000, jobs=4,
                                   checkpoint="seqlock.jsonl",
                                   progress=print_progress)
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import signal
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..runtime.executor import RunResult
from . import faultrig
from .campaign import (
    GC_COLLECT_STRIDE,
    CampaignAccumulator,
    CampaignResult,
    ProgramFactory,
    SchedulerFactory,
    TrialRecord,
    TrialRunner,
    resolve_campaign_names,
    run_campaign,
)
from .checkpoint import TrialJournal
from .watchdog import HeartbeatBoard, Watchdog, WatchdogStats

__all__ = [
    "CampaignProgress",
    "ShardResult",
    "ShardSpec",
    "WatchdogStats",
    "print_progress",
    "run_campaign_parallel",
]

#: Environment override for the multiprocessing start method used by
#: campaign pools ("fork", "spawn", or "forkserver").
START_METHOD_ENV = "REPRO_START_METHOD"

#: Ceiling on the exponential shard-retry backoff.  Retries double from
#: ``retry_backoff_s`` but never beyond this, so a high retry budget
#: cannot compound into multi-minute stalls between pool rebuilds.
RETRY_BACKOFF_CAP_S = 5.0


@dataclass
class ShardSpec:
    """One worker-pool task: a slice of the trial index space.

    ``indices`` is usually contiguous, but resuming from a checkpoint
    shards only the *remaining* trials, which may have holes.  Everything
    in here crosses the process boundary, so the factories must be
    picklable (registry specs or module-level callables).
    """

    program_factory: ProgramFactory
    scheduler_factory: SchedulerFactory
    base_seed: int
    indices: Tuple[int, ...]
    max_steps: int = 20000
    count_operations: Optional[Callable[[RunResult], int]] = None
    trial_timeout_s: Optional[float] = None
    sanitize: str = "off"
    artifact_dir: Optional[str] = None
    spin_threshold: int = 8
    record_mode: str = "on_failure"
    model: str = "c11"

    def make_runner(self) -> TrialRunner:
        """A warm trial runner configured like this shard."""
        return TrialRunner(
            self.program_factory, self.scheduler_factory, self.base_seed,
            max_steps=self.max_steps,
            count_operations=self.count_operations,
            trial_timeout_s=self.trial_timeout_s, sanitize=self.sanitize,
            artifact_dir=self.artifact_dir,
            spin_threshold=self.spin_threshold,
            record_mode=self.record_mode,
            model=self.model,
        )


@dataclass
class ShardResult:
    """Per-trial records of one shard, plus its wall time."""

    start: int
    records: List[TrialRecord]
    wall_s: float


@dataclass
class CampaignProgress:
    """Snapshot handed to the progress hook after each completed shard."""

    completed_trials: int
    total_trials: int
    elapsed_s: float
    #: Wall time of each shard completed so far, in completion order.
    shard_wall_times: List[float] = field(default_factory=list)
    #: Trials restored from a checkpoint journal (counted in
    #: ``completed_trials`` but not re-run).
    resumed_trials: int = 0

    @property
    def trials_per_second(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.completed_trials / self.elapsed_s

    @property
    def eta_s(self) -> float:
        """Estimated seconds until the campaign completes."""
        rate = self.trials_per_second
        if rate <= 0:
            return float("inf")
        return (self.total_trials - self.completed_trials) / rate

    def render(self) -> str:
        eta = f"{self.eta_s:.1f}s" if self.eta_s != float("inf") else "?"
        resumed = (f", {self.resumed_trials} resumed"
                   if self.resumed_trials else "")
        return (
            f"{self.completed_trials}/{self.total_trials} trials "
            f"({self.trials_per_second:.1f}/s, eta {eta}{resumed})"
        )


def print_progress(progress: CampaignProgress) -> None:
    """Default progress hook: one status line per completed shard."""
    print(f"  [campaign] {progress.render()}", file=sys.stderr, flush=True)


def _run_shard(shard: ShardSpec) -> ShardResult:
    """Cold shard entry point: build a runner, run one slice of trials.

    Used for in-process (degraded) execution and by callers that hold a
    full :class:`ShardSpec`; pooled workers use the warm
    :func:`_init_worker` / :func:`_run_shard_warm` pair instead.
    """
    t0 = time.perf_counter()
    runner = shard.make_runner()
    records = [runner.run(index) for index in shard.indices]
    return ShardResult(shard.indices[0], records, time.perf_counter() - t0)


#: Per-worker-process warm state, materialized once by :func:`_init_worker`.
_WORKER_RUNNER: Optional[TrialRunner] = None
_WORKER_TRIALS_SINCE_GC = 0
#: The worker's claimed heartbeat slot (None when the campaign runs
#: without a hang watchdog or memory ceiling).
_WORKER_HEARTBEAT = None


def _init_worker(config: ShardSpec, board: Optional[HeartbeatBoard] = None,
                 ) -> None:
    """Pool initializer: materialize the worker's warm trial runner.

    Runs once per worker process, so the factories are unpickled and the
    program/scheduler/execution-state pool built a single time; every
    subsequent IPC round only ships trial indices.  The cyclic collector
    is paused for the worker's lifetime (trial loops collect manually,
    see :func:`_run_shard_warm`).

    With a heartbeat ``board`` the worker claims its slot first and runs
    initialization *busy*, so a factory that wedges while building the
    warm runner is still preemptible; the slot goes idle on success.
    """
    global _WORKER_RUNNER, _WORKER_TRIALS_SINCE_GC, _WORKER_HEARTBEAT
    # Fork-started workers inherit the supervisor's SIGTERM handler
    # (which raises KeyboardInterrupt); a pool worker must simply die
    # when the executor terminates it.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    heartbeat = board.claim() if board is not None else None
    if heartbeat is not None:
        heartbeat.beat()
    _WORKER_HEARTBEAT = heartbeat
    faultrig.load_directives()
    _WORKER_RUNNER = config.make_runner()
    _WORKER_TRIALS_SINCE_GC = 0
    gc.disable()
    if heartbeat is not None:
        heartbeat.idle()


def _run_shard_warm(indices: Tuple[int, ...]) -> ShardResult:
    """Warm shard entry point: run trial ``indices`` on the pool runner.

    Each trial stamps the worker's heartbeat slot (one shared float
    store — noise next to even the cheapest trial), and the slot is
    marked idle on exit so a worker parked between shards is never
    mistaken for a wedged one.
    """
    global _WORKER_TRIALS_SINCE_GC
    heartbeat = _WORKER_HEARTBEAT
    t0 = time.perf_counter()
    if heartbeat is not None:
        heartbeat.beat()
    faultrig.maybe_inject(heartbeat)
    records = []
    for index in indices:
        if heartbeat is not None:
            heartbeat.beat()
        records.append(_WORKER_RUNNER.run(index))
    if heartbeat is not None:
        heartbeat.idle()
    _WORKER_TRIALS_SINCE_GC += len(indices)
    if _WORKER_TRIALS_SINCE_GC >= GC_COLLECT_STRIDE:
        _WORKER_TRIALS_SINCE_GC = 0
        gc.collect()
    return ShardResult(indices[0], records, time.perf_counter() - t0)


def shard_bounds(trials: int, jobs: int,
                 chunks_per_job: int = 4) -> List[tuple]:
    """Split ``range(trials)`` into contiguous ``(start, stop)`` slices.

    Oversplits to ``jobs * chunks_per_job`` shards for load balancing
    (trial durations vary, e.g. when some seeds hit the step budget);
    sharding never affects results because seeds are per-trial.
    """
    shards = max(1, min(trials, jobs * max(1, chunks_per_job)))
    bounds = []
    base, extra = divmod(trials, shards)
    start = 0
    for i in range(shards):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _pool_context(start_method: Optional[str] = None):
    """The multiprocessing context campaigns use for worker pools.

    Resolution order: explicit ``start_method`` argument, the
    ``REPRO_START_METHOD`` environment variable, then the historical
    default (fork where available — cheap on Linux — else spawn).  Pass
    ``"spawn"`` when the parent holds threads: forking a threaded
    process is unsafe.
    """
    if start_method is None:
        start_method = os.environ.get(START_METHOD_ENV) or None
    methods = multiprocessing.get_all_start_methods()
    if start_method is not None:
        if start_method not in methods:
            raise ValueError(
                f"unknown start method {start_method!r}; "
                f"available: {', '.join(methods)}"
            )
        return multiprocessing.get_context(start_method)
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _warn(message: str) -> None:
    print(f"  [campaign] {message}", file=sys.stderr, flush=True)


@contextmanager
def _sigterm_as_interrupt():
    """Deliver SIGTERM exactly like SIGINT for the duration of the block.

    Container orchestrators stop workloads with SIGTERM; without this,
    a terminated campaign would skip the journal-flush/partial-result
    path that SIGINT (KeyboardInterrupt) already takes and lose its
    checkpoint state.  The handler simply raises ``KeyboardInterrupt``,
    so one drain path serves both signals; the previous handler is
    restored on exit.  Signal handlers can only live in the main thread
    — campaigns run from a worker thread (e.g. inside the campaign
    daemon) yield an inert context instead.

    Yields a dict that records ``{"signal": "SIGTERM"}`` if the handler
    fired, letting callers journal which signal drained the campaign.
    """
    seen: Dict[str, str] = {}
    if threading.current_thread() is not threading.main_thread():
        yield seen
        return

    def handler(signum, frame):
        seen["signal"] = "SIGTERM"
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, handler)
    try:
        yield seen
    finally:
        signal.signal(signal.SIGTERM, previous)


class _ShardSupervisor:
    """Runs shards to completion across pool failures and interrupts.

    Owns the retry bookkeeping: ``pending`` shards keyed by their first
    trial index, a per-shard failure count, and the journal/progress
    side effects applied exactly once per completed shard.
    """

    def __init__(self, shards: Sequence[ShardSpec], jobs: int,
                 ctx, max_retries: int, retry_backoff_s: float,
                 journal: Optional[TrialJournal],
                 on_progress: Callable[[ShardResult], None],
                 accumulator: CampaignAccumulator,
                 worker_config: ShardSpec,
                 hang_timeout_s: Optional[float] = None,
                 memory_limit_mb: Optional[float] = None,
                 watchdog_stats: Optional[WatchdogStats] = None,
                 watchdog_poll_s: Optional[float] = None,
                 on_pool_change: Optional[Callable[[int], None]] = None):
        self.pending: Dict[int, ShardSpec] = {
            s.indices[0]: s for s in shards}
        self.failures: Dict[int, int] = {key: 0 for key in self.pending}
        self.jobs = jobs
        self.ctx = ctx
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.journal = journal
        self.on_progress = on_progress
        self.hang_timeout_s = hang_timeout_s
        self.memory_limit_mb = memory_limit_mb
        self.watchdog_stats = watchdog_stats \
            if watchdog_stats is not None else WatchdogStats()
        self.watchdog_poll_s = watchdog_poll_s
        #: Observer of live pool-worker deltas: called with ``+n`` when a
        #: pool of ``n`` workers starts and ``-n`` when it is torn down,
        #: so a daemon can meter campaigns against a global worker budget.
        self.on_pool_change = on_pool_change
        #: Set to end a backoff wait early (graceful drain); interrupt
        #: signals need no help — the deadline wait sleeps in short
        #: slices precisely so KeyboardInterrupt lands promptly.
        self._stop = threading.Event()
        #: Streaming fold target: shard records are folded the moment a
        #: shard completes and never retained — the parent's memory is
        #: bounded by the accumulator, not by the campaign size.
        self.accumulator = accumulator
        #: Indices-free shard config the pool initializer materializes
        #: once per worker process (the warm path).
        self.worker_config = worker_config
        #: ``(first trial index, wall seconds)`` per completed shard.
        self.shard_walls: List[Tuple[int, float]] = []
        self.interrupted = False

    def run(self) -> None:
        try:
            if self.jobs > 1:
                self._run_pooled()
            self._run_in_process()
        except KeyboardInterrupt:
            self.interrupted = True

    # -- supervision rounds --------------------------------------------------

    def _complete(self, key: int, outcome: ShardResult) -> None:
        del self.pending[key]
        self.shard_walls.append((outcome.start, outcome.wall_s))
        if self.journal is not None:
            self.journal.append(outcome.records)
        for record in outcome.records:
            self.accumulator.add(record)
        self.on_progress(outcome)

    def _runnable(self) -> Dict[int, ShardSpec]:
        return {key: spec for key, spec in self.pending.items()
                if self.failures[key] <= self.max_retries}

    def _backoff_delay(self, round_index: int) -> float:
        """Exponential backoff for retry round ``round_index`` (>= 1),
        capped at :data:`RETRY_BACKOFF_CAP_S`."""
        return min(self.retry_backoff_s * 2 ** (round_index - 1),
                   RETRY_BACKOFF_CAP_S)

    def _backoff_wait(self, delay_s: float) -> None:
        """Deadline-based wait: never a single long ``time.sleep``.

        Sleeps in short slices against a monotonic deadline, so an
        operator signal (KeyboardInterrupt) or :attr:`_stop` (a drain
        request) interrupts the backoff within ~50 ms instead of pinning
        the supervisor for the full delay.
        """
        deadline = time.monotonic() + delay_s
        while not self._stop.is_set():
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            self._stop.wait(min(remaining, 0.05))

    def _run_pooled(self) -> None:
        """Submit shards to worker pools, rebuilding after crashes."""
        round_index = 0
        while True:
            runnable = self._runnable()
            if not runnable:
                return
            if round_index > 0 and self.retry_backoff_s > 0:
                self._backoff_wait(self._backoff_delay(round_index))
            lost = self._run_pool_round(runnable)
            if not lost:
                return
            round_index += 1
            for key in lost:
                self.failures[key] += 1
            abandoned = [k for k in lost
                         if self.failures[k] > self.max_retries]
            if abandoned:
                _warn(
                    f"{len(abandoned)} shard(s) failed "
                    f"{self.max_retries + 1}x in workers; degrading to "
                    f"in-process execution"
                )

    def _supervised(self) -> bool:
        """Whether pool rounds run under a heartbeat watchdog."""
        return (self.hang_timeout_s is not None
                or self.memory_limit_mb is not None)

    def _run_pool_round(self, runnable: Dict[int, ShardSpec]) -> List[int]:
        """One pool lifetime; returns the shard keys that were lost."""
        workers = min(self.jobs, len(runnable))
        # One board per pool lifetime: a lingering worker of a torn-down
        # pool must never stamp (and thereby mask) its replacement's slot.
        board = (HeartbeatBoard(self.ctx, slots=workers)
                 if self._supervised() else None)
        executor = ProcessPoolExecutor(
            max_workers=workers, mp_context=self.ctx,
            initializer=_init_worker, initargs=(self.worker_config, board))
        if self.on_pool_change is not None:
            self.on_pool_change(workers)
        watchdog: Optional[Watchdog] = None
        if board is not None:
            watchdog = Watchdog(
                board,
                # Only pids the *current* pool owns are killable; a stale
                # board entry whose OS pid was recycled is never signalled.
                live_pids=lambda: list((executor._processes or {}).keys()),
                hang_timeout_s=self.hang_timeout_s,
                memory_limit_mb=self.memory_limit_mb,
                stats=self.watchdog_stats,
                poll_s=self.watchdog_poll_s,
                warn=_warn,
            )
            watchdog.start()
        clean = False
        try:
            futures = {executor.submit(_run_shard_warm, spec.indices): key
                       for key, spec in runnable.items()}
            lost: List[int] = []
            for future in as_completed(futures):
                key = futures[future]
                try:
                    outcome = future.result()
                except (BrokenProcessPool, OSError) as exc:
                    # A worker died; every unfinished shard of this pool
                    # is lost (the pool is unusable).  Which worker held
                    # which shard is unknowable, so all are retried.
                    lost = [k for k in futures.values()
                            if k in self.pending]
                    _warn(f"worker pool broke ({type(exc).__name__}); "
                          f"retrying {len(lost)} shard(s)")
                    break
                except Exception as exc:
                    # The shard itself raised (infrastructure fault, e.g.
                    # unpicklable result); the pool survives.
                    lost.append(key)
                    _warn(f"shard at trial {key} failed: {exc!r}")
                else:
                    self._complete(key, outcome)
            else:
                clean = True
            return lost
        finally:
            if watchdog is not None:
                watchdog.stop()
            # A broken or interrupted pool cannot be drained; don't wait.
            executor.shutdown(wait=clean, cancel_futures=True)
            if self.on_pool_change is not None:
                self.on_pool_change(-workers)

    def _run_in_process(self) -> None:
        """Run whatever is left in the parent process, in trial order."""
        for key in sorted(self.pending):
            self._complete(key, _run_shard(self.pending[key]))


def run_campaign_parallel(
        program_factory: ProgramFactory,
        scheduler_factory: SchedulerFactory,
        trials: int = 100,
        base_seed: int = 0,
        max_steps: int = 20000,
        jobs: int = 1,
        scheduler_name: Optional[str] = None,
        count_operations: Optional[Callable[[RunResult], int]] = None,
        progress: Optional[Callable[[CampaignProgress], None]] = None,
        chunks_per_job: int = 4,
        trial_timeout_s: Optional[float] = None,
        checkpoint: Optional[str] = None,
        resume: bool = False,
        max_retries: int = 2,
        retry_backoff_s: float = 0.1,
        start_method: Optional[str] = None,
        sanitize: str = "off",
        artifact_dir: Optional[str] = None,
        spin_threshold: int = 8,
        record_mode: str = "on_failure",
        model: str = "c11",
        hang_timeout_s: Optional[float] = None,
        memory_limit_mb: Optional[float] = None,
        watchdog_stats: Optional[WatchdogStats] = None,
        watchdog_poll_s: Optional[float] = None,
        on_pool_change: Optional[Callable[[int], None]] = None,
) -> CampaignResult:
    """Run a campaign sharded over ``jobs`` worker processes.

    Bit-identical to :func:`run_campaign` for the same ``base_seed``:
    aggregate counts and the per-trial ``run_times_s`` ordering do not
    depend on ``jobs``, chunking, worker crashes, or checkpoint/resume
    (individual timings naturally vary; wall-clock ``trial_timeout_s``
    budgets are inherently timing-dependent).  With ``jobs <= 1`` — or
    fewer trials than workers, where pool startup would dominate — the
    campaign runs in-process, so callers can thread a jobs parameter
    through unconditionally.

    Fault tolerance:

    * ``trial_timeout_s`` — per-trial wall-clock budget, enforced inside
      the worker's step loop; over-budget trials are recorded as
      ``timeouts``, not hangs.
    * ``max_retries`` — how many times a shard lost to a dead worker is
      retried (with exponential backoff starting at ``retry_backoff_s``)
      before it degrades to in-process execution.
    * ``checkpoint``/``resume`` — durable JSONL trial journal; see
      :mod:`repro.harness.checkpoint`.  On SIGINT *or SIGTERM* the
      journal is flushed, an ``interrupt`` event appended, and the
      partial aggregates returned with ``interrupted=True``.
    * ``hang_timeout_s`` — supervisor-side preemptive hang budget: warm
      workers stamp a shared heartbeat per trial boundary, and a
      watchdog thread hard-kills any worker whose *busy* heartbeat goes
      stale for longer than this, feeding the lost shard back into the
      retry path.  Must exceed ``trial_timeout_s`` (the cooperative
      budget should fire first for trials it *can* see).
    * ``memory_limit_mb`` — soft per-worker RSS ceiling; workers above
      it are recycled through the same kill/rebuild/retry path.  Both
      levers are seed-deterministic: retried trials are bit-identical.
    * ``watchdog_stats`` — a :class:`WatchdogStats` to observe scans and
      kills live (e.g. a daemon's liveness endpoint); the campaign also
      reports its own kill deltas on ``result.hang_preemptions`` /
      ``result.rss_recycles``.
    * ``on_pool_change`` — observer of live pool-worker deltas: called
      ``+n`` when a pool of ``n`` workers comes up and ``-n`` when it is
      torn down, letting a daemon meter concurrent campaigns against a
      global worker budget.
    * ``start_method`` — multiprocessing start method ("fork", "spawn",
      "forkserver"); defaults to ``$REPRO_START_METHOD`` or fork.
    * ``sanitize`` — audit trial graphs against the consistency axioms
      ("off" | "sampled" | "all"); sampling is by trial index, so the
      sanitized set is jobs-independent.
    * ``artifact_dir`` — failing trials write replayable bug artifacts
      here from inside the worker, so they survive worker death; only
      the paths cross the process boundary.
    * ``model`` — memory-model backend for every trial ("c11" | "tso");
      recorded in the checkpoint journal, so resuming a campaign under a
      different model is rejected as a config mismatch.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint path")
    if hang_timeout_s is not None and hang_timeout_s <= 0:
        raise ValueError("hang_timeout_s must be positive")
    if memory_limit_mb is not None and memory_limit_mb <= 0:
        raise ValueError("memory_limit_mb must be positive")
    if (hang_timeout_s is not None and trial_timeout_s is not None
            and hang_timeout_s <= trial_timeout_s):
        raise ValueError(
            "hang_timeout_s must exceed trial_timeout_s: the cooperative "
            "per-trial budget should fire before the preemptive one")
    with _sigterm_as_interrupt() as term_seen:
        return _run_campaign_parallel(
            program_factory, scheduler_factory, trials, base_seed,
            max_steps, jobs, scheduler_name, count_operations, progress,
            chunks_per_job, trial_timeout_s, checkpoint, resume,
            max_retries, retry_backoff_s, start_method, sanitize,
            artifact_dir, spin_threshold, record_mode, model,
            hang_timeout_s, memory_limit_mb, watchdog_stats,
            watchdog_poll_s, on_pool_change, term_seen)


def _run_campaign_parallel(
        program_factory, scheduler_factory, trials, base_seed, max_steps,
        jobs, scheduler_name, count_operations, progress, chunks_per_job,
        trial_timeout_s, checkpoint, resume, max_retries, retry_backoff_s,
        start_method, sanitize, artifact_dir, spin_threshold, record_mode,
        model, hang_timeout_s, memory_limit_mb, watchdog_stats,
        watchdog_poll_s, on_pool_change, term_seen) -> CampaignResult:
    """Campaign body; runs with SIGTERM mapped onto KeyboardInterrupt."""
    if (jobs <= 1 or trials < jobs) and checkpoint is None:
        result = run_campaign(
            program_factory, scheduler_factory, trials=trials,
            base_seed=base_seed, max_steps=max_steps,
            scheduler_name=scheduler_name,
            count_operations=count_operations,
            trial_timeout_s=trial_timeout_s,
            sanitize=sanitize, artifact_dir=artifact_dir,
            spin_threshold=spin_threshold, record_mode=record_mode,
            model=model,
        )
        if progress is not None:
            progress(CampaignProgress(trials, trials, result.elapsed_s))
        return result

    program_name, sched_name = resolve_campaign_names(
        program_factory, scheduler_factory, base_seed, scheduler_name)
    result = CampaignResult(
        program=program_name,
        scheduler=sched_name,
        trials=trials,
        jobs=jobs,
    )

    journal: Optional[TrialJournal] = None
    done: Dict[int, TrialRecord] = {}
    if checkpoint is not None:
        journal = TrialJournal(checkpoint)
        done = journal.start(
            {"program": program_name, "scheduler": sched_name,
             "base_seed": base_seed, "trials": trials,
             "max_steps": max_steps, "sanitize": sanitize,
             "model": model},
            resume=resume,
        )
        done = {i: r for i, r in done.items() if i < trials}
    result.resumed_trials = len(done)

    remaining = [i for i in range(trials) if i not in done]
    worker_config = ShardSpec(
        program_factory, scheduler_factory, base_seed, (), max_steps,
        count_operations, trial_timeout_s, sanitize, artifact_dir,
        spin_threshold, record_mode, model)
    shards = [
        replace(worker_config, indices=tuple(remaining[start:stop]))
        for start, stop in shard_bounds(len(remaining), max(jobs, 1),
                                        chunks_per_job)
        if stop > start
    ]

    start_time = time.perf_counter()
    completed_trials = len(done)
    wall_times: List[float] = []

    def on_progress(outcome: ShardResult) -> None:
        nonlocal completed_trials
        completed_trials += len(outcome.records)
        wall_times.append(outcome.wall_s)
        if progress is not None:
            progress(CampaignProgress(
                completed_trials, trials,
                time.perf_counter() - start_time,
                list(wall_times),
                resumed_trials=len(done),
            ))

    # Streaming, order-independent fold: resumed records seed the
    # accumulator, fresh shard records fold in as each shard completes
    # (inside the supervisor), and finalize() materializes aggregates
    # identical to a serial in-order campaign.
    accumulator = CampaignAccumulator()
    for record in done.values():
        accumulator.add(record)

    stats = watchdog_stats if watchdog_stats is not None else WatchdogStats()
    # The stats object may be shared across campaigns (a daemon exposes
    # one fleet-wide instance); this campaign's own preemption counts are
    # the deltas across its run.
    hang_kills_before = stats.hang_kills
    rss_kills_before = stats.rss_kills

    supervisor = _ShardSupervisor(
        shards, jobs, _pool_context(start_method), max_retries,
        retry_backoff_s, journal, on_progress, accumulator, worker_config,
        hang_timeout_s=hang_timeout_s, memory_limit_mb=memory_limit_mb,
        watchdog_stats=stats, watchdog_poll_s=watchdog_poll_s,
        on_pool_change=on_pool_change)
    try:
        if shards:
            supervisor.run()
        elif progress is not None:
            progress(CampaignProgress(
                trials, trials, time.perf_counter() - start_time,
                resumed_trials=len(done)))
    finally:
        if journal is not None:
            if supervisor.interrupted:
                journal.append_event(
                    "interrupt",
                    signal=term_seen.get("signal", "SIGINT"),
                    completed=accumulator.completed)
            journal.close()

    result.shard_times_s = [
        wall for _, wall in sorted(supervisor.shard_walls)]
    result.interrupted = supervisor.interrupted
    result.hang_preemptions = stats.hang_kills - hang_kills_before
    result.rss_recycles = stats.rss_kills - rss_kills_before
    result.elapsed_s = time.perf_counter() - start_time
    accumulator.finalize(result)
    return result
