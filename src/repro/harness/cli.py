"""Command-line interface: regenerate any table or figure of the paper.

Mirrors the artifact's ``result_pctwm.sh`` / ``run_all.sh`` scripts:

    python -m repro table1
    python -m repro table2 --trials 1000          # paper-scale
    python -m repro table3 --benchmarks dekker seqlock
    python -m repro table4 --runs 10
    python -m repro figure5 --trials 500
    python -m repro figure6 --trials 500
    python -m repro all --trials 100

plus utility commands beyond the artifact:

    python -m repro depth mpmcqueue               # estimate k/k_com/d
    python -m repro hunt seqlock --out trace.json # find a bug, save trace
    python -m repro litmus --trials 200           # run the litmus gallery
    python -m repro campaign msqueue --sanitize sampled --artifacts art/
    python -m repro replay art/trial-000007.json --minimize
    python -m repro bench                         # write BENCH_engine.json
    python -m repro bench --quick --check         # CI perf smoke gate
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from .figures import figure5, figure6, render_figure5, render_figure6
from .tables import (
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    table1,
    table2,
    table3,
    table4,
)


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the PCTWM paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_model(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--model", default="c11",
                         choices=("c11", "tso"),
                         help="memory-model backend to execute under "
                              "(default: the C11 axiomatic engine; 'tso' "
                              "runs the x86-TSO store-buffer backend)")

    def add_sanitize(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--sanitize", default="off",
                         choices=("off", "sampled", "all"),
                         help="audit execution graphs against the C11 "
                              "consistency axioms (sampled = every 10th "
                              "trial); violations are reported as "
                              "'inconsistent', never aborts")

    def add(name: str, help_text: str) -> argparse.ArgumentParser:
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--trials", type=_positive_int, default=100,
                         help="runs per configuration (paper: 1000/500)")
        cmd.add_argument("--seed", type=_nonnegative_int, default=0)
        cmd.add_argument("--benchmarks", nargs="*", default=None)
        cmd.add_argument("--jobs", type=_positive_int, default=1,
                         help="worker processes per campaign (1 = serial; "
                              "results are identical for any value)")
        add_sanitize(cmd)
        return cmd

    add("table1", "benchmark characteristics (k, k_com, d)")
    add("table2", "PCTWM hit rates for d, d+1, d+2")
    add("table3", "PCTWM hit rates for h = 1..4")
    t4 = sub.add_parser("table4", help="application performance overhead")
    t4.add_argument("--runs", type=_positive_int, default=10)
    t4.add_argument("--scale", type=_positive_int, default=1)
    t4.add_argument("--seed", type=_nonnegative_int, default=0)
    add("figure5", "highest hit rates: C11Tester vs PCT vs PCTWM")
    add("figure6", "hit rate vs inserted relaxed writes")
    everything = add("all", "run every table and figure")
    everything.add_argument("--runs", type=_positive_int, default=10)

    depth_cmd = sub.add_parser(
        "depth", help="estimate k, k_com and the empirical bug depth")
    depth_cmd.add_argument("benchmark")
    depth_cmd.add_argument("--trials", type=_positive_int, default=150)
    depth_cmd.add_argument("--max-depth", type=_positive_int, default=4)
    depth_cmd.add_argument("--seed", type=_nonnegative_int, default=0)

    hunt_cmd = sub.add_parser(
        "hunt", help="find a bug with PCTWM and save a replayable trace")
    hunt_cmd.add_argument("benchmark")
    hunt_cmd.add_argument("--attempts", type=_positive_int, default=1000)
    hunt_cmd.add_argument("--depth", type=int, default=None)
    hunt_cmd.add_argument("--history", type=int, default=None)
    hunt_cmd.add_argument("--seed", type=_nonnegative_int, default=0)
    hunt_cmd.add_argument("--out", default=None,
                          help="write the trace JSON here")

    campaign_cmd = sub.add_parser(
        "campaign",
        help="run one hit-rate campaign, optionally sharded over workers")
    campaign_cmd.add_argument("benchmark")
    campaign_cmd.add_argument("--scheduler", default="pctwm")
    campaign_cmd.add_argument("--trials", type=_positive_int, default=100)
    campaign_cmd.add_argument("--seed", type=_nonnegative_int, default=0)
    campaign_cmd.add_argument("--jobs", type=_positive_int, default=1)
    campaign_cmd.add_argument("--depth", type=int, default=None)
    campaign_cmd.add_argument("--history", type=int, default=None)
    campaign_cmd.add_argument("--max-steps", type=_positive_int,
                              default=20000)
    campaign_cmd.add_argument("--progress", action="store_true",
                              help="print per-shard progress to stderr")
    campaign_cmd.add_argument("--trial-timeout", type=_positive_float,
                              default=None, metavar="SECONDS",
                              help="per-trial wall-clock budget; "
                                   "over-budget trials are recorded as "
                                   "timeouts, not hangs")
    campaign_cmd.add_argument("--checkpoint", default=None, metavar="PATH",
                              help="append completed trials to this JSONL "
                                   "journal as shards finish")
    campaign_cmd.add_argument("--resume", action="store_true",
                              help="skip trials already in --checkpoint")
    campaign_cmd.add_argument("--max-retries", type=_nonnegative_int,
                              default=2,
                              help="retries per shard lost to a dead "
                                   "worker before degrading to in-process "
                                   "execution")
    campaign_cmd.add_argument("--start-method", default=None,
                              choices=("fork", "spawn", "forkserver"),
                              help="multiprocessing start method "
                                   "(default: $REPRO_START_METHOD or fork)")
    add_sanitize(campaign_cmd)
    add_model(campaign_cmd)
    campaign_cmd.add_argument("--artifacts", default=None, metavar="DIR",
                              help="write a replayable JSON artifact here "
                                   "for every trial that finds a bug, "
                                   "errors, times out, or is flagged "
                                   "inconsistent")
    campaign_cmd.add_argument("--record-mode", default="on_failure",
                              choices=("on_failure", "always"),
                              help="how artifact traces are captured: "
                                   "'on_failure' (default) re-executes "
                                   "failing trials deterministically with "
                                   "recording on; 'always' records every "
                                   "trial as it runs")

    litmus_cmd = sub.add_parser(
        "litmus", help="run the litmus gallery under every scheduler")
    litmus_cmd.add_argument("--trials", type=_positive_int, default=200)
    litmus_cmd.add_argument("--seed", type=_nonnegative_int, default=0)
    add_sanitize(litmus_cmd)
    add_model(litmus_cmd)

    replay_cmd = sub.add_parser(
        "replay", help="re-execute a bug artifact and verify the outcome")
    replay_cmd.add_argument("artifact", help="artifact JSON path (written "
                                             "by campaign --artifacts)")
    replay_cmd.add_argument("--minimize", action="store_true",
                            help="shrink the decision trace while "
                                 "preserving the bug (bug artifacts only)")
    replay_cmd.add_argument("--out", default=None, metavar="PATH",
                            help="write the minimized trace JSON here")

    bench_cmd = sub.add_parser(
        "bench",
        help="measure engine events/sec and write BENCH_engine.json")
    bench_cmd.add_argument("--quick", action="store_true",
                           help="small batches for CI smoke runs")
    bench_cmd.add_argument("--check", action="store_true",
                           help="compare engine and campaign throughput "
                                "against the committed trajectory and "
                                "fail on regressions")
    bench_cmd.add_argument("--out", default=None, metavar="PATH",
                           help="write the JSON trajectory here "
                                "(default: BENCH_engine.json unless "
                                "--check)")
    bench_cmd.add_argument("--baseline", default="BENCH_engine.json",
                           metavar="PATH",
                           help="committed trajectory --check compares "
                                "against")
    bench_cmd.add_argument("--tolerance", type=_positive_float,
                           default=0.30,
                           help="allowed fractional slowdown for --check")
    bench_cmd.add_argument("--seed", type=_nonnegative_int, default=0)
    bench_cmd.add_argument("--model", default="all",
                           choices=("all", "c11", "tso"),
                           help="which memory-model engine cells to "
                                "measure (default: all)")

    report_cmd = sub.add_parser(
        "report", help="regenerate the full evaluation as markdown")
    report_cmd.add_argument("--trials", type=_positive_int, default=100)
    report_cmd.add_argument("--runs", type=_positive_int, default=10)
    report_cmd.add_argument("--seed", type=_nonnegative_int, default=0)
    report_cmd.add_argument("--scale", type=_positive_int, default=1)
    report_cmd.add_argument("--jobs", type=_positive_int, default=1)
    report_cmd.add_argument("--out", default="evaluation_report.md")
    add_sanitize(report_cmd)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    command = args.command
    jobs = getattr(args, "jobs", 1)
    if command == "depth":
        return _cmd_depth(args)
    if command == "hunt":
        return _cmd_hunt(args)
    if command == "campaign":
        return _cmd_campaign(args)
    if command == "litmus":
        return _cmd_litmus(args)
    if command == "replay":
        return _cmd_replay(args)
    if command == "bench":
        from .bench import bench_command

        out = args.out
        if out is None and not args.check:
            out = "BENCH_engine.json"
        return bench_command(out=out, quick=args.quick, check=args.check,
                             baseline_path=args.baseline, seed=args.seed,
                             tolerance=args.tolerance, model=args.model)
    if command == "report":
        from .report import write_report

        path = write_report(args.out, trials=args.trials, runs=args.runs,
                            seed=args.seed, scale=args.scale, jobs=jobs,
                            sanitize=args.sanitize)
        print(f"report written to {path}")
        return 0
    if command in ("table1", "all"):
        print("== Table 1: benchmark characteristics ==")
        print(render_table1(table1(seed=args.seed)))
        print()
    sanitize = getattr(args, "sanitize", "off")
    if command in ("table2", "all"):
        print("== Table 2: hit rate vs bug depth ==")
        print(render_table2(table2(trials=args.trials, seed=args.seed,
                                   benchmarks=args.benchmarks, jobs=jobs,
                                   sanitize=sanitize)))
        print()
    if command in ("table3", "all"):
        print("== Table 3: hit rate vs history depth ==")
        print(render_table3(table3(trials=args.trials, seed=args.seed,
                                   benchmarks=args.benchmarks, jobs=jobs,
                                   sanitize=sanitize)))
        print()
    if command in ("table4", "all"):
        print("== Table 4: application performance ==")
        runs = getattr(args, "runs", 10)
        scale = getattr(args, "scale", 1)
        print(render_table4(table4(runs=runs, seed=args.seed, scale=scale)))
        print()
    if command in ("figure5", "all"):
        from .charts import bar_chart

        print("== Figure 5: highest observed hit rates ==")
        bars = figure5(trials=args.trials, seed=args.seed,
                       benchmarks=args.benchmarks, jobs=jobs)
        print(render_figure5(bars))
        print()
        print(bar_chart(bars))
        print()
    if command in ("figure6", "all"):
        from .charts import line_charts

        print("== Figure 6: inserted relaxed writes ==")
        series = figure6(trials=args.trials, seed=args.seed,
                         benchmarks=args.benchmarks, jobs=jobs)
        print(render_figure6(series))
        print()
        print(line_charts(series))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())


def _cmd_depth(args) -> int:
    from ..core.depth import empirical_bug_depth, estimate_parameters
    from ..workloads import BENCHMARKS

    info = BENCHMARKS[args.benchmark]
    est = estimate_parameters(info.build(), runs=5, seed=args.seed)
    print(f"{info.name}: {est}")
    depth = empirical_bug_depth(info.build(), max_depth=args.max_depth,
                                trials=args.trials, seed=args.seed,
                                k_com=est.k_com)
    paper = info.paper_depth
    print(f"empirical bug depth: {depth} (paper: {paper}, "
          f"calibrated: {info.measured_depth})")
    return 0


def _cmd_hunt(args) -> int:
    from ..analysis import format_trace
    from ..core.depth import estimate_parameters
    from ..core.pctwm import PCTWMScheduler
    from ..replay import find_and_record
    from ..workloads import BENCHMARKS

    info = BENCHMARKS[args.benchmark]
    est = estimate_parameters(info.build(), runs=3, seed=args.seed)
    depth = args.depth if args.depth is not None else info.measured_depth
    history = args.history if args.history is not None \
        else info.best_history
    print(f"hunting {info.name} with PCTWM(d={depth}, k_com={est.k_com}, "
          f"h={history})...")
    found = find_and_record(
        info.build,
        lambda seed: PCTWMScheduler(depth, est.k_com, history, seed=seed),
        max_attempts=args.attempts, base_seed=args.seed,
    )
    if found is None:
        print(f"no bug found in {args.attempts} attempts")
        return 1
    seed, result, trace = found
    print(f"found at seed {seed}: {result.bug_message}")
    print(format_trace(result.graph))
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(trace.to_json())
        print(f"trace saved to {args.out} "
              f"(replay with repro.replay.replay_run)")
    return 0


def _cmd_campaign(args) -> int:
    from ..core.depth import estimate_parameters
    from ..core.factory import SCHEDULER_REGISTRY, SchedulerSpec
    from ..memory.model import resolve_model
    from ..workloads import BENCHMARKS, ProgramSpec
    from .parallel import print_progress, run_campaign_parallel

    if args.scheduler not in SCHEDULER_REGISTRY:
        print(f"unknown scheduler {args.scheduler!r}; known: "
              + ", ".join(sorted(SCHEDULER_REGISTRY)))
        return 2
    model = resolve_model(args.model)
    if not model.supports_scheduler(args.scheduler):
        print(f"scheduler {args.scheduler!r} is not supported under the "
              f"{model.name} memory model; supported: "
              + ", ".join(model.scheduler_allowlist))
        return 2
    if args.benchmark not in BENCHMARKS:
        print(f"unknown benchmark {args.benchmark!r}; known: "
              + ", ".join(sorted(BENCHMARKS)))
        return 2
    info = BENCHMARKS[args.benchmark]
    program = ProgramSpec(info.name)
    depth = args.depth if args.depth is not None else info.measured_depth
    history = args.history if args.history is not None \
        else info.best_history
    params = {}
    if args.scheduler in ("pctwm", "pctwm-fullbag", "pctwm-eager",
                          "pctwm-nodelay"):
        est = estimate_parameters(info.build(), runs=3, seed=args.seed,
                                  model=args.model)
        params = {"depth": depth, "k_com": est.k_com, "history": history}
    elif args.scheduler == "pctwm-nohistory":
        est = estimate_parameters(info.build(), runs=3, seed=args.seed,
                                  model=args.model)
        params = {"depth": depth, "k_com": est.k_com}
    elif args.scheduler in ("pct", "ppct"):
        est = estimate_parameters(info.build(), runs=3, seed=args.seed,
                                  model=args.model)
        params = {"depth": max(depth, 1), "k_events": est.k}
    try:
        result = run_campaign_parallel(
            program, SchedulerSpec(args.scheduler, params),
            trials=args.trials, base_seed=args.seed,
            max_steps=args.max_steps, jobs=args.jobs,
            progress=print_progress if args.progress else None,
            trial_timeout_s=args.trial_timeout,
            checkpoint=args.checkpoint,
            resume=args.resume,
            max_retries=args.max_retries,
            start_method=args.start_method,
            sanitize=args.sanitize,
            artifact_dir=args.artifacts,
            record_mode=args.record_mode,
            model=args.model,
        )
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    except KeyboardInterrupt:
        print("interrupted before any trial completed")
        return 130
    print(result)
    print(f"  hits={result.hits} inconclusive={result.inconclusive} "
          f"steps={result.total_steps} events={result.total_events} "
          f"errors={result.errors} timeouts={result.timeouts}"
          + (f" inconsistent={result.inconsistent}"
             if args.sanitize != "off" else ""))
    for sample in result.error_samples:
        print(f"  error sample: {sample}")
    for sample in result.violation_samples:
        print(f"  SANITIZER violation: {sample}")
    if result.artifacts:
        print(f"  {len(result.artifacts)} artifact(s) in {args.artifacts} "
              f"(replay with: python -m repro replay "
              f"{result.artifacts[0]})")
    if result.resumed_trials:
        print(f"  resumed {result.resumed_trials} trials from "
              f"{args.checkpoint}")
    if result.jobs > 1:
        shard_s = " ".join(f"{t:.2f}" for t in result.shard_times_s)
        print(f"  jobs={result.jobs} wall={result.elapsed_s:.2f}s "
              f"shard walls: {shard_s}")
    if result.interrupted:
        print(f"  interrupted: {result.completed}/{result.trials} trials "
              f"aggregated above")
        if args.checkpoint:
            print(f"  resume with: --checkpoint {args.checkpoint} --resume")
        return 130
    return 0


def _cmd_litmus(args) -> int:
    from ..core import (
        C11TesterScheduler,
        NaiveRandomScheduler,
        PCTScheduler,
        PCTWMScheduler,
    )
    from ..core.depth import estimate_parameters
    from ..core.pos import POSScheduler
    from ..litmus import ALL_LITMUS
    from ..memory.model import resolve_model
    from .campaign import sanitize_this_trial

    model = resolve_model(args.model)
    if model.name == "tso":
        # The C11Tester baseline manipulates rf nondeterminism, which
        # TSO does not have; POS takes its column.
        columns = [
            ("naive", lambda est: lambda s: NaiveRandomScheduler(seed=s)),
            ("pos", lambda est: lambda s: POSScheduler(seed=s)),
            ("pct", lambda est: lambda s: PCTScheduler(2, est.k, seed=s)),
            ("pctwm",
             lambda est: lambda s: PCTWMScheduler(2, est.k_com, 2, seed=s)),
        ]
    else:
        columns = [
            ("naive", lambda est: lambda s: NaiveRandomScheduler(seed=s)),
            ("c11tester", lambda est: lambda s: C11TesterScheduler(seed=s)),
            ("pct", lambda est: lambda s: PCTScheduler(2, est.k, seed=s)),
            ("pctwm",
             lambda est: lambda s: PCTWMScheduler(2, est.k_com, 2, seed=s)),
        ]
    header = f"{'litmus':10s} " + " ".join(
        f"{label:>9s}" for label, _ in columns)
    print(f"model: {model.name}")
    print(header)
    print("-" * len(header))
    inconsistent = 0
    violation_samples: List[str] = []
    for name, factory in ALL_LITMUS.items():
        est = estimate_parameters(factory(), runs=3, seed=args.seed,
                                  model=model.name)
        rates = []
        for _, make_factory in columns:
            make = make_factory(est)
            hits = 0
            for i in range(args.trials):
                run = model.run_once(
                    factory(), make(args.seed + i), keep_graph=False,
                    sanitize=sanitize_this_trial(args.sanitize, i))
                hits += run.bug_found
                if run.inconsistent:
                    inconsistent += 1
                    if len(violation_samples) < 8:
                        violation_samples.extend(
                            f"{name}[{run.scheduler} trial {i}]: {v}"
                            for v in run.violations[:2])
            rates.append(100.0 * hits / args.trials)
        print(f"{name:10s} " + " ".join(f"{r:8.1f}%" for r in rates))
    if args.sanitize != "off":
        print(f"\nsanitizer ({args.sanitize}): "
              f"{inconsistent} inconsistent run(s)")
        for sample in violation_samples:
            print(f"  {sample}")
        if inconsistent:
            return 1
    return 0


def _cmd_replay(args) -> int:
    from ..runtime.errors import render_diagnostics
    from .artifact import load_artifact, replay_artifact

    try:
        artifact = load_artifact(args.artifact)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load artifact {args.artifact!r}: {exc}")
        return 2
    try:
        report = replay_artifact(artifact, minimize=args.minimize)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    print(report.render())
    if artifact.diagnostics:
        print()
        print(render_diagnostics(artifact.diagnostics))
    if report.minimized is not None and args.out:
        with open(args.out, "w") as fh:
            fh.write(report.minimized.to_json())
        print(f"minimized trace saved to {args.out}")
    return 0 if report.matched else 1
