"""Command-line interface: regenerate any table or figure of the paper.

Mirrors the artifact's ``result_pctwm.sh`` / ``run_all.sh`` scripts:

    python -m repro table1
    python -m repro table2 --trials 1000          # paper-scale
    python -m repro table3 --benchmarks dekker seqlock
    python -m repro table4 --runs 10
    python -m repro figure5 --trials 500
    python -m repro figure6 --trials 500
    python -m repro all --trials 100

plus utility commands beyond the artifact:

    python -m repro depth mpmcqueue               # estimate k/k_com/d
    python -m repro hunt seqlock --out trace.json # find a bug, save trace
    python -m repro litmus --trials 200           # run the litmus gallery
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from .figures import figure5, figure6, render_figure5, render_figure6
from .tables import (
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    table1,
    table2,
    table3,
    table4,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the PCTWM paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name: str, help_text: str) -> argparse.ArgumentParser:
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--trials", type=int, default=100,
                         help="runs per configuration (paper: 1000/500)")
        cmd.add_argument("--seed", type=int, default=0)
        cmd.add_argument("--benchmarks", nargs="*", default=None)
        return cmd

    add("table1", "benchmark characteristics (k, k_com, d)")
    add("table2", "PCTWM hit rates for d, d+1, d+2")
    add("table3", "PCTWM hit rates for h = 1..4")
    t4 = sub.add_parser("table4", help="application performance overhead")
    t4.add_argument("--runs", type=int, default=10)
    t4.add_argument("--scale", type=int, default=1)
    t4.add_argument("--seed", type=int, default=0)
    add("figure5", "highest hit rates: C11Tester vs PCT vs PCTWM")
    add("figure6", "hit rate vs inserted relaxed writes")
    everything = add("all", "run every table and figure")
    everything.add_argument("--runs", type=int, default=10)

    depth_cmd = sub.add_parser(
        "depth", help="estimate k, k_com and the empirical bug depth")
    depth_cmd.add_argument("benchmark")
    depth_cmd.add_argument("--trials", type=int, default=150)
    depth_cmd.add_argument("--max-depth", type=int, default=4)
    depth_cmd.add_argument("--seed", type=int, default=0)

    hunt_cmd = sub.add_parser(
        "hunt", help="find a bug with PCTWM and save a replayable trace")
    hunt_cmd.add_argument("benchmark")
    hunt_cmd.add_argument("--attempts", type=int, default=1000)
    hunt_cmd.add_argument("--depth", type=int, default=None)
    hunt_cmd.add_argument("--history", type=int, default=None)
    hunt_cmd.add_argument("--seed", type=int, default=0)
    hunt_cmd.add_argument("--out", default=None,
                          help="write the trace JSON here")

    litmus_cmd = sub.add_parser(
        "litmus", help="run the litmus gallery under every scheduler")
    litmus_cmd.add_argument("--trials", type=int, default=200)
    litmus_cmd.add_argument("--seed", type=int, default=0)

    report_cmd = sub.add_parser(
        "report", help="regenerate the full evaluation as markdown")
    report_cmd.add_argument("--trials", type=int, default=100)
    report_cmd.add_argument("--runs", type=int, default=10)
    report_cmd.add_argument("--seed", type=int, default=0)
    report_cmd.add_argument("--scale", type=int, default=1)
    report_cmd.add_argument("--out", default="evaluation_report.md")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    command = args.command
    if command == "depth":
        return _cmd_depth(args)
    if command == "hunt":
        return _cmd_hunt(args)
    if command == "litmus":
        return _cmd_litmus(args)
    if command == "report":
        from .report import write_report

        path = write_report(args.out, trials=args.trials, runs=args.runs,
                            seed=args.seed, scale=args.scale)
        print(f"report written to {path}")
        return 0
    if command in ("table1", "all"):
        print("== Table 1: benchmark characteristics ==")
        print(render_table1(table1(seed=args.seed)))
        print()
    if command in ("table2", "all"):
        print("== Table 2: hit rate vs bug depth ==")
        print(render_table2(table2(trials=args.trials, seed=args.seed,
                                   benchmarks=args.benchmarks)))
        print()
    if command in ("table3", "all"):
        print("== Table 3: hit rate vs history depth ==")
        print(render_table3(table3(trials=args.trials, seed=args.seed,
                                   benchmarks=args.benchmarks)))
        print()
    if command in ("table4", "all"):
        print("== Table 4: application performance ==")
        runs = getattr(args, "runs", 10)
        scale = getattr(args, "scale", 1)
        print(render_table4(table4(runs=runs, seed=args.seed, scale=scale)))
        print()
    if command in ("figure5", "all"):
        from .charts import bar_chart

        print("== Figure 5: highest observed hit rates ==")
        bars = figure5(trials=args.trials, seed=args.seed,
                       benchmarks=args.benchmarks)
        print(render_figure5(bars))
        print()
        print(bar_chart(bars))
        print()
    if command in ("figure6", "all"):
        from .charts import line_charts

        print("== Figure 6: inserted relaxed writes ==")
        series = figure6(trials=args.trials, seed=args.seed,
                         benchmarks=args.benchmarks)
        print(render_figure6(series))
        print()
        print(line_charts(series))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())


def _cmd_depth(args) -> int:
    from ..core.depth import empirical_bug_depth, estimate_parameters
    from ..workloads import BENCHMARKS

    info = BENCHMARKS[args.benchmark]
    est = estimate_parameters(info.build(), runs=5, seed=args.seed)
    print(f"{info.name}: {est}")
    depth = empirical_bug_depth(info.build(), max_depth=args.max_depth,
                                trials=args.trials, seed=args.seed,
                                k_com=est.k_com)
    paper = info.paper_depth
    print(f"empirical bug depth: {depth} (paper: {paper}, "
          f"calibrated: {info.measured_depth})")
    return 0


def _cmd_hunt(args) -> int:
    from ..analysis import format_trace
    from ..core.depth import estimate_parameters
    from ..core.pctwm import PCTWMScheduler
    from ..replay import find_and_record
    from ..workloads import BENCHMARKS

    info = BENCHMARKS[args.benchmark]
    est = estimate_parameters(info.build(), runs=3, seed=args.seed)
    depth = args.depth if args.depth is not None else info.measured_depth
    history = args.history if args.history is not None \
        else info.best_history
    print(f"hunting {info.name} with PCTWM(d={depth}, k_com={est.k_com}, "
          f"h={history})...")
    found = find_and_record(
        info.build,
        lambda seed: PCTWMScheduler(depth, est.k_com, history, seed=seed),
        max_attempts=args.attempts, base_seed=args.seed,
    )
    if found is None:
        print(f"no bug found in {args.attempts} attempts")
        return 1
    seed, result, trace = found
    print(f"found at seed {seed}: {result.bug_message}")
    print(format_trace(result.graph))
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(trace.to_json())
        print(f"trace saved to {args.out} "
              f"(replay with repro.replay.replay_run)")
    return 0


def _cmd_litmus(args) -> int:
    from ..core import (
        C11TesterScheduler,
        NaiveRandomScheduler,
        PCTScheduler,
        PCTWMScheduler,
    )
    from ..core.depth import estimate_parameters
    from ..litmus import ALL_LITMUS
    from ..runtime.executor import run_once

    header = (f"{'litmus':10s} {'naive':>8s} {'c11tester':>10s} "
              f"{'pct':>8s} {'pctwm':>8s}")
    print(header)
    print("-" * len(header))
    for name, factory in ALL_LITMUS.items():
        est = estimate_parameters(factory(), runs=3, seed=args.seed)
        rates = []
        for make in (
            lambda s: NaiveRandomScheduler(seed=s),
            lambda s: C11TesterScheduler(seed=s),
            lambda s: PCTScheduler(2, est.k, seed=s),
            lambda s: PCTWMScheduler(2, est.k_com, 2, seed=s),
        ):
            hits = sum(
                run_once(factory(), make(args.seed + i),
                         keep_graph=False).bug_found
                for i in range(args.trials)
            )
            rates.append(100.0 * hits / args.trials)
        print(f"{name:10s} " + " ".join(f"{r:7.1f}%" for r in rates))
    return 0
