"""Command-line interface: regenerate any table or figure of the paper.

Mirrors the artifact's ``result_pctwm.sh`` / ``run_all.sh`` scripts:

    python -m repro table1
    python -m repro table2 --trials 1000          # paper-scale
    python -m repro table3 --benchmarks dekker seqlock
    python -m repro table4 --runs 10
    python -m repro figure5 --trials 500
    python -m repro figure6 --trials 500
    python -m repro all --trials 100

plus utility commands beyond the artifact:

    python -m repro depth mpmcqueue               # estimate k/k_com/d
    python -m repro hunt seqlock --out trace.json # find a bug, save trace
    python -m repro litmus --trials 200           # run the litmus gallery
    python -m repro campaign msqueue --sanitize sampled --artifacts art/
    python -m repro replay art/trial-000007.json --minimize
    python -m repro bench                         # write BENCH_engine.json
    python -m repro bench --quick --check         # CI perf smoke gate

and the campaign service (see repro.service):

    python -m repro serve --state-dir svc/        # campaign-job daemon
    python -m repro job submit seqlock --trials 500 --jobs 4
    python -m repro job result job-000001 --wait
    python -m repro job drain
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from .figures import figure5, figure6, render_figure5, render_figure6
from .tables import (
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    table1,
    table2,
    table3,
    table4,
)


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _trial_timeout(text: str) -> float:
    """A ``--trial-timeout`` value: positive and at least the quantum.

    The budget is checked once per scheduler step, so values below one
    step quantum cannot distinguish a slow trial from any trial at all.
    """
    from .campaign import TRIAL_TIMEOUT_MIN_S

    value = _positive_float(text)
    if value < TRIAL_TIMEOUT_MIN_S:
        raise argparse.ArgumentTypeError(
            f"must be >= {TRIAL_TIMEOUT_MIN_S}s (one scheduler-step "
            f"quantum), got {value}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the PCTWM paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_model(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--model", default="c11",
                         choices=("c11", "tso"),
                         help="memory-model backend to execute under "
                              "(default: the C11 axiomatic engine; 'tso' "
                              "runs the x86-TSO store-buffer backend)")

    def add_sanitize(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--sanitize", default="off",
                         choices=("off", "sampled", "all"),
                         help="audit execution graphs against the C11 "
                              "consistency axioms (sampled = every 10th "
                              "trial); violations are reported as "
                              "'inconsistent', never aborts")

    def add(name: str, help_text: str) -> argparse.ArgumentParser:
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--trials", type=_positive_int, default=100,
                         help="runs per configuration (paper: 1000/500)")
        cmd.add_argument("--seed", type=_nonnegative_int, default=0)
        cmd.add_argument("--benchmarks", nargs="*", default=None)
        cmd.add_argument("--jobs", type=_positive_int, default=1,
                         help="worker processes per campaign (1 = serial; "
                              "results are identical for any value)")
        add_sanitize(cmd)
        return cmd

    add("table1", "benchmark characteristics (k, k_com, d)")
    add("table2", "PCTWM hit rates for d, d+1, d+2")
    add("table3", "PCTWM hit rates for h = 1..4")
    t4 = sub.add_parser("table4", help="application performance overhead")
    t4.add_argument("--runs", type=_positive_int, default=10)
    t4.add_argument("--scale", type=_positive_int, default=1)
    t4.add_argument("--seed", type=_nonnegative_int, default=0)
    add("figure5", "highest hit rates: C11Tester vs PCT vs PCTWM")
    add("figure6", "hit rate vs inserted relaxed writes")
    everything = add("all", "run every table and figure")
    everything.add_argument("--runs", type=_positive_int, default=10)

    depth_cmd = sub.add_parser(
        "depth", help="estimate k, k_com and the empirical bug depth")
    depth_cmd.add_argument("benchmark")
    depth_cmd.add_argument("--trials", type=_positive_int, default=150)
    depth_cmd.add_argument("--max-depth", type=_positive_int, default=4)
    depth_cmd.add_argument("--seed", type=_nonnegative_int, default=0)

    hunt_cmd = sub.add_parser(
        "hunt", help="find a bug with PCTWM and save a replayable trace")
    hunt_cmd.add_argument("benchmark")
    hunt_cmd.add_argument("--attempts", type=_positive_int, default=1000)
    hunt_cmd.add_argument("--depth", type=int, default=None)
    hunt_cmd.add_argument("--history", type=int, default=None)
    hunt_cmd.add_argument("--seed", type=_nonnegative_int, default=0)
    hunt_cmd.add_argument("--out", default=None,
                          help="write the trace JSON here")

    campaign_cmd = sub.add_parser(
        "campaign",
        help="run one hit-rate campaign, optionally sharded over workers")
    campaign_cmd.add_argument("benchmark")
    campaign_cmd.add_argument("--scheduler", default="pctwm")
    campaign_cmd.add_argument("--trials", type=_positive_int, default=100)
    campaign_cmd.add_argument("--seed", type=_nonnegative_int, default=0)
    campaign_cmd.add_argument("--jobs", type=_positive_int, default=1)
    campaign_cmd.add_argument("--depth", type=int, default=None)
    campaign_cmd.add_argument("--history", type=int, default=None)
    campaign_cmd.add_argument("--max-steps", type=_positive_int,
                              default=20000)
    campaign_cmd.add_argument("--progress", action="store_true",
                              help="print per-shard progress to stderr")
    campaign_cmd.add_argument("--trial-timeout", type=_trial_timeout,
                              default=None, metavar="SECONDS",
                              help="per-trial wall-clock budget; "
                                   "over-budget trials are recorded as "
                                   "timeouts, not hangs")
    campaign_cmd.add_argument("--hang-timeout", type=_positive_float,
                              default=None, metavar="SECONDS",
                              help="preemptive hang budget: a pool "
                                   "worker whose heartbeat stays stale "
                                   "this long is hard-killed and its "
                                   "shard retried (bit-identically); "
                                   "must exceed --trial-timeout")
    campaign_cmd.add_argument("--memory-limit-mb", type=_positive_float,
                              default=None, metavar="MIB",
                              help="soft per-worker RSS ceiling; "
                                   "workers above it are recycled "
                                   "without affecting results")
    campaign_cmd.add_argument("--checkpoint", default=None, metavar="PATH",
                              help="append completed trials to this JSONL "
                                   "journal as shards finish")
    campaign_cmd.add_argument("--resume", action="store_true",
                              help="skip trials already in --checkpoint")
    campaign_cmd.add_argument("--max-retries", type=_nonnegative_int,
                              default=2,
                              help="retries per shard lost to a dead "
                                   "worker before degrading to in-process "
                                   "execution")
    campaign_cmd.add_argument("--start-method", default=None,
                              choices=("fork", "spawn", "forkserver"),
                              help="multiprocessing start method "
                                   "(default: $REPRO_START_METHOD or fork)")
    add_sanitize(campaign_cmd)
    add_model(campaign_cmd)
    campaign_cmd.add_argument("--artifacts", default=None, metavar="DIR",
                              help="write a replayable JSON artifact here "
                                   "for every trial that finds a bug, "
                                   "errors, times out, or is flagged "
                                   "inconsistent")
    campaign_cmd.add_argument("--record-mode", default="on_failure",
                              choices=("on_failure", "always"),
                              help="how artifact traces are captured: "
                                   "'on_failure' (default) re-executes "
                                   "failing trials deterministically with "
                                   "recording on; 'always' records every "
                                   "trial as it runs")

    serve_cmd = sub.add_parser(
        "serve",
        help="run the campaign-job daemon (local HTTP/JSON API)")
    serve_cmd.add_argument("--state-dir", default=".repro-service",
                           metavar="DIR",
                           help="job records and checkpoint journals "
                                "live here; restarting with the same "
                                "dir resumes interrupted jobs")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=_nonnegative_int, default=None,
                           help="listen port (default 8642; 0 picks an "
                                "ephemeral port, advertised in "
                                "STATE_DIR/endpoint.json)")
    serve_cmd.add_argument("--rate", type=_positive_float, default=2.0,
                           help="sustained job submissions accepted "
                                "per second (token bucket)")
    serve_cmd.add_argument("--burst", type=_positive_int, default=10,
                           help="submission burst size before 429s")
    serve_cmd.add_argument("--start-method", default=None,
                           choices=("fork", "spawn", "forkserver"),
                           help="campaign pool start method (default: "
                                "forkserver — the daemon holds HTTP "
                                "threads, so fork is unsafe)")
    serve_cmd.add_argument("--tenants", default=None, metavar="FILE",
                           help="tenants JSON file; when given, every "
                                "request needs a bearer token and "
                                "per-tenant quotas apply")
    serve_cmd.add_argument("--audit-log", default=None, metavar="FILE",
                           help="append one JSONL line per API request "
                                "(tenant, route, outcome) here")
    serve_cmd.add_argument("--worker-budget", type=_positive_int,
                           default=None, metavar="N",
                           help="global cap on live campaign pool "
                                "workers across all concurrent jobs "
                                "(default: max(4, cpu count))")
    serve_cmd.add_argument("--max-concurrent-jobs", type=_positive_int,
                           default=2, metavar="N",
                           help="campaigns allowed to run at once, "
                                "splitting the worker budget fairly "
                                "across tenants (default 2)")
    serve_cmd.add_argument("--quiet", action="store_true",
                           help="suppress per-job log lines")

    job_cmd = sub.add_parser(
        "job", help="submit/inspect jobs on a running campaign daemon")
    job_sub = job_cmd.add_subparsers(dest="job_command", required=True)

    def add_url(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--url", default=None,
                         help="daemon base URL (default: "
                              "$REPRO_SERVICE_URL or "
                              "http://127.0.0.1:8642)")
        cmd.add_argument("--token", default=None,
                         help="bearer token for a daemon running with "
                              "--tenants (default: $REPRO_SERVICE_TOKEN)")

    submit_cmd = job_sub.add_parser(
        "submit", help="queue one campaign on the daemon")
    submit_cmd.add_argument("benchmark")
    submit_cmd.add_argument("--scheduler", default="pctwm")
    submit_cmd.add_argument("--trials", type=_positive_int, default=100)
    submit_cmd.add_argument("--seed", type=_nonnegative_int, default=0)
    submit_cmd.add_argument("--jobs", type=_positive_int, default=1)
    submit_cmd.add_argument("--depth", type=int, default=None)
    submit_cmd.add_argument("--history", type=int, default=None)
    submit_cmd.add_argument("--max-steps", type=_positive_int,
                            default=20000)
    submit_cmd.add_argument("--trial-timeout", type=_trial_timeout,
                            default=None, metavar="SECONDS")
    submit_cmd.add_argument("--hang-timeout", type=_positive_float,
                            default=None, metavar="SECONDS")
    submit_cmd.add_argument("--memory-limit-mb", type=_positive_float,
                            default=None, metavar="MIB")
    submit_cmd.add_argument("--max-retries", type=_nonnegative_int,
                            default=2)
    add_sanitize(submit_cmd)
    add_model(submit_cmd)
    submit_cmd.add_argument("--wait", action="store_true",
                            help="block until the job finishes and "
                                 "print its result")
    submit_cmd.add_argument("--idempotency-key", default=None,
                            metavar="KEY",
                            help="resubmitting the same key returns the "
                                 "existing job instead of a duplicate "
                                 "(default: auto-generated per submit)")
    add_url(submit_cmd)

    status_cmd = job_sub.add_parser(
        "status", help="one job's record, or all jobs without an id")
    status_cmd.add_argument("job_id", nargs="?", default=None)
    add_url(status_cmd)

    result_cmd = job_sub.add_parser(
        "result", help="a finished job's result summary")
    result_cmd.add_argument("job_id")
    result_cmd.add_argument("--wait", action="store_true",
                            help="poll until the job finishes")
    result_cmd.add_argument("--timeout", type=_positive_float,
                            default=None, metavar="SECONDS",
                            help="give up waiting after this long")
    add_url(result_cmd)

    cancel_cmd = job_sub.add_parser(
        "cancel", help="cancel a queued or running job")
    cancel_cmd.add_argument("job_id")
    add_url(cancel_cmd)

    drain_cmd = job_sub.add_parser(
        "drain", help="ask the daemon to finish its current job, "
                      "keep the queue, and exit")
    add_url(drain_cmd)

    litmus_cmd = sub.add_parser(
        "litmus", help="run the litmus gallery under every scheduler")
    litmus_cmd.add_argument("--trials", type=_positive_int, default=200)
    litmus_cmd.add_argument("--seed", type=_nonnegative_int, default=0)
    add_sanitize(litmus_cmd)
    add_model(litmus_cmd)

    fuzz_cmd = sub.add_parser(
        "fuzz",
        help="seeded program fuzzing: generate -> campaign -> shrink "
             "-> corpus (deterministic for a given seed)")
    fuzz_cmd.add_argument("--seed", type=_nonnegative_int, default=0)
    fuzz_cmd.add_argument("--count", type=_positive_int, default=20,
                          help="generated programs to campaign over")
    fuzz_cmd.add_argument("--trials", type=_positive_int, default=100,
                          help="campaign trials per generated program")
    fuzz_cmd.add_argument("--probe-trials", type=_positive_int, default=16,
                          help="in-process probe runs per (d, h) candidate "
                               "during coverage steering")
    fuzz_cmd.add_argument("--scheduler", default="pctwm",
                          help="campaign scheduler; pctwm/pct get an "
                               "adaptive parameter search, others run "
                               "with defaults")
    fuzz_cmd.add_argument("--jobs", type=_positive_int, default=1,
                          help="worker processes per campaign (output is "
                               "identical for any value)")
    fuzz_cmd.add_argument("--budget", type=_positive_float, default=None,
                          metavar="SECONDS",
                          help="soft wall-clock cap, checked between "
                               "programs; a budgeted run may truncate the "
                               "program list but never changes per-program "
                               "results")
    fuzz_cmd.add_argument("--corpus-dir", default=None, metavar="DIR",
                          help="write minimized, replay-validated corpus "
                               "entries here (one JSON per finding)")
    fuzz_cmd.add_argument("--max-threads", type=_positive_int, default=3)
    fuzz_cmd.add_argument("--max-ops", type=_positive_int, default=6,
                          help="per-thread operation bound (incl. any "
                               "embedded oracle)")
    fuzz_cmd.add_argument("--max-locations", type=_positive_int, default=4)
    fuzz_cmd.add_argument("--profile", default="mixed",
                          choices=("mixed", "determinate"),
                          help="'determinate' generates race-free programs "
                               "with an interleaving-invariant final state")
    fuzz_cmd.add_argument("--oracle", default="auto",
                          choices=("off", "auto", "always"),
                          help="embed a message-passing assertion oracle")
    fuzz_cmd.add_argument("--allow-nonatomic", action="store_true",
                          help="generate non-atomic (racy) accesses too")
    fuzz_cmd.add_argument("--differential", default="none",
                          choices=("none", "engine", "model", "both"),
                          help="also sweep the generated seeds through "
                               "fast-vs-reference ('engine') and/or "
                               "TSO-vs-C11 on determinate programs "
                               "('model'); exits nonzero on divergence")
    fuzz_cmd.add_argument(
        "--sanitize", default="sampled",
        choices=("off", "sampled", "all"),
        help="campaign-trial consistency auditing (default: sampled)")
    add_model(fuzz_cmd)

    replay_cmd = sub.add_parser(
        "replay", help="re-execute a bug artifact and verify the outcome")
    replay_cmd.add_argument("artifact", help="artifact JSON path (written "
                                             "by campaign --artifacts)")
    replay_cmd.add_argument("--minimize", action="store_true",
                            help="shrink the decision trace while "
                                 "preserving the bug (bug artifacts only)")
    replay_cmd.add_argument("--out", default=None, metavar="PATH",
                            help="write the minimized trace JSON here")

    bench_cmd = sub.add_parser(
        "bench",
        help="measure engine events/sec and write BENCH_engine.json")
    bench_cmd.add_argument("--quick", action="store_true",
                           help="small batches for CI smoke runs")
    bench_cmd.add_argument("--check", action="store_true",
                           help="compare engine and campaign throughput "
                                "against the committed trajectory and "
                                "fail on regressions")
    bench_cmd.add_argument("--out", default=None, metavar="PATH",
                           help="write the JSON trajectory here "
                                "(default: BENCH_engine.json unless "
                                "--check)")
    bench_cmd.add_argument("--baseline", default="BENCH_engine.json",
                           metavar="PATH",
                           help="committed trajectory --check compares "
                                "against")
    bench_cmd.add_argument("--tolerance", type=_positive_float,
                           default=0.30,
                           help="allowed fractional slowdown for --check")
    bench_cmd.add_argument("--seed", type=_nonnegative_int, default=0)
    bench_cmd.add_argument("--model", default="all",
                           choices=("all", "c11", "tso"),
                           help="which memory-model engine cells to "
                                "measure (default: all)")

    report_cmd = sub.add_parser(
        "report", help="regenerate the full evaluation as markdown")
    report_cmd.add_argument("--trials", type=_positive_int, default=100)
    report_cmd.add_argument("--runs", type=_positive_int, default=10)
    report_cmd.add_argument("--seed", type=_nonnegative_int, default=0)
    report_cmd.add_argument("--scale", type=_positive_int, default=1)
    report_cmd.add_argument("--jobs", type=_positive_int, default=1)
    report_cmd.add_argument("--out", default="evaluation_report.md")
    add_sanitize(report_cmd)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    command = args.command
    jobs = getattr(args, "jobs", 1)
    if command == "depth":
        return _cmd_depth(args)
    if command == "hunt":
        return _cmd_hunt(args)
    if command == "campaign":
        return _cmd_campaign(args)
    if command == "serve":
        return _cmd_serve(args)
    if command == "job":
        return _cmd_job(args)
    if command == "litmus":
        return _cmd_litmus(args)
    if command == "fuzz":
        return _cmd_fuzz(args)
    if command == "replay":
        return _cmd_replay(args)
    if command == "bench":
        from .bench import bench_command

        out = args.out
        if out is None and not args.check:
            out = "BENCH_engine.json"
        return bench_command(out=out, quick=args.quick, check=args.check,
                             baseline_path=args.baseline, seed=args.seed,
                             tolerance=args.tolerance, model=args.model)
    if command == "report":
        from .report import write_report

        path = write_report(args.out, trials=args.trials, runs=args.runs,
                            seed=args.seed, scale=args.scale, jobs=jobs,
                            sanitize=args.sanitize)
        print(f"report written to {path}")
        return 0
    if command in ("table1", "all"):
        print("== Table 1: benchmark characteristics ==")
        print(render_table1(table1(seed=args.seed)))
        print()
    sanitize = getattr(args, "sanitize", "off")
    if command in ("table2", "all"):
        print("== Table 2: hit rate vs bug depth ==")
        print(render_table2(table2(trials=args.trials, seed=args.seed,
                                   benchmarks=args.benchmarks, jobs=jobs,
                                   sanitize=sanitize)))
        print()
    if command in ("table3", "all"):
        print("== Table 3: hit rate vs history depth ==")
        print(render_table3(table3(trials=args.trials, seed=args.seed,
                                   benchmarks=args.benchmarks, jobs=jobs,
                                   sanitize=sanitize)))
        print()
    if command in ("table4", "all"):
        print("== Table 4: application performance ==")
        runs = getattr(args, "runs", 10)
        scale = getattr(args, "scale", 1)
        print(render_table4(table4(runs=runs, seed=args.seed, scale=scale)))
        print()
    if command in ("figure5", "all"):
        from .charts import bar_chart

        print("== Figure 5: highest observed hit rates ==")
        bars = figure5(trials=args.trials, seed=args.seed,
                       benchmarks=args.benchmarks, jobs=jobs)
        print(render_figure5(bars))
        print()
        print(bar_chart(bars))
        print()
    if command in ("figure6", "all"):
        from .charts import line_charts

        print("== Figure 6: inserted relaxed writes ==")
        series = figure6(trials=args.trials, seed=args.seed,
                         benchmarks=args.benchmarks, jobs=jobs)
        print(render_figure6(series))
        print()
        print(line_charts(series))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())


def _cmd_depth(args) -> int:
    from ..core.depth import empirical_bug_depth, estimate_parameters
    from ..workloads import BENCHMARKS

    info = BENCHMARKS[args.benchmark]
    est = estimate_parameters(info.build(), runs=5, seed=args.seed)
    print(f"{info.name}: {est}")
    depth = empirical_bug_depth(info.build(), max_depth=args.max_depth,
                                trials=args.trials, seed=args.seed,
                                k_com=est.k_com)
    paper = info.paper_depth
    print(f"empirical bug depth: {depth} (paper: {paper}, "
          f"calibrated: {info.measured_depth})")
    return 0


def _cmd_hunt(args) -> int:
    from ..analysis import format_trace
    from ..core.depth import estimate_parameters
    from ..core.pctwm import PCTWMScheduler
    from ..replay import find_and_record
    from ..workloads import BENCHMARKS

    info = BENCHMARKS[args.benchmark]
    est = estimate_parameters(info.build(), runs=3, seed=args.seed)
    depth = args.depth if args.depth is not None else info.measured_depth
    history = args.history if args.history is not None \
        else info.best_history
    print(f"hunting {info.name} with PCTWM(d={depth}, k_com={est.k_com}, "
          f"h={history})...")
    found = find_and_record(
        info.build,
        lambda seed: PCTWMScheduler(depth, est.k_com, history, seed=seed),
        max_attempts=args.attempts, base_seed=args.seed,
    )
    if found is None:
        print(f"no bug found in {args.attempts} attempts")
        return 1
    seed, result, trace = found
    print(f"found at seed {seed}: {result.bug_message}")
    print(format_trace(result.graph))
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(trace.to_json())
        print(f"trace saved to {args.out} "
              f"(replay with repro.replay.replay_run)")
    return 0


def _args_to_job_spec(args):
    """A validated-later :class:`repro.service.jobs.JobSpec` from CLI
    campaign/submit arguments (the two commands share flag names)."""
    from ..service.jobs import JobSpec

    return JobSpec(
        benchmark=args.benchmark,
        scheduler=args.scheduler,
        trials=args.trials,
        seed=args.seed,
        jobs=args.jobs,
        depth=args.depth,
        history=args.history,
        max_steps=args.max_steps,
        trial_timeout_s=args.trial_timeout,
        hang_timeout_s=args.hang_timeout,
        memory_limit_mb=args.memory_limit_mb,
        max_retries=args.max_retries,
        sanitize=args.sanitize,
        model=args.model,
        record_mode=getattr(args, "record_mode", "on_failure"),
        artifact_dir=getattr(args, "artifacts", None),
    )


def _cmd_campaign(args) -> int:
    from ..service.jobs import run_job
    from .parallel import print_progress

    spec = _args_to_job_spec(args)
    try:
        spec.validate()
    except ValueError as exc:
        print(str(exc))
        return 2
    try:
        result = run_job(
            spec,
            checkpoint=args.checkpoint,
            resume=args.resume,
            progress=print_progress if args.progress else None,
            start_method=args.start_method,
        )
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    except KeyboardInterrupt:
        print("interrupted before any trial completed")
        return 130
    print(result)
    print(f"  hits={result.hits} inconclusive={result.inconclusive} "
          f"steps={result.total_steps} events={result.total_events} "
          f"errors={result.errors} timeouts={result.timeouts}"
          + (f" inconsistent={result.inconsistent}"
             if args.sanitize != "off" else ""))
    for sample in result.error_samples:
        print(f"  error sample: {sample}")
    for sample in result.violation_samples:
        print(f"  SANITIZER violation: {sample}")
    if result.artifacts:
        print(f"  {len(result.artifacts)} artifact(s) in {args.artifacts} "
              f"(replay with: python -m repro replay "
              f"{result.artifacts[0]})")
    if result.resumed_trials:
        print(f"  resumed {result.resumed_trials} trials from "
              f"{args.checkpoint}")
    if result.jobs > 1:
        shard_s = " ".join(f"{t:.2f}" for t in result.shard_times_s)
        print(f"  jobs={result.jobs} wall={result.elapsed_s:.2f}s "
              f"shard walls: {shard_s}")
    if result.hang_preemptions or result.rss_recycles:
        print(f"  watchdog: {result.hang_preemptions} hang "
              f"preemption(s), {result.rss_recycles} RSS recycle(s) "
              f"(shards retried; results unaffected)")
    if result.interrupted:
        print(f"  interrupted: {result.completed}/{result.trials} trials "
              f"aggregated above")
        if args.checkpoint:
            print(f"  resume with: --checkpoint {args.checkpoint} --resume")
        return 130
    return 0


def _cmd_serve(args) -> int:
    from ..service.daemon import DEFAULT_PORT, CampaignDaemon

    port = args.port if args.port is not None else DEFAULT_PORT
    try:
        daemon = CampaignDaemon(
            args.state_dir, host=args.host, port=port,
            rate_per_s=args.rate, burst=args.burst,
            start_method=args.start_method, quiet=args.quiet,
            tenants_file=args.tenants, audit_log_path=args.audit_log,
            worker_budget=args.worker_budget,
            max_concurrent_jobs=args.max_concurrent_jobs)
    except (OSError, ValueError) as exc:
        # Unreadable/invalid tenants file, bad audit-log path, broken
        # state dir: an operator typo, not a crash.
        print(f"error: {exc}")
        return 2
    daemon.serve_forever()
    return 0


def _render_job(job: dict) -> str:
    spec = job.get("spec") or {}
    line = (f"{job['id']}: {job['status']} "
            f"{spec.get('benchmark')}/{spec.get('scheduler')} "
            f"x{spec.get('trials')}")
    if job.get("progress_trials"):
        line += f" ({job['progress_trials']} trials journaled)"
    if job.get("error"):
        line += f" error: {job['error']}"
    return line


def _print_service_summary(health: dict) -> None:
    """One-look service load: queue depth, running jobs, worker budget."""
    workers = health.get("workers") or {}
    running = health.get("running_jobs") or []
    line = (f"daemon {health.get('status', '?')}: "
            f"queue depth {health.get('queue_depth', 0)}, "
            f"{len(running)} running")
    if workers:
        line += (f", workers {workers.get('granted', 0)}"
                 f"/{workers.get('budget', '?')} granted "
                 f"({workers.get('utilization_pct', 0)}% of budget)")
    print(line)
    for tenant, row in sorted((health.get("tenants") or {}).items()):
        print(f"  tenant {tenant}: {row.get('queued', 0)} queued, "
              f"{row.get('running', 0)} running")


def _print_job_result(job: dict) -> int:
    import json as _json

    print(_render_job(job))
    if job.get("result") is not None:
        print(_json.dumps(job["result"], indent=2, sort_keys=True))
    status = job["status"]
    if status == "done":
        return 0
    return 130 if status in ("cancelled", "interrupted") else 1


def _cmd_job(args) -> int:
    import json as _json

    from ..service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url, token=args.token)
    try:
        if args.job_command == "submit":
            spec = {k: v for k, v in _args_to_job_spec(args)
                    .to_dict().items() if v is not None}
            job = client.submit(spec,
                                idempotency_key=args.idempotency_key)
            print(_render_job(job))
            if not args.wait:
                return 0
            return _print_job_result(client.wait(job["id"]))
        if args.job_command == "status":
            if args.job_id is None:
                _print_service_summary(client.health())
                jobs = client.list_jobs()
                if not jobs:
                    print("no jobs")
                for job in jobs:
                    print(_render_job(job))
                return 0
            print(_json.dumps(client.status(args.job_id),
                              indent=2, sort_keys=True))
            return 0
        if args.job_command == "result":
            if args.wait:
                return _print_job_result(
                    client.wait(args.job_id, timeout_s=args.timeout))
            return _print_job_result(client.status(args.job_id))
        if args.job_command == "cancel":
            print(_render_job(client.cancel(args.job_id)))
            return 0
        if args.job_command == "drain":
            client.drain()
            print("daemon draining: it will finish the current job, "
                  "keep the queue, and exit")
            return 0
    except ServiceError as exc:
        print(f"error: {exc.message}")
        return 2
    raise AssertionError(f"unhandled job command {args.job_command!r}")


def _cmd_litmus(args) -> int:
    from ..core import (
        C11TesterScheduler,
        NaiveRandomScheduler,
        PCTScheduler,
        PCTWMScheduler,
    )
    from ..core.depth import estimate_parameters
    from ..core.pos import POSScheduler
    from ..litmus import ALL_LITMUS
    from ..memory.model import resolve_model
    from .campaign import sanitize_this_trial

    model = resolve_model(args.model)
    if model.name == "tso":
        # The C11Tester baseline manipulates rf nondeterminism, which
        # TSO does not have; POS takes its column.
        columns = [
            ("naive", lambda est: lambda s: NaiveRandomScheduler(seed=s)),
            ("pos", lambda est: lambda s: POSScheduler(seed=s)),
            ("pct", lambda est: lambda s: PCTScheduler(2, est.k, seed=s)),
            ("pctwm",
             lambda est: lambda s: PCTWMScheduler(2, est.k_com, 2, seed=s)),
        ]
    else:
        columns = [
            ("naive", lambda est: lambda s: NaiveRandomScheduler(seed=s)),
            ("c11tester", lambda est: lambda s: C11TesterScheduler(seed=s)),
            ("pct", lambda est: lambda s: PCTScheduler(2, est.k, seed=s)),
            ("pctwm",
             lambda est: lambda s: PCTWMScheduler(2, est.k_com, 2, seed=s)),
        ]
    header = f"{'litmus':10s} " + " ".join(
        f"{label:>9s}" for label, _ in columns)
    print(f"model: {model.name}")
    print(header)
    print("-" * len(header))
    inconsistent = 0
    violation_samples: List[str] = []
    for name, factory in ALL_LITMUS.items():
        est = estimate_parameters(factory(), runs=3, seed=args.seed,
                                  model=model.name)
        rates = []
        for _, make_factory in columns:
            make = make_factory(est)
            hits = 0
            for i in range(args.trials):
                run = model.run_once(
                    factory(), make(args.seed + i), keep_graph=False,
                    sanitize=sanitize_this_trial(args.sanitize, i))
                hits += run.bug_found
                if run.inconsistent:
                    inconsistent += 1
                    if len(violation_samples) < 8:
                        violation_samples.extend(
                            f"{name}[{run.scheduler} trial {i}]: {v}"
                            for v in run.violations[:2])
            rates.append(100.0 * hits / args.trials)
        print(f"{name:10s} " + " ".join(f"{r:8.1f}%" for r in rates))
    if args.sanitize != "off":
        print(f"\nsanitizer ({args.sanitize}): "
              f"{inconsistent} inconsistent run(s)")
        for sample in violation_samples:
            print(f"  {sample}")
        if inconsistent:
            return 1
    return 0


def _cmd_fuzz(args) -> int:
    import sys
    import time as _time

    from ..fuzz import (
        FuzzConfig,
        engine_divergences,
        model_divergences,
        run_fuzz,
    )
    from .seeding import derive_trial_seed

    try:
        config = FuzzConfig(
            min_threads=min(2, args.max_threads),
            max_threads=args.max_threads,
            min_ops=min(2, args.max_ops),
            max_ops=args.max_ops,
            max_locations=args.max_locations,
            profile=args.profile,
            oracle=args.oracle,
            allow_nonatomic=args.allow_nonatomic,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    started = _time.monotonic()
    try:
        report = run_fuzz(
            base_seed=args.seed, count=args.count, model=args.model,
            scheduler=args.scheduler, trials=args.trials,
            probe_trials=args.probe_trials, jobs=args.jobs,
            config=config, corpus_dir=args.corpus_dir,
            budget_s=args.budget, sanitize=args.sanitize)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Timings go to stderr: stdout is bit-identical across runs and jobs.
    print("\n".join(report.render()))
    status = 0
    seeds = [derive_trial_seed(args.seed, i) for i in range(args.count)]
    if args.differential in ("engine", "both"):
        divergences = engine_divergences(seeds, config,
                                         dump_dir=args.corpus_dir)
        print(f"differential engine: {len(divergences)} divergence(s) "
              f"over {len(seeds)} seeds")
        for record in divergences:
            print(f"  {record['kind']} gen_seed={record['gen_seed']} "
                  f"seed={record['seed']} model={record['model']}: "
                  f"{record['detail']}")
        status = status or (1 if divergences else 0)
    if args.differential in ("model", "both"):
        divergences = model_divergences(seeds, config,
                                        dump_dir=args.corpus_dir)
        print(f"differential model: {len(divergences)} divergence(s) "
              f"over {len(seeds)} seeds")
        for record in divergences:
            print(f"  {record['kind']} gen_seed={record['gen_seed']} "
                  f"seed={record['seed']} model={record['model']}: "
                  f"{record['detail']}")
        status = status or (1 if divergences else 0)
    print(f"fuzz: {_time.monotonic() - started:.1f}s", file=sys.stderr)
    return status


def _cmd_replay(args) -> int:
    from ..runtime.errors import render_diagnostics
    from .artifact import load_artifact, replay_artifact

    try:
        artifact = load_artifact(args.artifact)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load artifact {args.artifact!r}: {exc}")
        return 2
    try:
        report = replay_artifact(artifact, minimize=args.minimize)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    print(report.render())
    if artifact.diagnostics:
        print()
        print(render_diagnostics(artifact.diagnostics))
    if report.minimized is not None and args.out:
        with open(args.out, "w") as fh:
            fh.write(report.minimized.to_json())
        print(f"minimized trace saved to {args.out}")
    return 0 if report.matched else 1
