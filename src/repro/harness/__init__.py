"""Test-campaign harness: hit-rate campaigns and the paper's tables/figures."""

from .artifact import (
    BugArtifact,
    ReplayReport,
    load_artifact,
    replay_artifact,
)
from .bench import (
    check_against_baseline,
    environment_fingerprint,
    run_bench,
)
from .coverage import (
    CoverageReport,
    behaviour_shape,
    coverage_campaign,
    execution_signature,
    weak_read_count,
)
from .campaign import (
    CampaignResult,
    TrialRecord,
    c11tester_factory,
    naive_factory,
    pct_factory,
    pctwm_factory,
    run_campaign,
    run_trial,
)
from .checkpoint import (
    TrialJournal,
    load_journal,
)
from .parallel import (
    CampaignProgress,
    print_progress,
    run_campaign_parallel,
)
from .watchdog import (
    HeartbeatBoard,
    Watchdog,
    WatchdogStats,
)
from .seeding import derive_trial_seed
from .figures import (
    Figure5Bar,
    Figure6Series,
    figure5,
    figure6,
    render_figure5,
    render_figure6,
)
from .charts import bar_chart, line_chart, line_charts
from .report import generate_report, write_report
from .stats import (
    mean,
    relative_stdev_pct,
    significantly_greater,
    stdev,
    two_proportion_z,
    wilson_interval,
)
from .tables import (
    Table1Row,
    Table2Row,
    Table3Row,
    Table4Row,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    table1,
    table2,
    table3,
    table4,
)

__all__ = [
    "BugArtifact",
    "CampaignProgress",
    "CampaignResult",
    "check_against_baseline",
    "environment_fingerprint",
    "run_bench",
    "HeartbeatBoard",
    "ReplayReport",
    "TrialJournal",
    "TrialRecord",
    "Watchdog",
    "WatchdogStats",
    "bar_chart",
    "load_artifact",
    "replay_artifact",
    "derive_trial_seed",
    "load_journal",
    "print_progress",
    "run_campaign_parallel",
    "run_trial",
    "line_chart",
    "line_charts",
    "CoverageReport",
    "behaviour_shape",
    "coverage_campaign",
    "execution_signature",
    "weak_read_count",
    "Figure5Bar",
    "Figure6Series",
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "Table4Row",
    "c11tester_factory",
    "figure5",
    "figure6",
    "generate_report",
    "mean",
    "naive_factory",
    "pct_factory",
    "pctwm_factory",
    "relative_stdev_pct",
    "render_figure5",
    "render_figure6",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "run_campaign",
    "significantly_greater",
    "stdev",
    "two_proportion_z",
    "table1",
    "table2",
    "table3",
    "table4",
    "wilson_interval",
    "write_report",
]
