"""Engine throughput benchmarking: the ``repro bench`` subcommand.

Measures the execution engine's events/second per scheduler on the two
largest application workloads (silo, iris), plus serial vs parallel
campaign throughput, and writes the result as a machine-readable JSON
trajectory (``BENCH_engine.json``) with an environment fingerprint.

The committed file doubles as a regression gate: ``repro bench --check``
re-measures and fails when any (workload, scheduler) cell — or the
serial campaign trials/second — falls more than ``tolerance`` below the
committed number; the CI perf-smoke job runs exactly that in ``--quick``
mode.

Methodology: each cell runs a short warmup, then takes the *best* of
``repeats`` timed batches (best-of defends against scheduler noise and
cache-cold outliers on shared CI machines; variance within a batch is
already amortized over dozens of runs).
"""

from __future__ import annotations

import json
import math
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, Optional

from ..core.factory import SchedulerSpec
from ..memory.model import resolve_model
from ..runtime import run_once
from ..workloads.registry import ProgramSpec
from .campaign import run_campaign
from .parallel import run_campaign_parallel

#: Scheduler configurations benchmarked, mirroring
#: benchmarks/test_engine_throughput.py.
SCHEDULER_SPECS: Dict[str, SchedulerSpec] = {
    "naive": SchedulerSpec("naive"),
    "c11tester": SchedulerSpec("c11tester"),
    "pct": SchedulerSpec("pct", {"depth": 2, "k_events": 120}),
    "pctwm": SchedulerSpec("pctwm", {"depth": 2, "k_com": 100,
                                     "history": 2}),
    "pos": SchedulerSpec("pos"),
}

#: The scheduler cells measured under the TSO backend — the c11tester
#: baseline manipulates rf nondeterminism, which TSO does not have.
TSO_SCHEDULER_SPECS: Dict[str, SchedulerSpec] = {
    name: spec for name, spec in SCHEDULER_SPECS.items()
    if name != "c11tester"
}

#: Suffix appended to a workload key for its TSO engine cells in
#: ``engine_events_per_sec`` (e.g. ``"silo@tso"``).
TSO_CELL_SUFFIX = "@tso"

#: The two largest application models: enough events per run that the
#: per-run setup cost does not dominate the events/sec signal.
WORKLOAD_SPECS: Dict[str, ProgramSpec] = {
    "silo": ProgramSpec("silo", kind="app",
                        params={"workers": 3, "transactions": 6}),
    "iris": ProgramSpec("iris", kind="app"),
}

MAX_STEPS = 100_000

#: Events/sec measured with this same harness at the last commit before
#: the fast-path engine landed (the graph/axiom code now kept as the
#: reference oracle was the only execution path).  Kept in the output so
#: the committed trajectory always shows the before/after of the
#: fast-path work; regenerating the file does not lose the "before".
PRE_FASTPATH_BASELINE = {
    "silo": {"naive": 48975, "c11tester": 56282, "pct": 43590,
             "pctwm": 41572, "pos": 45417},
    "iris": {"naive": 53035, "c11tester": 55651, "pct": 51423,
             "pctwm": 42964, "pos": 52905},
}

#: Campaign trials/second (silo/pctwm, full mode) measured at the last
#: commit before the campaign fast path landed (cold per-trial
#: scheduler/program/executor construction, always-on recording, per-line
#: journal writes).  Kept for the same reason as the engine baseline: the
#: committed trajectory always shows the before/after of the fast-path
#: work under ``campaign_fastpath``.
PRE_CAMPAIGN_FASTPATH_BASELINE = {
    "trials": 48,
    "serial_trials_per_sec": 449.99,
}


def environment_fingerprint() -> dict:
    """Enough platform detail to judge whether two runs are comparable."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def measure_events_per_sec(program_spec: ProgramSpec,
                           scheduler_spec: SchedulerSpec,
                           runs: int, repeats: int,
                           base_seed: int = 0,
                           model: str = "c11") -> dict:
    """Best-of-``repeats`` events/second over batches of ``runs`` runs."""
    run = run_once if model == "c11" else resolve_model(model).run_once
    seed = base_seed
    for _ in range(max(runs // 4, 1)):  # warmup: JIT-free, but cache-warm
        run(program_spec.build(), scheduler_spec(seed),
            keep_graph=False, max_steps=MAX_STEPS)
        seed += 1
    best = 0.0
    events = 0
    for _ in range(repeats):
        batch_events = 0
        start = time.perf_counter()
        for _ in range(runs):
            result = run(program_spec.build(), scheduler_spec(seed),
                         keep_graph=False, max_steps=MAX_STEPS)
            batch_events += result.k
            seed += 1
        elapsed = time.perf_counter() - start
        rate = batch_events / elapsed if elapsed > 0 else 0.0
        if rate > best:
            best = rate
            events = batch_events
    return {"events_per_sec": round(best, 1), "runs": runs,
            "events_per_batch": events}


def measure_campaign_throughput(trials: int, jobs: int,
                                base_seed: int = 0,
                                repeats: int = 2) -> dict:
    """Serial vs ``--jobs N`` campaign trials/second on silo under PCTWM.

    Same methodology as the engine cells: a warmup campaign first, then
    the best of ``repeats`` timed campaigns per mode.
    """
    program = WORKLOAD_SPECS["silo"]
    scheduler = SCHEDULER_SPECS["pctwm"]
    run_campaign(program, scheduler, trials=max(trials // 4, 1),
                 base_seed=base_seed + trials, max_steps=MAX_STEPS)
    serial_s = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        run_campaign(program, scheduler, trials=trials,
                     base_seed=base_seed, max_steps=MAX_STEPS)
        serial_s = min(serial_s, time.perf_counter() - start)
    parallel_s = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        run_campaign_parallel(program, scheduler, trials=trials,
                              base_seed=base_seed, max_steps=MAX_STEPS,
                              jobs=jobs)
        parallel_s = min(parallel_s, time.perf_counter() - start)
    return {
        "trials": trials,
        "serial_trials_per_sec": round(trials / serial_s, 2),
        f"jobs={jobs}_trials_per_sec": round(trials / parallel_s, 2),
        "jobs": jobs,
        "speedup": round(serial_s / parallel_s, 2) if parallel_s else None,
    }


def run_bench(quick: bool = False, seed: int = 0,
              campaign: bool = True,
              models: tuple = ("c11", "tso")) -> dict:
    """Measure the full trajectory and return the JSON-ready document.

    ``models`` selects which memory-model engines get cells: the C11
    cells keep their historical workload keys; TSO cells live under
    ``<workload>@tso`` in the same table, so the ``--check`` gate covers
    both engines with one mechanism.
    """
    runs = 12 if quick else 60
    repeats = 2 if quick else 3
    engine: Dict[str, Dict[str, dict]] = {}
    if "c11" in models:
        for workload, program_spec in WORKLOAD_SPECS.items():
            engine[workload] = {}
            for name, scheduler_spec in SCHEDULER_SPECS.items():
                cell = measure_events_per_sec(program_spec, scheduler_spec,
                                              runs=runs, repeats=repeats,
                                              base_seed=seed)
                engine[workload][name] = cell
    if "tso" in models:
        for workload, program_spec in WORKLOAD_SPECS.items():
            key = workload + TSO_CELL_SUFFIX
            engine[key] = {}
            for name, scheduler_spec in TSO_SCHEDULER_SPECS.items():
                cell = measure_events_per_sec(program_spec, scheduler_spec,
                                              runs=runs, repeats=repeats,
                                              base_seed=seed, model="tso")
                engine[key][name] = cell
    doc = {
        "meta": {
            "tool": "repro bench",
            "mode": "quick" if quick else "full",
            "seed": seed,
            "environment": environment_fingerprint(),
        },
        "engine_events_per_sec": {
            workload: {
                name: cell["events_per_sec"]
                for name, cell in cells.items()
            }
            for workload, cells in engine.items()
        },
        "baseline_pre_fastpath": PRE_FASTPATH_BASELINE,
    }
    if campaign:
        jobs = min(4, os.cpu_count() or 1)
        trials = 16 if quick else 48
        throughput = measure_campaign_throughput(
            trials=trials, jobs=jobs, base_seed=seed
        )
        doc["campaign_throughput"] = throughput
        before = PRE_CAMPAIGN_FASTPATH_BASELINE["serial_trials_per_sec"]
        doc["campaign_fastpath"] = {
            "before": dict(PRE_CAMPAIGN_FASTPATH_BASELINE),
            "after": {
                "trials": throughput["trials"],
                "serial_trials_per_sec":
                    throughput["serial_trials_per_sec"],
            },
            "speedup": round(
                throughput["serial_trials_per_sec"] / before, 2
            ),
        }
    return doc


def check_against_baseline(current: dict, baseline: dict,
                           tolerance: float = 0.30) -> list:
    """Regression check: events/sec cells vs the committed trajectory.

    Returns human-readable failure strings for every cell that fell more
    than ``tolerance`` below the committed number.  Cells present in only
    one document are skipped (schedulers/workloads may be added over
    time); improvements never fail.
    """
    failures = []
    committed = baseline.get("engine_events_per_sec", {})
    measured = current.get("engine_events_per_sec", {})
    for workload, cells in committed.items():
        for name, committed_rate in cells.items():
            rate = measured.get(workload, {}).get(name)
            if rate is None or not committed_rate:
                continue
            floor = committed_rate * (1.0 - tolerance)
            if rate < floor:
                failures.append(
                    f"{workload}/{name}: {rate:.0f} events/s is "
                    f"{(1 - rate / committed_rate) * 100:.0f}% below the "
                    f"committed {committed_rate:.0f} "
                    f"(tolerance {tolerance * 100:.0f}%)"
                )
    committed_rate = (baseline.get("campaign_throughput") or {}
                      ).get("serial_trials_per_sec")
    rate = (current.get("campaign_throughput") or {}
            ).get("serial_trials_per_sec")
    if committed_rate and rate is not None:
        floor = committed_rate * (1.0 - tolerance)
        if rate < floor:
            failures.append(
                f"campaign serial: {rate:.0f} trials/s is "
                f"{(1 - rate / committed_rate) * 100:.0f}% below the "
                f"committed {committed_rate:.0f} "
                f"(tolerance {tolerance * 100:.0f}%)"
            )
    return failures


def render_bench(doc: dict) -> str:
    """Terminal-friendly summary of a trajectory document."""
    lines = []
    env = doc["meta"]["environment"]
    lines.append(
        f"engine throughput ({doc['meta']['mode']} mode, "
        f"python {env['python']}, {env['cpu_count']} cpus)"
    )
    baseline = doc.get("baseline_pre_fastpath", {})
    for workload, cells in doc["engine_events_per_sec"].items():
        lines.append(f"  {workload}:")
        for name, rate in cells.items():
            before = baseline.get(workload, {}).get(name)
            suffix = ""
            if before:
                suffix = f"  (pre-fastpath {before}, {rate / before:.2f}x)"
            lines.append(f"    {name:<10} {rate:>9.0f} events/s{suffix}")
    campaign = doc.get("campaign_throughput")
    if campaign:
        jobs = campaign["jobs"]
        lines.append(
            f"  campaign (silo/pctwm, {campaign['trials']} trials): "
            f"{campaign['serial_trials_per_sec']} trials/s serial, "
            f"{campaign[f'jobs={jobs}_trials_per_sec']} trials/s "
            f"with --jobs {jobs} ({campaign['speedup']}x)"
        )
        fastpath = doc.get("campaign_fastpath")
        if fastpath:
            lines.append(
                f"  campaign fast path: "
                f"{fastpath['before']['serial_trials_per_sec']} -> "
                f"{fastpath['after']['serial_trials_per_sec']} trials/s "
                f"serial ({fastpath['speedup']}x)"
            )
    return "\n".join(lines)


def bench_command(out: Optional[str], quick: bool, check: bool,
                  baseline_path: str, seed: int,
                  tolerance: float = 0.30, model: str = "all") -> int:
    """Implementation of ``python -m repro bench``; returns exit code."""
    models = ("c11", "tso") if model == "all" else (model,)
    doc = run_bench(quick=quick, seed=seed, models=models)
    print(render_bench(doc))
    if out:
        path = Path(out)
        path.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"trajectory written to {path}")
    if check:
        baseline_file = Path(baseline_path)
        if not baseline_file.exists():
            print(f"no baseline at {baseline_file}; nothing to check "
                  "against", file=sys.stderr)
            return 1
        baseline = json.loads(baseline_file.read_text())
        failures = check_against_baseline(doc, baseline,
                                          tolerance=tolerance)
        if failures:
            print("perf regression vs committed trajectory:",
                  file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"perf check OK (within {tolerance * 100:.0f}% of "
              f"{baseline_file})")
    return 0
