"""Append-only trial journal: checkpoint/resume for long campaigns.

Paper-scale campaigns (500-1000 trials per cell, many cells) can run for
hours; losing a half-finished campaign to a crash or an operator SIGINT
wastes all completed work.  The journal makes campaigns durable:

* **Append-only JSONL.**  The first line is a header describing the
  campaign (program, scheduler, base seed, trial count, step budget);
  every subsequent line is one completed :class:`TrialRecord`.  Records
  are flushed *and fsynced* per append, so a SIGKILL loses at most the
  in-flight shard.
* **Torn lines are tolerated and detected.**  A process killed
  mid-write leaves a partial last line; :func:`load_journal` skips
  unparseable lines instead of refusing the whole file.  Every line is
  additionally CRC-stamped (``crc32`` of its canonical serialization),
  so a tear that happens to still parse — or silent bit rot — is caught
  and the affected trial simply re-runs on resume.  Lines written
  before stamping existed carry no checksum and stay loadable.
* **Interrupts are journaled too.**  A campaign stopped by SIGINT or
  SIGTERM appends a structured ``interrupt`` event (signal name, trials
  completed) before closing, so operators and the campaign service can
  tell a drained journal from one whose writer was killed outright.
  Event lines are ignored by resume — only ``trial`` records fold.
* **Resume is exact.**  Trial seeds depend only on ``(base_seed,
  index)``, and the journal stores per-trial elapsed times verbatim
  (JSON floats round-trip exactly), so a resumed campaign folds to
  aggregates bit-identical to an uninterrupted run.
* **Resume is validated.**  A journal written for a different campaign
  (other program, scheduler, base seed, trial count, or step budget)
  is rejected with a clear error rather than silently merged.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Dict, IO, Iterable, Optional, Tuple

from . import faultrig
from .campaign import TrialRecord
from .fsutil import fsync_dir, stamp_crc, verify_crc

__all__ = [
    "JOURNAL_VERSION",
    "TrialJournal",
    "load_journal",
]

JOURNAL_VERSION = 1

#: Header fields that must match between a journal and the campaign
#: resuming from it.  ``sanitize`` is included because resuming a
#: sanitized campaign without the sanitizer (or vice versa) would fold
#: trials audited under different rules into one aggregate; journals
#: from before the field existed simply lack it and stay compatible.
#: ``model`` likewise: trials executed under different memory models
#: must never fold into one aggregate, and pre-model journals resume as
#: implicit c11.
_COMPAT_FIELDS = ("program", "scheduler", "base_seed", "trials", "max_steps",
                  "sanitize", "model")


def _record_to_obj(record: TrialRecord) -> dict:
    obj = asdict(record)
    obj["kind"] = "trial"
    return obj


def _record_from_obj(obj: dict) -> TrialRecord:
    fields = {k: obj[k] for k in ("index", "bug_found", "limit_exceeded",
                                  "steps", "k", "elapsed_s")}
    fields["operations"] = obj.get("operations", 0)
    fields["timed_out"] = obj.get("timed_out", False)
    fields["error"] = obj.get("error")
    fields["inconsistent"] = obj.get("inconsistent", False)
    fields["violations"] = list(obj.get("violations") or [])
    fields["artifact"] = obj.get("artifact")
    return TrialRecord(**fields)


def load_journal(path: str) -> Tuple[Optional[dict],
                                     Dict[int, TrialRecord]]:
    """Read a journal back: ``(header, {trial_index: record})``.

    Missing file -> ``(None, {})``.  Unparseable (torn) lines are
    skipped; duplicate indices keep the last occurrence.
    """
    header: Optional[dict] = None
    records: Dict[int, TrialRecord] = {}
    if not os.path.exists(path):
        return None, records
    with open(path, "r") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn line from a killed writer
            if not isinstance(obj, dict):
                continue
            if not verify_crc(obj):
                continue  # stamped line whose content no longer matches
            kind = obj.get("kind")
            if kind == "campaign-journal" and header is None:
                header = obj
            elif kind == "trial":
                try:
                    record = _record_from_obj(obj)
                except (KeyError, TypeError):
                    continue
                records[record.index] = record
    return header, records


def check_compatible(header: dict, meta: dict) -> None:
    """Reject resuming a journal written for a different campaign."""
    mismatches = [
        f"{name}: journal={header.get(name)!r} campaign={meta.get(name)!r}"
        for name in _COMPAT_FIELDS
        if name in header and header.get(name) != meta.get(name)
    ]
    if mismatches:
        raise ValueError(
            "checkpoint journal does not match this campaign ("
            + "; ".join(mismatches) + ")"
        )


class TrialJournal:
    """Durable append-only writer for completed campaign trials.

    Usage::

        journal = TrialJournal(path)
        done = journal.start(meta, resume=True)   # {} on a fresh run
        ...
        journal.append(shard.records)             # after each shard
        journal.close()
    """

    def __init__(self, path: str):
        self.path = path
        self._fh: Optional[IO[str]] = None

    def start(self, meta: dict, resume: bool = False,
              ) -> Dict[int, TrialRecord]:
        """Open the journal and return already-completed records.

        Without ``resume`` any existing file is truncated and a fresh
        header written.  With ``resume``, the existing journal is
        validated against ``meta`` and its records returned so the
        campaign can skip them.
        """
        done: Dict[int, TrialRecord] = {}
        header: Optional[dict] = None
        if resume:
            header, done = load_journal(self.path)
            if header is not None:
                check_compatible(header, meta)
        existed = os.path.exists(self.path)
        mode = "a" if resume and existed else "w"
        self._fh = open(self.path, mode)
        if not existed:
            # A freshly created journal only durably *exists* once its
            # directory entry is flushed; without this, a crash right
            # after the first fsynced append could still lose the file.
            fsync_dir(os.path.dirname(os.path.abspath(self.path)) or ".")
        if header is None:
            self._write_line(dict(meta, kind="campaign-journal",
                                  version=JOURNAL_VERSION))
            self._sync()
        return done

    def append_event(self, kind: str, **fields) -> None:
        """Durably append one structured non-trial event line.

        Events share the journal's durability contract (single write,
        flush, fsync) but are invisible to :func:`load_journal`'s record
        map — resume semantics never depend on them.  Used for interrupt
        marks (``kind="interrupt"``) and free for future lifecycle
        events; ``kind`` must not collide with the reserved line kinds.
        """
        if self._fh is None:
            raise ValueError("journal is not open; call start() first")
        if kind in ("trial", "campaign-journal"):
            raise ValueError(f"reserved journal line kind {kind!r}")
        self._write_line(dict(fields, kind=kind))
        self._sync()

    def append(self, records: Iterable[TrialRecord]) -> None:
        """Journal completed trials durably (flush + fsync).

        The shard's lines are serialized into one buffer and written with
        a single write/flush/fsync, so journal cost is per *shard*, not
        per trial, and never re-serializes previously appended state.
        """
        if self._fh is None:
            raise ValueError("journal is not open; call start() first")
        lines = [json.dumps(stamp_crc(_record_to_obj(record)),
                            sort_keys=True)
                 for record in records]
        if not lines:
            return
        payload = "\n".join(lines) + "\n"
        if faultrig.should_fire("torn-write") is not None:
            # Chaos mode: persist only half the buffer, exactly what a
            # crash or ENOSPC mid-append leaves behind.  The CRC stamps
            # make the tear detectable and resume re-runs those trials.
            payload = payload[:max(1, len(payload) // 2)]
        self._fh.write(payload)
        self._sync()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TrialJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _write_line(self, obj: dict) -> None:
        assert self._fh is not None
        self._fh.write(json.dumps(stamp_crc(obj), sort_keys=True) + "\n")

    def _sync(self) -> None:
        assert self._fh is not None
        self._fh.flush()
        os.fsync(self._fh.fileno())
