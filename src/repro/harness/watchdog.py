"""Supervisor-side watchdog: heartbeat board, hang and RSS preemption.

The per-trial wall-clock budget (``trial_timeout_s``) is enforced
*cooperatively* inside the executor's step loop, which means it can only
fire between scheduler steps.  A worker that wedges anywhere else — a
program factory stuck in native code, an OS-level stall, an unbounded
allocation — stops making steps and therefore can never time itself out;
without supervision it hangs the whole campaign forever.

This module closes that gap with a heartbeat protocol:

* **Workers stamp a shared heartbeat slot per trial boundary.**  The
  :class:`HeartbeatBoard` is a pair of ``multiprocessing`` shared arrays
  (monotonic stamps + the stamping worker's pid), one slot per pool
  worker.  Slots claim themselves in the pool initializer, stamp on every
  trial start, and zero themselves when the worker goes idle — so an
  *idle* worker (waiting for its next shard) is never mistaken for a
  wedged one.
* **The supervisor runs a watchdog thread.**  :class:`Watchdog` samples
  the board at a fraction of the hang timeout; a slot that stays *busy*
  without a fresh stamp for longer than ``hang_timeout_s`` identifies a
  wedged worker, which is hard-killed (``SIGKILL``).  The kill breaks the
  worker pool, which the shard supervisor already knows how to survive:
  the lost shards re-enter the bounded-retry/backoff path, and because
  trial seeds derive from ``(base_seed, index)`` the retried results are
  bit-identical.  The net effect is that the trial wall-clock budget
  becomes *preemptive* — enforced from outside the wedged process.
* **RSS is sampled against a soft memory ceiling.**  With
  ``memory_limit_mb`` set, each live worker's resident set (read from
  ``/proc/<pid>/statm``) is checked every scan; a worker above the
  ceiling is recycled the same way (kill + pool rebuild + retry), bounding
  a leaking fleet's footprint without affecting results.

Everything here is observable: :class:`WatchdogStats` counts scans and
kills and records the most recent busy-slot heartbeat ages, which the
campaign service surfaces on its liveness endpoint.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = [
    "HeartbeatBoard",
    "Watchdog",
    "WatchdogStats",
    "WorkerHeartbeat",
    "read_rss_mb",
]

#: Heartbeat stamp meaning "this slot's worker is idle" (not running a
#: shard); idle workers are exempt from hang detection — they are parked
#: inside the pool's task loop, not inside campaign code.
IDLE = 0.0


class WatchdogStats:
    """Mutable watchdog counters, shared with whoever is observing.

    Plain attribute updates under the GIL: single-writer (the watchdog
    thread), any number of readers (liveness endpoints, final campaign
    accounting).  ``snapshot()`` returns a JSON-ready dict.
    """

    def __init__(self) -> None:
        #: Completed board scans.
        self.scans = 0
        #: Workers hard-killed for a stale busy heartbeat.
        self.hang_kills = 0
        #: Workers recycled for exceeding the RSS ceiling.
        self.rss_kills = 0
        #: ``time.monotonic()`` of the last completed scan (0 = never).
        self.last_scan_monotonic = 0.0
        #: Busy-slot heartbeat ages (seconds) observed by the last scan.
        self.busy_heartbeat_ages: List[float] = []
        #: Live worker RSS readings (MiB) from the last scan that
        #: sampled memory (empty when no ceiling is configured).
        self.worker_rss_mb: List[float] = []

    @property
    def preemptions(self) -> int:
        """Total workers the watchdog killed, for any reason."""
        return self.hang_kills + self.rss_kills

    def snapshot(self) -> dict:
        age = (time.monotonic() - self.last_scan_monotonic
               if self.last_scan_monotonic else None)
        return {
            "scans": self.scans,
            "hang_kills": self.hang_kills,
            "rss_kills": self.rss_kills,
            "last_scan_age_s": round(age, 3) if age is not None else None,
            "busy_heartbeat_ages_s": [round(a, 3)
                                      for a in self.busy_heartbeat_ages],
            "worker_rss_mb": [round(m, 1) for m in self.worker_rss_mb],
        }


class WorkerHeartbeat:
    """Worker-process handle to its claimed heartbeat slot."""

    __slots__ = ("_stamps", "slot")

    def __init__(self, stamps, slot: int):
        self._stamps = stamps
        self.slot = slot

    def beat(self) -> None:
        """Stamp the slot busy-and-alive (one shared float store)."""
        self._stamps[self.slot] = time.monotonic()

    def idle(self) -> None:
        """Mark the slot idle: exempt from hang detection until the
        next :meth:`beat`."""
        self._stamps[self.slot] = IDLE


class HeartbeatBoard:
    """Shared heartbeat slots for one worker pool lifetime.

    Built in the supervisor from the pool's multiprocessing context and
    shipped to workers through the pool initializer (shared ``ctypes``
    arrays pickle via fd passing under every start method).  One board
    serves exactly one pool: pools rebuilt after a crash get a fresh
    board, so a lingering worker of the torn-down pool can never stamp —
    and thereby mask — a slot belonging to its replacement.
    """

    def __init__(self, ctx, slots: int):
        if slots < 1:
            raise ValueError("a heartbeat board needs at least one slot")
        self.slots = slots
        self._next_slot = ctx.Value("i", 0)           # synchronized claim
        self._stamps = ctx.Array("d", slots, lock=False)
        self._pids = ctx.Array("l", slots, lock=False)

    # -- worker side ---------------------------------------------------------

    def claim(self) -> WorkerHeartbeat:
        """Claim the next free slot for this worker process.

        Called once, from the pool initializer.  The modulo is defensive:
        a pool never initializes more workers than it has slots.
        """
        with self._next_slot.get_lock():
            slot = self._next_slot.value % self.slots
            self._next_slot.value += 1
        self._pids[slot] = os.getpid()
        return WorkerHeartbeat(self._stamps, slot)

    # -- supervisor side -----------------------------------------------------

    def snapshot(self) -> List[Tuple[int, int, float]]:
        """Claimed slots as ``(slot, pid, stamp)``; stamp 0.0 = idle."""
        return [(i, self._pids[i], self._stamps[i])
                for i in range(self.slots) if self._pids[i]]


def read_rss_mb(pid: int) -> Optional[float]:
    """Resident set size of ``pid`` in MiB via ``/proc`` (None if
    unreadable — non-Linux platform, or the process already exited)."""
    try:
        with open(f"/proc/{pid}/statm", "rb") as fh:
            fields = fh.read().split()
        pages = int(fields[1])
    except (OSError, IndexError, ValueError):
        return None
    return pages * _PAGE_SIZE / (1024.0 * 1024.0)


try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):  # pragma: no cover
    _PAGE_SIZE = 4096


class Watchdog(threading.Thread):
    """Background thread that preempts wedged or bloated pool workers.

    ``live_pids`` narrows kills to processes the current pool actually
    owns — a recycled OS pid that happens to linger on the board can
    never be signalled.  Kills are ``SIGKILL`` on purpose: a wedged
    worker is by definition not running Python, so nothing gentler is
    guaranteed to be observed.
    """

    def __init__(self, board: HeartbeatBoard,
                 live_pids: Callable[[], Sequence[int]],
                 hang_timeout_s: Optional[float] = None,
                 memory_limit_mb: Optional[float] = None,
                 stats: Optional[WatchdogStats] = None,
                 poll_s: Optional[float] = None,
                 warn: Optional[Callable[[str], None]] = None):
        super().__init__(name="campaign-watchdog", daemon=True)
        if hang_timeout_s is None and memory_limit_mb is None:
            raise ValueError(
                "a watchdog needs a hang timeout or a memory ceiling")
        self.board = board
        self.live_pids = live_pids
        self.hang_timeout_s = hang_timeout_s
        self.memory_limit_mb = memory_limit_mb
        self.stats = stats if stats is not None else WatchdogStats()
        if poll_s is None:
            poll_s = 0.5 if hang_timeout_s is None \
                else min(max(hang_timeout_s / 4.0, 0.05), 0.5)
        self.poll_s = poll_s
        self._warn = warn or (lambda message: None)
        # NB: not ``_stop`` — Thread internals call ``self._stop()``.
        self._stop_event = threading.Event()

    def stop(self, join_timeout_s: float = 2.0) -> None:
        self._stop_event.set()
        self.join(timeout=join_timeout_s)

    def run(self) -> None:  # pragma: no cover - exercised via campaigns
        while not self._stop_event.wait(self.poll_s):
            self.scan()

    def scan(self) -> None:
        """One pass over the board: detect hangs, sample RSS, kill."""
        now = time.monotonic()
        try:
            live = set(self.live_pids() or ())
        except Exception:
            live = set()
        ages: List[float] = []
        rss_seen: List[float] = []
        for slot, pid, stamp in self.board.snapshot():
            if pid not in live:
                continue
            if stamp != IDLE:
                age = now - stamp
                ages.append(age)
                if self.hang_timeout_s is not None \
                        and age > self.hang_timeout_s:
                    if self._kill(pid):
                        self.stats.hang_kills += 1
                        self._warn(
                            f"watchdog: worker {pid} heartbeat stale "
                            f"{age:.1f}s (> {self.hang_timeout_s:.1f}s "
                            f"hang timeout); hard-killing it")
                    continue
            if self.memory_limit_mb is not None:
                rss = read_rss_mb(pid)
                if rss is None:
                    continue
                rss_seen.append(rss)
                if rss > self.memory_limit_mb:
                    if self._kill(pid):
                        self.stats.rss_kills += 1
                        self._warn(
                            f"watchdog: worker {pid} RSS {rss:.0f} MiB "
                            f"exceeds the {self.memory_limit_mb:.0f} MiB "
                            f"ceiling; recycling it")
        self.stats.busy_heartbeat_ages = ages
        if self.memory_limit_mb is not None:
            self.stats.worker_rss_mb = rss_seen
        self.stats.scans += 1
        self.stats.last_scan_monotonic = now

    @staticmethod
    def _kill(pid: int) -> bool:
        try:
            os.kill(pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            return False
        return True
