"""One-shot markdown report: regenerate the whole evaluation as a document.

The paper's artifact prints results to the console and the authors plot
them manually; this module automates the last mile — ``generate_report``
runs every table and figure and emits a self-contained markdown document
with the measured numbers, ready to diff against EXPERIMENTS.md.

    python -m repro report --trials 200 --out report.md
"""

from __future__ import annotations

import time
from typing import List, Optional

from .figures import figure5, figure6
from .tables import table1, table2, table3, table4


def _md_table(headers: List[str], rows: List[List[str]]) -> str:
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(row) + " |")
    return "\n".join(out)


def generate_report(trials: int = 100, runs: int = 10, seed: int = 0,
                    scale: int = 1, jobs: int = 1,
                    sanitize: str = "off") -> str:
    """Run the full evaluation and return it as a markdown document."""
    started = time.strftime("%Y-%m-%d %H:%M:%S")
    parts = [
        "# PCTWM reproduction — generated evaluation report",
        "",
        f"Generated {started}; {trials} trials per configuration "
        f"(paper: 1000/500), {runs} runs per Table 4 cell"
        + (f", campaigns sharded over {jobs} workers" if jobs > 1
           else "")
        + (f", consistency sanitizer: {sanitize}" if sanitize != "off"
           else "")
        + ".",
    ]

    rows1 = table1(seed=seed)
    parts += ["", "## Table 1 — benchmark characteristics", "",
              _md_table(
                  ["benchmark", "k (paper)", "k_com (paper)", "d (paper)",
                   "k", "k_com", "d"],
                  [[r.benchmark, str(r.paper_k), str(r.paper_k_com),
                    str(r.paper_depth), str(r.measured_k),
                    str(r.measured_k_com), str(r.measured_depth)]
                   for r in rows1])]

    rows2 = table2(trials=trials, seed=seed, jobs=jobs, sanitize=sanitize)
    parts += ["", "## Table 2 — hit rate vs bug depth", "",
              _md_table(
                  ["benchmark", "d", "Rate(d)", "Rate(d+1)", "Rate(d+2)",
                   "errors", "timeouts", "inconsistent"],
                  [[r.benchmark, str(r.depth)]
                   + [f"{r.rates.get(o, 0.0):.1f} (h:{r.histories.get(o, 1)})"
                      for o in (0, 1, 2)]
                   + [str(r.errors), str(r.timeouts), str(r.inconsistent)]
                   for r in rows2])]

    rows3 = table3(trials=trials, seed=seed, jobs=jobs, sanitize=sanitize)
    hs = sorted({h for r in rows3 for h in r.rates})
    parts += ["", "## Table 3 — hit rate vs history depth", "",
              _md_table(
                  ["benchmark", "k_com", "d"] + [f"h:{h}" for h in hs]
                  + ["errors", "timeouts", "inconsistent"],
                  [[r.benchmark, str(r.k_com), str(r.depth)]
                   + [f"{r.rates.get(h, 0.0):.1f}" for h in hs]
                   + [str(r.errors), str(r.timeouts), str(r.inconsistent)]
                   for r in rows3])]
    faults2 = sum(r.errors + r.timeouts for r in rows2)
    faults3 = sum(r.errors + r.timeouts for r in rows3)
    if faults2 or faults3:
        parts += ["",
                  f"**Campaign health:** {faults2 + faults3} contained "
                  "fault(s) (errored or timed-out trials) while computing "
                  "Tables 2-3; faulted trials count toward neither hits "
                  "nor misses' step totals."]
    inconsistent = sum(r.inconsistent for r in rows2) \
        + sum(r.inconsistent for r in rows3)
    if inconsistent:
        parts += ["",
                  f"**Sanitizer:** {inconsistent} trial(s) produced "
                  "axiom-inconsistent execution graphs — the runtime "
                  "engine is suspect and every rate above should be "
                  "treated as unreliable until it is fixed."]

    bars = figure5(trials=trials, seed=seed, jobs=jobs)
    avg = (sum(b.c11tester for b in bars) / len(bars),
           sum(b.pct for b in bars) / len(bars),
           sum(b.pctwm for b in bars) / len(bars))
    parts += ["", "## Figure 5 — highest observed hit rates", "",
              _md_table(
                  ["benchmark", "C11Tester", "PCT", "PCTWM",
                   "best configs"],
                  [[b.benchmark, f"{b.c11tester:.1f}", f"{b.pct:.1f}",
                    f"{b.pctwm:.1f}",
                    f"pct[{b.pct_config}] pctwm[{b.pctwm_config}]"]
                   for b in bars]
                  + [["**average**", f"**{avg[0]:.1f}**",
                      f"**{avg[1]:.1f}**", f"**{avg[2]:.1f}**", ""]])]

    series = figure6(trials=trials, seed=seed, jobs=jobs)
    parts += ["", "## Figure 6 — inserted relaxed writes", ""]
    for name, s in series.items():
        parts += [f"### {name}", "",
                  _md_table(
                      ["inserted"] + [str(n) for n in s.inserted],
                      [["C11Tester"] + [f"{v:.1f}" for v in s.c11tester],
                       ["PCT"] + [f"{v:.1f}" for v in s.pct],
                       ["PCTWM"] + [f"{v:.1f}" for v in s.pctwm]]),
                  ""]

    rows4 = table4(runs=runs, seed=seed, scale=scale)
    parts += ["## Table 4 — application performance", "",
              _md_table(
                  ["application", "metric", "cores", "C11Tester (RSD%)",
                   "PCTWM (RSD%)", "races (both)"],
                  [[r.application, r.metric, r.cores,
                    f"{r.c11tester:.2f} ({r.c11tester_rsd:.1f}%)",
                    f"{r.pctwm:.2f} ({r.pctwm_rsd:.1f}%)",
                    f"{r.c11tester_races}/{r.runs} & "
                    f"{r.pctwm_races}/{r.runs}"]
                   for r in rows4])]

    parts += ["", "---", "",
              "Shapes to check against the paper: d=0 benchmarks at 100%; "
              "PCTWM >= C11Tester everywhere but seqlock; PCT degrading "
              "under inserted writes while PCTWM stays flat; both "
              "algorithms detecting every application race."]
    return "\n".join(parts) + "\n"


def write_report(path: str, trials: int = 100, runs: int = 10,
                 seed: int = 0, scale: int = 1, jobs: int = 1,
                 sanitize: str = "off") -> str:
    text = generate_report(trials=trials, runs=runs, seed=seed, scale=scale,
                           jobs=jobs, sanitize=sanitize)
    with open(path, "w") as fh:
        fh.write(text)
    return path
