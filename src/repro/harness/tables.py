"""Regeneration of the paper's Tables 1-4.

Each ``table*`` function computes the structured rows; each ``render_*``
formats them in the layout of the paper so the output can be compared
side by side.  Trial counts default to modest values so the benchmark
suite stays fast; pass ``trials=1000`` (Tables 2-3) to match the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.depth import estimate_parameters
from ..core.factory import SchedulerSpec
from ..runtime.executor import run_once
from ..workloads.apps import APPLICATIONS, silo_operations
from ..workloads.registry import BENCHMARKS, BenchmarkInfo, ProgramSpec
from .campaign import CampaignResult, c11tester_factory, pctwm_factory
from .parallel import run_campaign_parallel
from .stats import relative_stdev_pct


# -- Table 1: benchmark characteristics -----------------------------------------


@dataclass
class Table1Row:
    benchmark: str
    paper_loc: int
    paper_k: int
    paper_k_com: int
    paper_depth: int
    measured_k: int
    measured_k_com: int
    measured_depth: int


def table1(estimation_runs: int = 5, seed: int = 0) -> List[Table1Row]:
    """Measure k / k_com per benchmark alongside the paper's estimates."""
    rows = []
    for info in BENCHMARKS.values():
        est = estimate_parameters(info.build(), runs=estimation_runs,
                                  seed=seed)
        rows.append(Table1Row(
            benchmark=info.name,
            paper_loc=info.paper_loc,
            paper_k=info.paper_k,
            paper_k_com=info.paper_k_com,
            paper_depth=info.paper_depth,
            measured_k=est.k,
            measured_k_com=est.k_com,
            measured_depth=info.measured_depth,
        ))
    return rows


def render_table1(rows: Sequence[Table1Row]) -> str:
    header = (
        f"{'Benchmark':14s} {'LOC(p)':>7s} {'k(p)':>6s} {'kcom(p)':>8s} "
        f"{'d(p)':>5s} | {'k':>5s} {'kcom':>6s} {'d':>3s}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.benchmark:14s} {r.paper_loc:7d} {r.paper_k:6d} "
            f"{r.paper_k_com:8d} {r.paper_depth:5d} | {r.measured_k:5d} "
            f"{r.measured_k_com:6d} {r.measured_depth:3d}"
        )
    return "\n".join(lines)


# -- Table 2: hit rate vs bug depth ------------------------------------------------


@dataclass
class Table2Row:
    benchmark: str
    depth: int
    #: hit-rate (%) and best history per depth offset 0, +1, +2.
    rates: Dict[int, float] = field(default_factory=dict)
    histories: Dict[int, int] = field(default_factory=dict)
    #: Contained faults across every campaign behind this row (trials
    #: that raised / exhausted their wall-clock budget), plus trials
    #: whose graphs the sanitizer flagged as axiom-inconsistent.
    errors: int = 0
    timeouts: int = 0
    inconsistent: int = 0


def table2(trials: int = 100, histories: Sequence[int] = (1, 2, 3, 4),
           offsets: Sequence[int] = (0, 1, 2), seed: int = 0,
           benchmarks: Optional[Sequence[str]] = None,
           jobs: int = 1, sanitize: str = "off") -> List[Table2Row]:
    """PCTWM hit rates for d, d+1, d+2 at the best history depth."""
    rows = []
    for info in _selected(benchmarks):
        est = estimate_parameters(info.build(), runs=3, seed=seed)
        program = ProgramSpec(info.name)
        row = Table2Row(info.name, info.measured_depth)
        for offset in offsets:
            depth = info.measured_depth + offset
            best_rate, best_h = -1.0, histories[0]
            for h in histories:
                campaign = run_campaign_parallel(
                    program,
                    SchedulerSpec("pctwm", {"depth": depth,
                                            "k_com": est.k_com,
                                            "history": h}),
                    trials=trials,
                    base_seed=seed + 1000 * offset + 100 * h,
                    jobs=jobs,
                    sanitize=sanitize,
                )
                row.errors += campaign.errors
                row.timeouts += campaign.timeouts
                row.inconsistent += campaign.inconsistent
                if campaign.hit_rate > best_rate:
                    best_rate, best_h = campaign.hit_rate, h
            row.rates[offset] = best_rate
            row.histories[offset] = best_h
        rows.append(row)
    return rows


def render_table2(rows: Sequence[Table2Row]) -> str:
    header = (
        f"{'Benchmark':14s} {'d':>3s} {'Rate(d)':>12s} {'Rate(d+1)':>12s} "
        f"{'Rate(d+2)':>12s} {'err':>5s} {'t/o':>5s} {'inc':>5s}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        cells = [
            f"{r.rates.get(o, 0.0):5.1f} (h:{r.histories.get(o, 1)})"
            for o in (0, 1, 2)
        ]
        lines.append(
            f"{r.benchmark:14s} {r.depth:3d} "
            + " ".join(f"{c:>12s}" for c in cells)
            + f" {r.errors:5d} {r.timeouts:5d} {r.inconsistent:5d}"
        )
    return "\n".join(lines)


# -- Table 3: hit rate vs history depth ----------------------------------------------


@dataclass
class Table3Row:
    benchmark: str
    k_com: int
    depth: int
    rates: Dict[int, float] = field(default_factory=dict)
    #: Contained faults across every campaign behind this row.
    errors: int = 0
    timeouts: int = 0
    inconsistent: int = 0


def table3(trials: int = 100, histories: Sequence[int] = (1, 2, 3, 4),
           seed: int = 0,
           benchmarks: Optional[Sequence[str]] = None,
           jobs: int = 1, sanitize: str = "off") -> List[Table3Row]:
    """PCTWM hit rates for h = 1..4 at the benchmark's measured depth."""
    rows = []
    for info in _selected(benchmarks):
        est = estimate_parameters(info.build(), runs=3, seed=seed)
        program = ProgramSpec(info.name)
        row = Table3Row(info.name, est.k_com, info.measured_depth)
        for h in histories:
            campaign = run_campaign_parallel(
                program,
                SchedulerSpec("pctwm", {"depth": info.measured_depth,
                                        "k_com": est.k_com,
                                        "history": h}),
                trials=trials,
                base_seed=seed + 10 * h,
                jobs=jobs,
                sanitize=sanitize,
            )
            row.rates[h] = campaign.hit_rate
            row.errors += campaign.errors
            row.timeouts += campaign.timeouts
            row.inconsistent += campaign.inconsistent
        rows.append(row)
    return rows


def render_table3(rows: Sequence[Table3Row]) -> str:
    hs = sorted({h for r in rows for h in r.rates})
    header = (
        f"{'Benchmark':14s} {'kcom':>5s} {'d':>3s} "
        + " ".join(f"{'h:' + str(h):>7s}" for h in hs)
        + f" {'err':>5s} {'t/o':>5s} {'inc':>5s}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        cells = " ".join(f"{r.rates.get(h, 0.0):7.1f}" for h in hs)
        lines.append(f"{r.benchmark:14s} {r.k_com:5d} {r.depth:3d} {cells}"
                     f" {r.errors:5d} {r.timeouts:5d} {r.inconsistent:5d}")
    return "\n".join(lines)


# -- Table 4: application performance -----------------------------------------------


@dataclass
class Table4Row:
    application: str
    metric: str  # "ops/sec" or "time/s"
    cores: str   # "single" | "multiple"
    c11tester: float
    c11tester_rsd: float
    pctwm: float
    pctwm_rsd: float
    c11tester_races: int
    pctwm_races: int
    runs: int


def table4(runs: int = 10, seed: int = 0,
           scale: int = 1) -> List[Table4Row]:
    """Performance of C11Tester vs PCTWM on the application models.

    ``scale`` multiplies workload sizes for more stable timing.  Like the
    paper's framework, the runtime executes one thread at a time, so the
    single/multiple core rows exercise identical schedules; both are
    reported for fidelity with Table 4's layout.
    """
    rows: List[Table4Row] = []
    sizes = {
        "iris": dict(producers=2, messages=6 * scale),
        "mabain": dict(writers=2, readers=1, inserts=4 * scale),
        "silo": dict(workers=3, transactions=5 * scale),
    }
    for name, factory in APPLICATIONS.items():
        for cores_label, cores in (("single", 1), ("multiple", 4)):
            def build(n=name, c=cores):
                return factory(cores=c, **sizes[n])

            per_algo = {}
            for algo_label, sched_factory in (
                ("c11tester", c11tester_factory()),
                ("pctwm", None),
            ):
                if sched_factory is None:
                    est = estimate_parameters(build(), runs=2, seed=seed)
                    sched_factory = pctwm_factory(2, est.k_com, 3)
                times, races, ops = [], 0, 0
                for i in range(runs):
                    t0 = time.perf_counter()
                    run = run_once(build(), sched_factory(seed + i),
                                   keep_graph=False, max_steps=200000)
                    times.append(time.perf_counter() - t0)
                    races += 1 if run.races else 0
                    ops += silo_operations(run.thread_results) \
                        if name == "silo" else 0
                per_algo[algo_label] = (times, races, ops)

            c_times, c_races, c_ops = per_algo["c11tester"]
            p_times, p_races, p_ops = per_algo["pctwm"]
            if name == "silo":
                metric = "ops/sec"
                c_val = c_ops / sum(c_times) if sum(c_times) else 0.0
                p_val = p_ops / sum(p_times) if sum(p_times) else 0.0
            else:
                metric = "time/s"
                c_val = sum(c_times)
                p_val = sum(p_times)
            rows.append(Table4Row(
                application=name, metric=metric, cores=cores_label,
                c11tester=c_val, c11tester_rsd=relative_stdev_pct(c_times),
                pctwm=p_val, pctwm_rsd=relative_stdev_pct(p_times),
                c11tester_races=c_races, pctwm_races=p_races, runs=runs,
            ))
    return rows


def render_table4(rows: Sequence[Table4Row]) -> str:
    header = (
        f"{'Application':12s} {'metric':>8s} {'cores':>9s} "
        f"{'C11Tester':>12s} {'(RSD%)':>8s} {'PCTWM':>12s} {'(RSD%)':>8s} "
        f"{'races':>11s}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.application:12s} {r.metric:>8s} {r.cores:>9s} "
            f"{r.c11tester:12.2f} {r.c11tester_rsd:7.2f}% "
            f"{r.pctwm:12.2f} {r.pctwm_rsd:7.2f}% "
            f"{r.c11tester_races:4d}/{r.pctwm_races:d} of {r.runs}"
        )
    return "\n".join(lines)


def _selected(names: Optional[Sequence[str]]) -> List[BenchmarkInfo]:
    if names is None:
        return list(BENCHMARKS.values())
    return [BENCHMARKS[n] for n in names]
