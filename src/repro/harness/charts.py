"""Terminal charts: bar and line renderings of Figures 5 and 6.

The paper presents Figures 5-6 as charts; the numeric tables are rendered
by :mod:`repro.harness.figures`, and this module adds an ASCII view so
``python -m repro figure5/figure6`` output resembles the paper's plots
without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .figures import Figure5Bar, Figure6Series

#: Glyphs per algorithm, in the figures' legend order.
GLYPHS = {"c11tester": "#", "pct": "+", "pctwm": "*"}


def bar_chart(bars: Sequence[Figure5Bar], width: int = 50) -> str:
    """Horizontal grouped bars, one group per benchmark (Figure 5)."""
    lines = [
        "legend: # C11Tester   + PCT   * PCTWM   (bar length = hit rate %)"
    ]
    for bar in bars:
        lines.append(bar.benchmark)
        for key, value in (("c11tester", bar.c11tester),
                           ("pct", bar.pct), ("pctwm", bar.pctwm)):
            filled = round(value / 100.0 * width)
            lines.append(
                f"  {GLYPHS[key]} |{GLYPHS[key] * filled:<{width}}| "
                f"{value:5.1f}"
            )
    return "\n".join(lines)


def line_chart(series: Figure6Series, height: int = 12,
               width_per_point: int = 6) -> str:
    """A small multi-series line plot on a character grid (Figure 6)."""
    points = len(series.inserted)
    if points == 0:
        return "(empty series)"
    width = points * width_per_point
    grid = [[" "] * width for _ in range(height + 1)]

    def plot(values: List[float], glyph: str) -> None:
        for i, value in enumerate(values):
            x = min(width - 1, i * width_per_point + width_per_point // 2)
            y = height - round(value / 100.0 * height)
            y = min(max(y, 0), height)
            if grid[y][x] == " ":
                grid[y][x] = glyph
            else:
                grid[y][x] = "o"  # overlapping series

    plot(series.c11tester, GLYPHS["c11tester"])
    plot(series.pct, GLYPHS["pct"])
    plot(series.pctwm, GLYPHS["pctwm"])

    lines = [f"{series.benchmark} — hit rate vs inserted relaxed writes "
             "(o = overlap)"]
    for row_index, row in enumerate(grid):
        y_label = round((height - row_index) / height * 100)
        lines.append(f"{y_label:4d}% |" + "".join(row))
    axis = "      +" + "-" * width
    labels = "       " + "".join(
        f"{n:^{width_per_point}d}" for n in series.inserted
    )
    lines.append(axis)
    lines.append(labels)
    lines.append("       inserted writes   "
                 "(# C11Tester  + PCT  * PCTWM)")
    return "\n".join(lines)


def line_charts(series_by_name: Dict[str, Figure6Series]) -> str:
    return "\n\n".join(
        line_chart(series) for series in series_by_name.values()
    )
