"""Env-knob fault injection: make pool workers wedge, leak, or die on cue.

The self-healing campaign runtime claims to survive worker faults that
ordinary unit tests cannot conveniently produce — a process that stops
responding *outside* the executor's step loop, a slow leak, an abrupt
``SIGKILL``.  This rig injects exactly those faults into real pool
workers, driven by one environment variable so the same injection works
from pytest, from the CLI, and from a daemon started in CI:

    REPRO_FAULT_INJECT="wedge-once:/tmp/wedged"
    REPRO_FAULT_INJECT="kill-once:/tmp/killed,leak-once:/tmp/leaked:192"

The value is a comma-separated list of directives, each
``ACTION-once:SENTINEL[:ARG]``:

``kill-once``
    ``SIGKILL`` the claiming worker on shard entry (a crash the
    supervisor must absorb via pool rebuild + retry).
``wedge-once``
    Stop stamping heartbeats and sleep on shard entry — a hard wedge
    immune to the cooperative trial timeout; only the supervisor-side
    hang watchdog can reclaim the shard.  The sleep is bounded (default
    120 s, ``:ARG`` seconds) so an unsupervised test fails instead of
    hanging forever.
``leak-once``
    Allocate ``ARG`` MiB (default 192) and pin it in a module global,
    simulating a leaking trial for the RSS ceiling to catch.
``stall-once``
    Sleep ``ARG`` seconds (default 1.0) on shard entry while still
    counting as busy — widens the window RSS sampling needs without
    tripping hang detection.

Beyond the worker-process faults above, three *service-layer* directives
target the campaign daemon's own durability machinery.  They never fire
on shard entry; instead the service code polls them at the exact point
the fault would strike via :func:`should_fire`:

``torn-write-once``
    The next checkpoint-journal append writes only the first half of its
    buffer — the on-disk signature of a crash or ``ENOSPC`` mid-append.
    CRC-stamped journal lines make the tear detectable; resume re-runs
    the lost trials, so the recovered result stays bit-identical.
``enospc-once``
    The next job-record persist raises ``OSError(ENOSPC)``.  Best-effort
    persists (progress updates) degrade with a warning; a failed submit
    surfaces as a 500 the client retries safely under its idempotency
    key.
``slow-client-once``
    One HTTP request handler sleeps ``ARG`` seconds (default 2.0) before
    replying, pinning a handler thread the way a stalled client would;
    the threaded server must keep serving everyone else.

Each directive fires exactly once across the whole worker fleet: the
sentinel file is claimed with an atomic ``O_CREAT | O_EXCL``, so retried
shards (and every other worker) run clean — which is what lets tests
assert that a faulted campaign finishes bit-identical to an unfaulted
one.  Directives only ever fire inside pool worker processes; the
supervisor and serial campaigns never inject.

When ``REPRO_FAULT_INJECT`` is unset the rig costs one module-global
``None`` check per shard.
"""

from __future__ import annotations

import os
import signal
import sys
import time
from typing import List, Optional, Tuple

__all__ = ["FAULT_ENV", "load_directives", "maybe_inject", "should_fire"]

FAULT_ENV = "REPRO_FAULT_INJECT"

#: Directives fired automatically on pool-worker shard entry.
WORKER_ACTIONS = ("kill-once", "wedge-once", "leak-once", "stall-once")

#: Directives polled explicitly by service code via :func:`should_fire`;
#: :func:`maybe_inject` ignores them so a pool worker can never claim a
#: fault aimed at the daemon's persistence or HTTP layer.
SERVICE_ACTIONS = ("torn-write-once", "enospc-once", "slow-client-once")

ACTIONS = WORKER_ACTIONS + SERVICE_ACTIONS

#: Default bound on a wedge, in seconds: long enough that only the hang
#: watchdog ends it, short enough that a broken watchdog fails the test
#: run instead of hanging CI forever.
WEDGE_BOUND_S = 120.0

#: Default size of an injected leak, in MiB.
LEAK_DEFAULT_MB = 192.0

#: Parsed directives for this process; ``None`` until :func:`load_directives`.
_DIRECTIVES: Optional[List[Tuple[str, str, Optional[float]]]] = None

#: Injected leaks are pinned here so they stay resident until the
#: watchdog recycles the worker.
_LEAKED: List[bytearray] = []


def load_directives(env: Optional[str] = None
                    ) -> List[Tuple[str, str, Optional[float]]]:
    """Parse ``REPRO_FAULT_INJECT`` once; malformed directives raise.

    Raising (rather than warning) is deliberate: a mistyped injection
    that silently no-ops would make a fault test pass vacuously.
    """
    global _DIRECTIVES
    raw = os.environ.get(FAULT_ENV, "") if env is None else env
    directives: List[Tuple[str, str, Optional[float]]] = []
    for item in filter(None, (part.strip() for part in raw.split(","))):
        pieces = item.split(":", 2)
        if len(pieces) < 2 or pieces[0] not in ACTIONS or not pieces[1]:
            raise ValueError(
                f"bad {FAULT_ENV} directive {item!r}; expected "
                f"ACTION:SENTINEL[:ARG] with ACTION in {ACTIONS}")
        arg: Optional[float] = None
        if len(pieces) == 3:
            try:
                arg = float(pieces[2])
            except ValueError:
                raise ValueError(
                    f"bad {FAULT_ENV} directive {item!r}: "
                    f"ARG must be a number, got {pieces[2]!r}") from None
        directives.append((pieces[0], pieces[1], arg))
    _DIRECTIVES = directives
    return directives


def _claim(sentinel: str) -> bool:
    """Atomically claim a sentinel file; True for the single winner."""
    try:
        fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        return False
    os.close(fd)
    return True


def maybe_inject(heartbeat=None) -> None:
    """Fire any unclaimed directives; called on worker shard entry.

    ``heartbeat`` is the worker's :class:`~repro.harness.watchdog
    .WorkerHeartbeat` (or ``None``): a wedge stamps once before sleeping
    so the watchdog sees a *busy* slot going stale — the exact signature
    of a real hang.
    """
    directives = _DIRECTIVES
    if not directives:
        return
    for action, sentinel, arg in directives:
        if action not in WORKER_ACTIONS:
            continue  # service-layer faults fire via should_fire()
        if not _claim(sentinel):
            continue
        print(f"  [faultrig] worker {os.getpid()}: injecting {action}",
              file=sys.stderr, flush=True)
        if action == "kill-once":
            os.kill(os.getpid(), signal.SIGKILL)
        elif action == "wedge-once":
            if heartbeat is not None:
                heartbeat.beat()
            deadline = time.monotonic() + (arg or WEDGE_BOUND_S)
            while time.monotonic() < deadline:
                time.sleep(0.2)
        elif action == "leak-once":
            _LEAKED.append(bytearray(int((arg or LEAK_DEFAULT_MB)
                                         * 1024 * 1024)))
        elif action == "stall-once":
            time.sleep(arg if arg is not None else 1.0)


def should_fire(action: str) -> Optional[Tuple[str, str, Optional[float]]]:
    """Claim the first unclaimed service-layer directive for ``action``.

    ``action`` is the bare name ("torn-write", "enospc", "slow-client");
    returns the claimed ``(action, sentinel, arg)`` tuple, or ``None``
    when no matching directive exists or it already fired elsewhere.
    Like :func:`maybe_inject` this reads the directives parsed by
    :func:`load_directives` — processes that never loaded the rig (plain
    library users) see ``None`` at the cost of one global check.
    """
    directives = _DIRECTIVES
    if not directives:
        return None
    wanted = action + "-once"
    for directive in directives:
        if directive[0] == wanted and _claim(directive[1]):
            print(f"  [faultrig] pid {os.getpid()}: injecting {wanted}",
                  file=sys.stderr, flush=True)
            return directive
    return None
