"""Regeneration of the paper's Figures 5 and 6 (as data series).

The paper plots these; we produce the series (and an ASCII rendering) so
the benchmark harness can print the same comparison.

* **Figure 5** — the highest observed bug-hitting rate per benchmark for
  C11Tester, PCT, and PCTWM (each bounded algorithm searches its parameter
  grid for its best configuration, as the paper's "highest bug hitting
  rates observed" implies).
* **Figure 6** — bug-hitting rate as benign relaxed writes are inserted
  into four benchmarks: PCT (uniform rf sampling) degrades, PCTWM stays
  stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.depth import estimate_parameters
from ..core.factory import SchedulerSpec
from ..workloads.registry import BENCHMARKS, BenchmarkInfo, ProgramSpec
from .parallel import run_campaign_parallel


@dataclass
class Figure5Bar:
    benchmark: str
    c11tester: float
    pct: float
    pctwm: float
    pct_config: str = ""
    pctwm_config: str = ""


def figure5(trials: int = 100, seed: int = 0,
            pctwm_depth_offsets: Sequence[int] = (0, 1, 2),
            pct_depths: Sequence[int] = (1, 2, 3, 4),
            histories: Sequence[int] = (1, 2, 3),
            benchmarks: Optional[Sequence[str]] = None,
            jobs: int = 1) -> List[Figure5Bar]:
    """Highest observed hit rate per benchmark and algorithm."""
    bars = []
    for info in _selected(benchmarks):
        est = estimate_parameters(info.build(), runs=3, seed=seed)
        program = ProgramSpec(info.name)
        c11 = run_campaign_parallel(program, SchedulerSpec("c11tester"),
                                    trials=trials, base_seed=seed,
                                    jobs=jobs)

        best_pct, pct_cfg = -1.0, ""
        for d in pct_depths:
            campaign = run_campaign_parallel(
                program,
                SchedulerSpec("pct", {"depth": d, "k_events": est.k}),
                trials=trials, base_seed=seed + 17 * d, jobs=jobs)
            if campaign.hit_rate > best_pct:
                best_pct, pct_cfg = campaign.hit_rate, f"d={d}"

        best_wm, wm_cfg = -1.0, ""
        for offset in pctwm_depth_offsets:
            depth = info.measured_depth + offset
            for h in histories:
                campaign = run_campaign_parallel(
                    program,
                    SchedulerSpec("pctwm", {"depth": depth,
                                            "k_com": est.k_com,
                                            "history": h}),
                    trials=trials, base_seed=seed + 31 * depth + 7 * h,
                    jobs=jobs,
                )
                if campaign.hit_rate > best_wm:
                    best_wm, wm_cfg = campaign.hit_rate, f"d={depth},h={h}"

        bars.append(Figure5Bar(info.name, c11.hit_rate, best_pct, best_wm,
                               pct_cfg, wm_cfg))
    return bars


def render_figure5(bars: Sequence[Figure5Bar]) -> str:
    header = (
        f"{'Benchmark':14s} {'C11Tester':>10s} {'PCT':>10s} {'PCTWM':>10s}"
        f"   (best configs)"
    )
    lines = [header, "-" * len(header)]
    for b in bars:
        lines.append(
            f"{b.benchmark:14s} {b.c11tester:9.1f}% {b.pct:9.1f}% "
            f"{b.pctwm:9.1f}%   pct[{b.pct_config}] pctwm[{b.pctwm_config}]"
        )
    avg = (
        sum(b.c11tester for b in bars) / len(bars),
        sum(b.pct for b in bars) / len(bars),
        sum(b.pctwm for b in bars) / len(bars),
    )
    lines.append("-" * len(header))
    lines.append(
        f"{'average':14s} {avg[0]:9.1f}% {avg[1]:9.1f}% {avg[2]:9.1f}%"
    )
    return "\n".join(lines)


@dataclass
class Figure6Series:
    benchmark: str
    inserted: List[int] = field(default_factory=list)
    c11tester: List[float] = field(default_factory=list)
    pct: List[float] = field(default_factory=list)
    pctwm: List[float] = field(default_factory=list)


def figure6(trials: int = 100, seed: int = 0,
            insert_counts: Sequence[int] = (0, 2, 4, 6, 8, 10),
            benchmarks: Optional[Sequence[str]] = None,
            jobs: int = 1) -> Dict[str, Figure6Series]:
    """Hit rate vs number of inserted relaxed writes (Figure 6)."""
    if benchmarks is None:
        benchmarks = [
            info.name for info in BENCHMARKS.values() if info.in_figure6
        ]
    out = {}
    for name in benchmarks:
        info = BENCHMARKS[name]
        series = Figure6Series(name)
        for n in insert_counts:
            program = ProgramSpec(name, params={"inserted_writes": n})
            est = estimate_parameters(program.build(), runs=3, seed=seed)
            depth = info.measured_depth
            series.inserted.append(n)
            series.c11tester.append(
                run_campaign_parallel(program, SchedulerSpec("c11tester"),
                                      trials=trials, base_seed=seed + n,
                                      jobs=jobs).hit_rate
            )
            series.pct.append(
                run_campaign_parallel(
                    program,
                    SchedulerSpec("pct", {"depth": max(depth, 1) + 1,
                                          "k_events": est.k}),
                    trials=trials, base_seed=seed + n + 1,
                    jobs=jobs).hit_rate
            )
            series.pctwm.append(
                run_campaign_parallel(
                    program,
                    SchedulerSpec("pctwm", {"depth": depth,
                                            "k_com": est.k_com,
                                            "history": info.best_history}),
                    trials=trials, base_seed=seed + n + 2,
                    jobs=jobs,
                ).hit_rate
            )
        out[name] = series
    return out


def render_figure6(series: Dict[str, Figure6Series]) -> str:
    lines = []
    for name, s in series.items():
        lines.append(f"{name} — inserting relaxed writes")
        lines.append(
            f"  {'inserted':>9s} " + " ".join(f"{n:>6d}" for n in s.inserted)
        )
        for label, values in (("C11Tester", s.c11tester), ("PCT", s.pct),
                              ("PCTWM", s.pctwm)):
            lines.append(
                f"  {label:>9s} " + " ".join(f"{v:6.1f}" for v in values)
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def _selected(names: Optional[Sequence[str]]) -> List[BenchmarkInfo]:
    if names is None:
        return list(BENCHMARKS.values())
    return [BENCHMARKS[n] for n in names]
