"""Thread state: a DSL thread body driven as a coroutine.

Each live thread always holds a *pending* operation so that schedulers can
peek the next event without executing it — Algorithm 1 inspects
``next(s, t)`` before deciding whether to delay the thread.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple

from ..memory.events import Event
from .errors import ReproError
from .ops import JoinOp, Op


class ThreadState:
    """One DSL thread: generator, pending op, and bookkeeping."""

    def __init__(self, tid: int, name: str,
                 generator: Generator[Op, Any, Any]):
        self.tid = tid
        self.name = name
        self._gen = generator
        self.pending: Optional[Op] = None
        #: Whether ``pending`` is a JoinOp — the only op kind whose
        #: enabledness depends on *another* thread.  Stamped once per
        #: advance so the enabled-set computation avoids a per-thread
        #: isinstance check per step.
        self.pending_is_join: bool = False
        #: Code site (bytecode offset) of the pending op, for spin detection.
        self.pending_site: int = -1
        #: Stable identity of the pending op's program point, kept in sync
        #: with ``pending_site`` (precomputed: consulted 2-3x per step).
        self.site_key: Tuple[int, int] = (tid, -1)
        self.finished = False
        self.result: Any = None
        #: sw sources recorded by relaxed reads, consumed by acquire fences.
        self.pending_sync_sources: List[Event] = []
        self.events_executed = 0

    def prime(self) -> None:
        """Fetch the first pending op."""
        self._advance_gen(None)

    def advance(self, send_value: Any) -> None:
        """Deliver the result of the executed pending op; fetch the next.

        One flat method (the former ``advance`` -> ``_advance_gen`` pair):
        it runs once per executed event, so the extra call layer was pure
        overhead.
        """
        if self.finished:
            raise ReproError(f"thread {self.name!r} already finished")
        self.events_executed += 1
        try:
            op = self._gen.send(send_value)
        except StopIteration as stop:
            self.pending = None
            self.pending_is_join = False
            self.finished = True
            self.result = stop.value
            return
        if not isinstance(op, Op):
            raise ReproError(
                f"thread {self.name!r} yielded {op!r}, expected an Op; "
                "did you forget to call .load()/.store()?"
            )
        self.pending = op
        self.pending_is_join = isinstance(op, JoinOp)
        frame = self._gen.gi_frame
        self.pending_site = frame.f_lasti if frame is not None else -1
        self.site_key = (self.tid, self.pending_site)

    def _advance_gen(self, value: Any) -> None:
        try:
            if value is None and self.pending is None:
                op = next(self._gen)
            else:
                op = self._gen.send(value)
        except StopIteration as stop:
            self.pending = None
            self.pending_is_join = False
            self.finished = True
            self.result = stop.value
            return
        if not isinstance(op, Op):
            raise ReproError(
                f"thread {self.name!r} yielded {op!r}, expected an Op; "
                "did you forget to call .load()/.store()?"
            )
        self.pending = op
        self.pending_is_join = isinstance(op, JoinOp)
        frame = self._gen.gi_frame
        self.pending_site = frame.f_lasti if frame is not None else -1
        self.site_key = (self.tid, self.pending_site)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "done" if self.finished else f"pending={self.pending!r}"
        return f"<Thread {self.tid}:{self.name} {status}>"
