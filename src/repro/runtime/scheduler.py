"""The scheduler interface every testing algorithm implements.

Generating a weak-memory test execution requires two families of choices
(Section 5.2): *which thread runs next*, and *which write a read observes*.
The executor delegates both to a :class:`Scheduler`:

* :meth:`Scheduler.choose_thread` picks the next thread among the enabled
  ones (and may peek pending ops through the state to implement
  priority-change logic, as PCTWM's Algorithm 1 does);
* :meth:`Scheduler.choose_read_from` picks the rf source among the
  coherence-visible candidate writes.

Schedulers also receive lifecycle hooks so that stateful algorithms (thread
views, priority lists) can maintain their bookkeeping.
"""

from __future__ import annotations

import random
from typing import List, Optional, TYPE_CHECKING

from ..memory.events import Event, MemoryOrder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .executor import ExecutionState
    from .ops import Op


class ReadContext:
    """Everything a scheduler may consult when choosing an rf source.

    The candidate set is computed lazily: most schedulers only need a
    fragment of it (the mo-maximal write, the coherence floor, or the
    ``h`` mo-latest writes), and materializing the full visible suffix per
    read is O(writes-at-loc) work the fast path avoids.  Accessing
    ``candidates`` materializes (and caches) the full list, so schedulers
    that want the whole set behave exactly as before.
    """

    __slots__ = ("tid", "loc", "order", "op", "spinning", "is_rmw",
                 "_candidates", "_state", "_floor")

    def __init__(self, tid: int, loc: str, order: MemoryOrder,
                 candidates: Optional[List[Event]] = None,
                 op: "Op" = None, spinning: bool = False,
                 is_rmw: bool = False,
                 state: "ExecutionState" = None):
        self.tid = tid
        self.loc = loc
        self.order = order
        #: The op being executed (identity lets PCTWM recognize reordered
        #: ops).
        self.op = op
        #: True when the spin heuristic flagged this program point.
        self.spinning = spinning
        #: True for the read side of an RMW or CAS.
        self.is_rmw = is_rmw
        self._candidates = candidates
        self._state = state
        self._floor = -1
        if candidates is None and state is None:
            raise ValueError(
                "ReadContext needs either an explicit candidate list or "
                "an execution state to compute one from"
            )

    @property
    def candidates(self) -> List[Event]:
        """Coherence-visible candidate writes, in mo order.  Never empty;
        the mo-maximal write is always present.  For RMW/CAS this is the
        single mo-maximal write (atomicity)."""
        if self._candidates is None:
            state = self._state
            self._candidates = state.visibility.visible_writes(
                self.tid, self.loc, state.clocks[self.tid],
                seq_cst=self.order.is_seq_cst,
            )
        return self._candidates

    # -- O(1)/O(h) fragments of the candidate set ---------------------------

    def latest(self) -> Event:
        """The mo-maximal write (``candidates[-1]``) without the full list."""
        if self._candidates is not None:
            return self._candidates[-1]
        return self._state.graph.writes_by_loc[self.loc][-1]

    def floor_index(self) -> int:
        """The mo index of the coherence floor (``candidates[0]``).

        Memoized for the context's lifetime (one read): the executor's
        rf validation and a scheduler's floor clamp both need it.
        """
        if self._floor >= 0:
            return self._floor
        if self._candidates is not None:
            self._floor = self._candidates[0].mo_index
            return self._floor
        state = self._state
        self._floor = state.visibility.floor(
            self.tid, self.loc, state.clocks[self.tid],
            seq_cst=self.order.is_seq_cst,
        )
        return self._floor

    def floor_event(self) -> Event:
        """The mo-minimal visible write (``candidates[0]``)."""
        if self._candidates is not None:
            return self._candidates[0]
        return self._state.graph.writes_by_loc[self.loc][self.floor_index()]

    def bounded(self, history: int) -> List[Event]:
        """The visible writes within history depth (``candidates[-h:]``)."""
        if self._candidates is not None:
            return self._candidates[-history:]
        state = self._state
        return state.visibility.bounded_visible_writes(
            self.tid, self.loc, state.clocks[self.tid], history,
            seq_cst=self.order.is_seq_cst,
        )


class Scheduler:
    """Base scheduler: uniform-random choices, overridable hooks."""

    name = "base"

    def __init__(self, seed: Optional[int] = None):
        self.rng = random.Random(seed)

    def reseed(self, seed: Optional[int] = None) -> None:
        """Re-arm the RNG for a fresh run, as if newly constructed.

        ``random.Random(n)`` and ``rng.seed(n)`` produce identical streams,
        so a reseeded scheduler is seed-for-seed equivalent to a fresh
        instance provided all other per-run state is rebuilt in
        ``on_run_start`` — true of every scheduler in the registry (see
        ``SchedulerSpec.supports_reuse``).  Campaign runners use this to
        keep one warm scheduler instance per worker instead of
        constructing one per trial.
        """
        self.rng.seed(seed)

    # -- lifecycle ----------------------------------------------------------

    def on_run_start(self, state: "ExecutionState") -> None:
        """Called once per run after threads are primed."""

    def on_event_executed(self, state: "ExecutionState", event: Event,
                          info: dict) -> None:
        """Called after each event commits.

        ``info`` keys: ``op`` (the executed op), ``reordered`` (bool, set by
        the scheduler itself via state), ``sync_source`` (release-chain
        source joined by an acquire read, or None), ``fence_sync_sources``
        (sources consumed by an acquire fence).
        """

    def on_thread_finished(self, state: "ExecutionState", tid: int) -> None:
        """Called when a thread runs to completion."""

    def on_thread_created(self, state: "ExecutionState", tid: int,
                          parent_tid: int) -> None:
        """Called when a SpawnOp creates a thread at runtime."""

    # -- decisions -----------------------------------------------------------

    def choose_thread(self, state: "ExecutionState") -> int:
        """Pick the next thread id among ``state.enabled_tids()``."""
        return self.rng.choice(state.enabled_tids())

    def choose_read_from(self, state: "ExecutionState",
                         ctx: ReadContext) -> Event:
        """Pick the rf source among ``ctx.candidates``."""
        return self.rng.choice(ctx.candidates)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"
