"""The scheduler interface every testing algorithm implements.

Generating a weak-memory test execution requires two families of choices
(Section 5.2): *which thread runs next*, and *which write a read observes*.
The executor delegates both to a :class:`Scheduler`:

* :meth:`Scheduler.choose_thread` picks the next thread among the enabled
  ones (and may peek pending ops through the state to implement
  priority-change logic, as PCTWM's Algorithm 1 does);
* :meth:`Scheduler.choose_read_from` picks the rf source among the
  coherence-visible candidate writes.

Schedulers also receive lifecycle hooks so that stateful algorithms (thread
views, priority lists) can maintain their bookkeeping.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple, TYPE_CHECKING

from ..memory.events import Event, MemoryOrder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .executor import ExecutionState
    from .ops import Op


@dataclass
class ReadContext:
    """Everything a scheduler may consult when choosing an rf source."""

    tid: int
    loc: str
    order: MemoryOrder
    #: Coherence-visible candidate writes, in mo order.  Never empty; the
    #: mo-maximal write is always present.  For RMW/CAS this is the single
    #: mo-maximal write (atomicity).
    candidates: List[Event]
    #: The op being executed (identity lets PCTWM recognize reordered ops).
    op: "Op"
    #: True when the spin heuristic flagged this program point.
    spinning: bool = False
    #: True for the read side of an RMW or CAS.
    is_rmw: bool = False


class Scheduler:
    """Base scheduler: uniform-random choices, overridable hooks."""

    name = "base"

    def __init__(self, seed: Optional[int] = None):
        self.rng = random.Random(seed)

    # -- lifecycle ----------------------------------------------------------

    def on_run_start(self, state: "ExecutionState") -> None:
        """Called once per run after threads are primed."""

    def on_event_executed(self, state: "ExecutionState", event: Event,
                          info: dict) -> None:
        """Called after each event commits.

        ``info`` keys: ``op`` (the executed op), ``reordered`` (bool, set by
        the scheduler itself via state), ``sync_source`` (release-chain
        source joined by an acquire read, or None), ``fence_sync_sources``
        (sources consumed by an acquire fence).
        """

    def on_thread_finished(self, state: "ExecutionState", tid: int) -> None:
        """Called when a thread runs to completion."""

    def on_thread_created(self, state: "ExecutionState", tid: int,
                          parent_tid: int) -> None:
        """Called when a SpawnOp creates a thread at runtime."""

    # -- decisions -----------------------------------------------------------

    def choose_thread(self, state: "ExecutionState") -> int:
        """Pick the next thread id among ``state.enabled_tids()``."""
        return self.rng.choice(state.enabled_tids())

    def choose_read_from(self, state: "ExecutionState",
                         ctx: ReadContext) -> Event:
        """Pick the rf source among ``ctx.candidates``."""
        return self.rng.choice(ctx.candidates)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"
