"""Synchronization primitives built on the atomic DSL.

The real C11Tester instruments pthread mutexes and condition variables;
this module provides the equivalent building blocks for DSL programs,
implemented *in the DSL itself* on top of C11 atomics — so they execute
through the same scheduler/memory-model machinery as everything else and
can be tested for correctness like any other workload.

Usage inside a thread body (note ``yield from``):

    m = Mutex(program, "m")

    def worker():
        yield from m.acquire()
        ...critical section...
        yield from m.release()

All primitives here are *correctly* synchronized (release/acquire); the
buggy counterparts live in :mod:`repro.workloads`.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..memory.events import ACQ, ACQ_REL, REL, RLX
from .errors import ReproError
from .ops import Op
from .program import Program


class Mutex:
    """A CAS spinlock with acquire/release ordering."""

    def __init__(self, program: Program, name: str):
        self._word = program.atomic(f"{name}.lock", 0)
        self.name = name

    def acquire(self) -> Generator[Op, object, None]:
        """Spin until the lock is taken.  Runs under the executor's
        livelock heuristics; the step budget bounds pathological runs."""
        while True:
            ok, _ = yield self._word.cas(0, 1, ACQ_REL)
            if ok:
                return

    def try_acquire(self) -> Generator[Op, object, bool]:
        ok, _ = yield self._word.cas(0, 1, ACQ_REL)
        return ok

    def release(self) -> Generator[Op, object, None]:
        yield self._word.store(0, REL)


class Semaphore:
    """A counting semaphore; ``down`` blocks by bounded spinning."""

    def __init__(self, program: Program, name: str, permits: int = 1):
        if permits < 0:
            raise ReproError("semaphore permits must be >= 0")
        self._count = program.atomic(f"{name}.sem", permits)
        self.name = name

    def down(self, max_spins: int = 200) -> Generator[Op, object, bool]:
        """Acquire a permit; returns False when starved out."""
        for _ in range(max_spins):
            _ok, current = yield self._count.cas(-1, -1, RLX)  # RMW-read
            if current <= 0:
                continue
            ok, _ = yield self._count.cas(current, current - 1, ACQ_REL)
            if ok:
                return True
        return False

    def up(self) -> Generator[Op, object, None]:
        yield self._count.fetch_add(1, ACQ_REL)


class SpinBarrier:
    """A sense-reversing barrier for a fixed party count."""

    def __init__(self, program: Program, name: str, parties: int):
        if parties < 1:
            raise ReproError("barrier needs at least one party")
        self.parties = parties
        self._count = program.atomic(f"{name}.count", 0)
        self._sense = program.atomic(f"{name}.sense", 0)
        self.name = name

    def wait(self, max_spins: int = 200) -> Generator[Op, object, bool]:
        """Block until all parties arrive; returns False when starved."""
        arrival = yield self._count.fetch_add(1, ACQ_REL)
        generation = arrival // self.parties
        if arrival % self.parties == self.parties - 1:
            # Last arriver opens the barrier for this generation.
            yield self._sense.store(generation + 1, REL)
            return True
        for _ in range(max_spins):
            sense = yield self._sense.load(ACQ)
            if sense > generation:
                return True
        return False


class RWLock:
    """A writer-preferring reader-writer lock.

    Readers increment the word when no writer holds or waits; a writer
    parks a large negative bias.  All transitions are acquire/release.
    """

    _WRITER = -(10 ** 6)

    def __init__(self, program: Program, name: str):
        self._word = program.atomic(f"{name}.rw", 0)
        self.name = name

    def acquire_read(self, max_spins: int = 200,
                     ) -> Generator[Op, object, bool]:
        for _ in range(max_spins):
            _ok, state = yield self._word.cas(-1, -1, RLX)  # RMW-read
            if state < 0:
                continue  # writer active
            ok, _ = yield self._word.cas(state, state + 1, ACQ_REL)
            if ok:
                return True
        return False

    def release_read(self) -> Generator[Op, object, None]:
        yield self._word.fetch_sub(1, ACQ_REL)

    def acquire_write(self, max_spins: int = 200,
                      ) -> Generator[Op, object, bool]:
        for _ in range(max_spins):
            ok, _ = yield self._word.cas(0, self._WRITER, ACQ_REL)
            if ok:
                return True
        return False

    def release_write(self) -> Generator[Op, object, None]:
        yield self._word.store(0, REL)


__all__ = ["Mutex", "RWLock", "Semaphore", "SpinBarrier"]
