"""Concurrency runtime: the program DSL and the controlled executor.

This package is the substrate the paper's algorithms run on — the analogue
of the C11Tester runtime that intercepts atomic operations of a compiled
C/C++ program.  Threads are Python generators yielding operation
descriptors; an :class:`repro.runtime.executor.Executor` drives them under a
pluggable :class:`repro.runtime.scheduler.Scheduler`.
"""

from .api import (
    Atomic,
    NonAtomic,
    fence,
    join,
    sched_yield,
    spawn,
    spin_until,
)
from .errors import (
    AssertionViolation,
    DeadlockError,
    ExecutionLimitExceeded,
    ProgramDefinitionError,
    ReplayDivergenceError,
    ReproError,
    collect_failure_diagnostics,
    render_diagnostics,
    require,
)
from .executor import ExecutionState, Executor, RunResult, run_once
from .livelock import SpinTracker
from .ops import (
    CasOp,
    FenceOp,
    JoinOp,
    LoadOp,
    Op,
    RmwOp,
    SpawnOp,
    StoreOp,
    YieldOp,
    is_communication_op,
)
from .sync import Mutex, RWLock, Semaphore, SpinBarrier
from .program import Program
from .scheduler import ReadContext, Scheduler
from .thread import ThreadState

__all__ = [
    "AssertionViolation",
    "Atomic",
    "CasOp",
    "DeadlockError",
    "ExecutionLimitExceeded",
    "ExecutionState",
    "Executor",
    "FenceOp",
    "JoinOp",
    "LoadOp",
    "NonAtomic",
    "Op",
    "Program",
    "ProgramDefinitionError",
    "ReadContext",
    "ReplayDivergenceError",
    "ReproError",
    "Mutex",
    "RWLock",
    "RmwOp",
    "RunResult",
    "Semaphore",
    "SpawnOp",
    "SpinBarrier",
    "Scheduler",
    "SpinTracker",
    "StoreOp",
    "ThreadState",
    "YieldOp",
    "collect_failure_diagnostics",
    "fence",
    "is_communication_op",
    "join",
    "render_diagnostics",
    "require",
    "run_once",
    "sched_yield",
    "spawn",
    "spin_until",
]
