"""Program definition: shared locations, thread bodies, and final checks.

A :class:`Program` is a reusable description of a concurrent test case; each
test run instantiates fresh thread generators from it.

    sb = Program("SB")
    x = sb.atomic("X", 0)
    y = sb.atomic("Y", 0)

    @sb.thread
    def left():
        yield x.store(1, RLX)
        a = yield y.load(RLX)
        return a

    @sb.thread
    def right():
        yield y.store(1, RLX)
        b = yield x.load(RLX)
        return b

    sb.add_final_check(lambda r: require(r["left"] == 1 or r["right"] == 1))
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..memory.events import MemoryOrder
from .api import Atomic, NonAtomic
from .errors import ProgramDefinitionError
from .thread import ThreadState

FinalCheck = Callable[[Dict[str, Any]], None]


class Program:
    """A concurrent program expressed in the operation DSL."""

    def __init__(self, name: str):
        self.name = name
        #: location name -> initial value
        self.locations: Dict[str, Any] = {}
        self._threads: List[Tuple[str, Callable[..., Any], tuple, dict]] = []
        self._final_checks: List[FinalCheck] = []
        #: Treat detected data races as bugs (on by default; the nine data
        #: structure benchmarks use assertion bugs and switch this off so
        #: that their seeded races do not mask the assertion outcome).
        self.races_are_bugs = True

    # -- locations ----------------------------------------------------------

    def atomic(self, loc: str, init: Any = 0,
               default_order: MemoryOrder = MemoryOrder.SEQ_CST) -> Atomic:
        """Declare an atomic location and return its handle."""
        self._register(loc, init)
        return Atomic(loc, default_order)

    def non_atomic(self, loc: str, init: Any = 0) -> NonAtomic:
        """Declare a plain (non-atomic) location and return its handle."""
        self._register(loc, init)
        return NonAtomic(loc)

    def _register(self, loc: str, init: Any) -> None:
        if loc in self.locations:
            raise ProgramDefinitionError(f"duplicate location {loc!r}")
        self.locations[loc] = init

    # -- threads --------------------------------------------------------------

    def thread(self, fn: Callable[..., Any]) -> Callable[..., Any]:
        """Decorator registering a no-argument thread body."""
        self.add_thread(fn)
        return fn

    def add_thread(self, fn: Callable[..., Any], *args: Any,
                   name: Optional[str] = None, **kwargs: Any) -> str:
        """Register a thread body; returns the thread's name."""
        thread_name = name or fn.__name__
        if any(existing == thread_name for existing, *_ in self._threads):
            suffix = sum(
                1 for existing, *_ in self._threads
                if existing == thread_name or existing.startswith(thread_name + "#")
            )
            thread_name = f"{thread_name}#{suffix}"
        self._threads.append((thread_name, fn, args, kwargs))
        return thread_name

    @property
    def thread_count(self) -> int:
        return len(self._threads)

    @property
    def thread_names(self) -> List[str]:
        return [name for name, *_ in self._threads]

    # -- final checks ----------------------------------------------------------

    def add_final_check(self, check: FinalCheck) -> None:
        """Register a predicate over thread return values, run post-join.

        The check receives ``{thread_name: return_value}`` and signals a bug
        by raising :class:`repro.runtime.errors.AssertionViolation`
        (typically via :func:`repro.runtime.errors.require`).
        """
        self._final_checks.append(check)

    @property
    def final_checks(self) -> List[FinalCheck]:
        return list(self._final_checks)

    # -- instantiation -----------------------------------------------------------

    def instantiate(self) -> List[ThreadState]:
        """Create fresh primed thread states for one run."""
        if not self._threads:
            raise ProgramDefinitionError(f"program {self.name!r} has no threads")
        states = []
        for tid, (name, fn, args, kwargs) in enumerate(self._threads):
            gen = fn(*args, **kwargs)
            if not hasattr(gen, "send"):
                raise ProgramDefinitionError(
                    f"thread body {name!r} is not a generator function"
                )
            state = ThreadState(tid, name, gen)
            state.prime()
            states.append(state)
        return states

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Program {self.name!r}: {len(self._threads)} threads, "
            f"{len(self.locations)} locations>"
        )
