"""Runtime error types."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class AssertionViolation(ReproError):
    """A program-level assertion failed: the concurrency bug manifested."""


class ProgramDefinitionError(ReproError):
    """A program is malformed (duplicate locations, no threads, ...)."""


class ExecutionLimitExceeded(ReproError):
    """A run exceeded its step budget; treated as an inconclusive run."""


class DeadlockError(ReproError):
    """No thread is enabled but the program has not finished."""


def require(condition: bool, message: str = "assertion failed") -> None:
    """Program-level assertion helper for DSL thread bodies.

    Unlike the builtin ``assert``, this cannot be stripped by ``-O`` and
    raises :class:`AssertionViolation`, which the executor records as a
    found concurrency bug.
    """
    if not condition:
        raise AssertionViolation(message)
