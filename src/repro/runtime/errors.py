"""Runtime error types and structured failure diagnostics.

Besides the exception hierarchy, this module owns the *failure dump*:
when a run deadlocks, exhausts its step/wall-clock budget, or fails the
consistency sanitizer, :func:`collect_failure_diagnostics` snapshots the
execution state (per-thread pending op, the last-k executed events, the
thread-local view contents, hot spin sites) as a JSON-safe dict that
travels inside bug artifacts and is pretty-printed by
:func:`render_diagnostics` (the ``repro replay`` CLI).
"""

from __future__ import annotations

from typing import List, Optional


class ReproError(Exception):
    """Base class for all library errors."""


class AssertionViolation(ReproError):
    """A program-level assertion failed: the concurrency bug manifested."""


class ProgramDefinitionError(ReproError):
    """A program is malformed (duplicate locations, no threads, ...)."""


class ExecutionLimitExceeded(ReproError):
    """A run exceeded its step budget; treated as an inconclusive run."""


class DeadlockError(ReproError):
    """No thread is enabled but the program has not finished.

    Carries the structured failure dump when one was collected, so
    callers that catch the error can still inspect per-thread state.
    """

    def __init__(self, message: str, diagnostics: Optional[dict] = None):
        super().__init__(message)
        self.diagnostics = diagnostics


class ReplayDivergenceError(ReproError):
    """A replayed execution did not follow its recorded trace.

    Raised both when the trace runs out mid-execution and when the run
    finishes with decisions left over — either way the replayed program
    is not the recorded one, and any result would be misleading.
    """


def collect_failure_diagnostics(state, last_k: int = 12) -> dict:
    """Snapshot an :class:`~repro.runtime.executor.ExecutionState` dump.

    Everything is pre-rendered to JSON-safe primitives so the dump can be
    embedded in a bug artifact and cross process boundaries verbatim.
    """
    from ..analysis.trace import format_event  # local: avoid import cycle

    threads = []
    for t in state.threads:
        threads.append({
            "tid": t.tid,
            "name": t.name,
            "finished": t.finished,
            "pending": None if t.pending is None else repr(t.pending),
            "events_executed": t.events_executed,
            "clock": list(state.clocks[t.tid]),
        })
    events = []
    for e in state.graph.events[-last_k:]:
        entry = {"uid": e.uid, "tid": e.tid, "event": format_event(e)}
        if e.reads_from is not None:
            src = e.reads_from
            entry["rf"] = "init" if src.is_init else f"e{src.uid}(t{src.tid})"
        events.append(entry)
    return {
        "steps": state.steps,
        "threads": threads,
        "last_events": events,
        "views": state.visibility.snapshot(),
        "spin_sites": state.spins.snapshot(),
    }


def render_diagnostics(diagnostics: dict) -> str:
    """Human-readable rendering of a failure dump."""
    lines: List[str] = [f"steps executed: {diagnostics.get('steps', '?')}"]
    lines.append("threads:")
    for t in diagnostics.get("threads", []):
        status = "finished" if t.get("finished") \
            else f"pending {t.get('pending')!s}"
        clock = ",".join(str(c) for c in t.get("clock", []))
        lines.append(
            f"  t{t.get('tid')} {t.get('name')}: {status} "
            f"({t.get('events_executed')} events, clock [{clock}])"
        )
    events = diagnostics.get("last_events", [])
    if events:
        lines.append(f"last {len(events)} events:")
        for e in events:
            rf = f"  [rf <- {e['rf']}]" if "rf" in e else ""
            lines.append(f"  e{e.get('uid'):<4} t{e.get('tid')}  "
                         f"{e.get('event')}{rf}")
    views = diagnostics.get("views", {})
    floors = views.get("read_floors", {})
    if floors:
        lines.append("thread-local view floors (mo indices):")
        for key, index in floors.items():
            lines.append(f"  {key}: {index}")
    spins = [s for s in diagnostics.get("spin_sites", [])
             if s.get("spinning")]
    if spins:
        lines.append("spinning program points:")
        for s in spins:
            lines.append(f"  t{s.get('tid')} site {s.get('site')}: "
                         f"{s.get('count')} same-value executions")
    return "\n".join(lines)


def require(condition: bool, message: str = "assertion failed") -> None:
    """Program-level assertion helper for DSL thread bodies.

    Unlike the builtin ``assert``, this cannot be stripped by ``-O`` and
    raises :class:`AssertionViolation`, which the executor records as a
    found concurrency bug.
    """
    if not condition:
        raise AssertionViolation(message)
