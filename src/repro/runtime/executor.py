"""The execution engine.

Drives a :class:`repro.runtime.program.Program` step by step under a
:class:`repro.runtime.scheduler.Scheduler`, building a C11 execution graph
(:mod:`repro.memory`) as it goes:

* at each step the scheduler picks an enabled thread (possibly peeking
  pending ops, as PCTWM's Algorithm 1 does);
* the thread's pending operation becomes an event: writes append at the
  mo-tail, reads pick an rf source among the coherence-visible writes via
  the scheduler, fences and synchronizing reads join vector clocks;
* assertion violations, data races and deadlocks are recorded as bugs.

Every generated execution satisfies the consistency axioms of Section 4 by
construction (tests audit this with :mod:`repro.memory.axioms`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..memory.axioms import IncrementalCoherenceChecker, check_consistency
from ..memory.events import Event, MemoryOrder, _UNSTAMPED, clock_join
from ..memory.execution import ExecutionGraph
from ..memory.races import DataRace, RaceDetector
from ..memory.visibility import VisibilityTracker
from .errors import (
    AssertionViolation,
    ProgramDefinitionError,
    ReproError,
    collect_failure_diagnostics,
)
from .livelock import SpinTracker
from .ops import (
    CasOp,
    FenceOp,
    JoinOp,
    LoadOp,
    Op,
    RmwOp,
    SpawnOp,
    StoreOp,
    YieldOp,
    is_communication_op,
)
from .program import Program
from .scheduler import ReadContext, Scheduler
from .thread import ThreadState


@dataclass
class RunResult:
    """Outcome of a single test execution."""

    program: str
    scheduler: str
    bug_found: bool = False
    bug_kind: Optional[str] = None  # "assertion" | "race" | "deadlock"
    bug_message: Optional[str] = None
    #: True when the run hit the step budget (inconclusive, not a bug).
    limit_exceeded: bool = False
    #: True when the run hit its wall-clock budget (inconclusive, not a bug).
    timed_out: bool = False
    steps: int = 0
    #: Number of program events executed (the paper's k), excluding init.
    k: int = 0
    #: Number of communication events executed (the paper's k_com).
    k_com: int = 0
    races: List[DataRace] = field(default_factory=list)
    thread_results: Dict[str, Any] = field(default_factory=dict)
    graph: Optional[ExecutionGraph] = None
    #: Consistency-axiom violations found by the sanitizer (empty unless
    #: the run executed with ``sanitize=True`` and the graph is broken).
    violations: List[str] = field(default_factory=list)
    #: Structured failure dump (deadlock / step budget / wall-clock budget
    #: / sanitizer violation); None for clean runs.
    diagnostics: Optional[dict] = None
    #: Which execution engine produced the run ("fast" or "reference").
    engine: str = "fast"

    @property
    def inconsistent(self) -> bool:
        """True when the sanitizer found the execution graph inconsistent."""
        return bool(self.violations)

    def __bool__(self) -> bool:
        return self.bug_found


class ExecutionState:
    """Mutable per-run state shared between the executor and scheduler.

    ``fast=True`` (the default engine) turns on the incremental caches:
    release-chain stamps in the graph, memoized visibility floors, the
    race detector's atomic-only shortcut, and the enabled-set cache.
    ``fast=False`` is the reference path the differential suite compares
    against — every query recomputes from first principles.
    """

    def __init__(self, program: Program, spin_threshold: int = 8,
                 fast: bool = True):
        self.program = program
        self.fast = fast
        self.graph = ExecutionGraph(fast=fast)
        self.init_writes: Dict[str, Event] = {}
        for loc, init in program.locations.items():
            self.init_writes[loc] = self.graph.add_init_write(loc, init)
        self.threads: List[ThreadState] = program.instantiate()
        self.visibility = VisibilityTracker(self.graph, memoize=fast)
        self.races = RaceDetector(fast=fast)
        self.spins = SpinTracker(spin_threshold)
        n = len(self.threads)
        self.clocks: List[Tuple[int, ...]] = [(0,) * n for _ in range(n)]
        self.steps = 0
        self.k = 0
        self.k_com = 0
        self._by_name = {t.name: t for t in self.threads}
        #: Enabled-set cache, invalidated at the start of every step (the
        #: only points where enabledness can change).
        self._enabled_cache: Optional[List[int]] = None
        #: Count of live threads, so ``all_finished`` is O(1) on the fast
        #: path.  Maintained by :meth:`advance_thread` / :meth:`spawn_thread`.
        self._unfinished = sum(1 for t in self.threads if not t.finished)
        #: Online coherence auditor, attached by the executor in sanitize
        #: mode (None otherwise; the hot path stays hook-free).
        self.sanitizer: Optional[IncrementalCoherenceChecker] = None

    def reset(self, program: Optional[Program] = None) -> None:
        """Rebuild per-run state in place for the next trial.

        Equivalent to constructing a fresh ``ExecutionState`` with the
        same ``fast`` flag and spin threshold, but reuses the graph, the
        trackers, and their dict capacity.  Campaign runners keep one
        pooled state per worker and reset it between trials instead of
        reallocating the whole object web; only safe when the previous
        run's graph is no longer referenced (``keep_graph=False``).
        """
        if program is not None:
            self.program = program
        program = self.program
        self.graph.reset()
        self.init_writes.clear()
        for loc, init in program.locations.items():
            self.init_writes[loc] = self.graph.add_init_write(loc, init)
        self.threads = program.instantiate()
        self.visibility.reset()
        self.races.reset()
        self.spins.clear()
        n = len(self.threads)
        self.clocks = [(0,) * n for _ in range(n)]
        self.steps = 0
        self.k = 0
        self.k_com = 0
        self._by_name = {t.name: t for t in self.threads}
        self._enabled_cache = None
        self._unfinished = sum(1 for t in self.threads if not t.finished)
        self.sanitizer = None

    def spawn_thread(self, body, args, name: Optional[str],
                     parent_tid: int) -> ThreadState:
        """Create a runtime thread (SpawnOp); returns its primed state.

        The child starts with the parent's clock (the spawn edge is hb),
        assigned here so the new thread never exposes a malformed
        zero-length clock between creation and the caller's bookkeeping.
        """
        tid = len(self.threads)
        base = name or getattr(body, "__name__", "thread")
        unique = base
        suffix = 1
        while unique in self._by_name:
            unique = f"{base}#{suffix}"
            suffix += 1
        thread = ThreadState(tid, unique, body(*args))
        thread.prime()
        self.threads.append(thread)
        self.clocks.append(self.clocks[parent_tid])
        self._by_name[unique] = thread
        self._enabled_cache = None
        if not thread.finished:
            self._unfinished += 1
        return thread

    def advance_thread(self, thread: ThreadState, value) -> None:
        """Deliver an op result and fetch the thread's next op.

        The single mutation point for enabledness: invalidates the
        enabled-set cache and keeps the live-thread count for
        :meth:`all_finished`.
        """
        thread.advance(value)
        self._enabled_cache = None
        if thread.finished:
            self._unfinished -= 1

    # -- queries used by schedulers -------------------------------------------

    def enabled_tids(self) -> List[int]:
        """Threads that can take a step right now.

        Fast engine: cached between mutations — the executor invalidates
        the cache whenever a thread advances, finishes, or spawns, the
        only points where enabledness can change.  Callers must not
        mutate the returned list.
        """
        if self.fast and self._enabled_cache is not None:
            return self._enabled_cache
        out = []
        for t in self.threads:
            if t.finished:
                continue
            if t.pending_is_join:
                target = self._by_name.get(t.pending.thread_name)
                if target is None:
                    raise ProgramDefinitionError(
                        f"join target {t.pending.thread_name!r} does not exist"
                    )
                if not target.finished:
                    continue
            out.append(t.tid)
        self._enabled_cache = out
        return out

    def peek(self, tid: int) -> Optional[Op]:
        """The pending (not yet executed) op of a thread."""
        return self.threads[tid].pending

    def all_finished(self) -> bool:
        if self.fast:
            return self._unfinished == 0
        return all(t.finished for t in self.threads)

    def thread_by_name(self, name: str) -> ThreadState:
        return self._by_name[name]


class Executor:
    """Runs a program to completion under a scheduler."""

    #: How many steps pass between wall-clock deadline checks.  The check
    #: also runs before the first step, so a zero budget times out
    #: deterministically without executing anything.
    DEADLINE_CHECK_STRIDE = 32

    def __init__(self, program: Program, scheduler: Scheduler,
                 max_steps: int = 20000, spin_threshold: int = 8,
                 keep_graph: bool = True,
                 wall_timeout_s: Optional[float] = None,
                 sanitize: bool = False, engine: str = "fast"):
        if engine not in ("fast", "reference"):
            raise ValueError(
                f"engine must be 'fast' or 'reference', got {engine!r}"
            )
        self.program = program
        self.scheduler = scheduler
        self.max_steps = max_steps
        self.spin_threshold = spin_threshold
        self.keep_graph = keep_graph
        self.wall_timeout_s = wall_timeout_s
        self.sanitize = sanitize
        self.engine = engine
        self.fast = engine == "fast"
        #: Declared locations, cached for the per-access membership check.
        self._locs = program.locations
        #: Pooled ReadContext for the fast load path: one read context is
        #: live at a time (contexts never outlive their read), so the
        #: executor reuses a single instance instead of allocating one
        #: per load.
        self._ctx = ReadContext(0, "", MemoryOrder.RELAXED, candidates=())

    # -- public API ---------------------------------------------------------

    def run(self, state: Optional[ExecutionState] = None) -> RunResult:
        """Execute one randomized test run and report the outcome.

        ``state`` may be a pooled :class:`ExecutionState` that has been
        :meth:`~ExecutionState.reset` for this executor's program; campaign
        runners pass one to reuse the graph and trackers across trials.
        Callers that keep the result's graph alive (``keep_graph=True``)
        must not pool.
        """
        if state is None:
            state = ExecutionState(self.program, self.spin_threshold,
                                   fast=self.fast)
        result = RunResult(self.program.name, self.scheduler.name,
                           engine=self.engine)
        state.sanitizer = IncrementalCoherenceChecker(state.graph) \
            if self.sanitize else None
        self.scheduler.on_run_start(state)
        try:
            self._loop(state, result)
        except AssertionViolation as violation:
            result.bug_found = True
            result.bug_kind = "assertion"
            result.bug_message = str(violation)
        self._finish(state, result)
        return result

    # -- main loop -----------------------------------------------------------

    def _loop(self, state: ExecutionState, result: RunResult) -> None:
        deadline = None
        if self.wall_timeout_s is not None:
            deadline = time.perf_counter() + self.wall_timeout_s
        # The hottest loop in the library: every per-step attribute lookup
        # and call layer is hoisted or inlined (the former ``_step`` body
        # lives at the bottom of the loop).
        scheduler = self.scheduler
        choose_thread = scheduler.choose_thread
        dispatch = self._DISPATCH
        threads = state.threads
        max_steps = self.max_steps
        fast = state.fast
        while True:
            if (state._unfinished == 0) if fast else state.all_finished():
                self._run_final_checks(state, result)
                return
            enabled = state._enabled_cache if fast else None
            if enabled is None:
                enabled = state.enabled_tids()
            if not enabled:
                result.bug_found = True
                result.bug_kind = "deadlock"
                result.bug_message = "no enabled thread but program not done"
                result.diagnostics = collect_failure_diagnostics(state)
                return
            if state.steps >= max_steps:
                result.limit_exceeded = True
                result.diagnostics = collect_failure_diagnostics(state)
                return
            if deadline is not None \
                    and state.steps % self.DEADLINE_CHECK_STRIDE == 0 \
                    and time.perf_counter() >= deadline:
                result.timed_out = True
                result.diagnostics = collect_failure_diagnostics(state)
                return
            tid = choose_thread(state)
            if tid not in enabled:
                raise ReproError(
                    f"{scheduler.name} chose disabled thread {tid}"
                )
            thread = threads[tid]
            op = thread.pending
            state.steps += 1
            handler = dispatch.get(op.__class__)
            if handler is None:
                handler = self._dispatch_slow(op)
            handler(self, state, thread, op)

    def _run_final_checks(self, state: ExecutionState,
                          result: RunResult) -> None:
        results = {t.name: t.result for t in state.threads}
        result.thread_results = results
        for check in self.program.final_checks:
            check(results)

    def _finish(self, state: ExecutionState, result: RunResult) -> None:
        result.steps = state.steps
        result.k = state.k
        result.k_com = state.k_com
        result.races = list(state.races.races)
        if not result.thread_results:
            result.thread_results = {
                t.name: t.result for t in state.threads if t.finished
            }
        if state.races.racy and self.program.races_are_bugs \
                and not result.bug_found:
            result.bug_found = True
            result.bug_kind = "race"
            result.bug_message = str(state.races.races[0])
        if self.sanitize:
            violations = list(state.sanitizer.violations) \
                if state.sanitizer else []
            violations.extend(check_consistency(state.graph))
            seen = set()
            for violation in violations:
                text = str(violation)
                if text not in seen:
                    seen.add(text)
                    result.violations.append(text)
            if result.violations and result.diagnostics is None:
                result.diagnostics = collect_failure_diagnostics(state)
        if self.keep_graph:
            result.graph = state.graph

    # -- single step ---------------------------------------------------------

    def _step(self, state: ExecutionState, tid: int) -> None:
        thread = state.threads[tid]
        op = thread.pending
        state.steps += 1
        handler = self._DISPATCH.get(op.__class__)
        if handler is None:
            # Exotic op objects (e.g. an op subclass) fall back to the
            # isinstance chain the dispatch table compiles away.
            handler = self._dispatch_slow(op)
        handler(self, state, thread, op)

    def _exec_yield(self, state: ExecutionState, thread: ThreadState,
                    op: YieldOp) -> None:
        state.advance_thread(thread, None)

    @classmethod
    def _dispatch_slow(cls, op: Op):
        for base, handler in cls._DISPATCH.items():
            if isinstance(op, base):
                return handler
        raise ReproError(f"unknown op {op!r}")

    # -- clock helpers ----------------------------------------------------------

    @staticmethod
    def _tick(state: ExecutionState, tid: int,
              join: Optional[Event]) -> Tuple[int, ...]:
        """Bump ``tid``'s clock, first absorbing ``join``'s (if any).

        Takes a single optional join source — the common case — so the
        per-event list allocation the old ``joins`` parameter forced is
        gone; :meth:`_exec_fence` (multiple sources) joins its sources
        into the thread clock before calling.
        """
        clock = state.clocks[tid]
        if join is not None and not join.is_init:
            clock = clock_join(clock, join.clock)
        bumped = list(clock)
        if len(bumped) <= tid:
            # Spawned threads carry their parent's (shorter) clock; pad to
            # reach this thread's own slot.
            bumped.extend([0] * (tid + 1 - len(bumped)))
        bumped[tid] += 1
        clock = tuple(bumped)
        state.clocks[tid] = clock
        return clock

    def _commit(self, state: ExecutionState, thread: ThreadState,
                event: Event, op: Op, result: Any, info: dict) -> None:
        state.races.on_access(event)
        if state.sanitizer is not None:
            state.sanitizer.on_event(event)
        info["op"] = op
        self.scheduler.on_event_executed(state, event, info)
        # Inlined advance_thread: one event commits per step, so the
        # wrapper call was pure hot-path overhead.  The enabled set only
        # changes when a thread finishes or its new pending op is a join
        # (memory ops never block), so the cache survives the common
        # op-to-op advance.
        thread.advance(result)
        if thread.finished:
            state._enabled_cache = None
            state._unfinished -= 1
            self.scheduler.on_thread_finished(state, thread.tid)
        elif thread.pending_is_join:
            state._enabled_cache = None

    # -- op execution -------------------------------------------------------------

    def _exec_join(self, state: ExecutionState, thread: ThreadState,
                   op: JoinOp) -> None:
        target = state.thread_by_name(op.thread_name)
        state.clocks[thread.tid] = clock_join(
            state.clocks[thread.tid], state.clocks[target.tid]
        )
        state.advance_thread(thread, target.result)
        if thread.finished:
            self.scheduler.on_thread_finished(state, thread.tid)

    def _exec_spawn(self, state: ExecutionState, thread: ThreadState,
                    op: SpawnOp) -> None:
        child = state.spawn_thread(op.body, op.args, op.name, thread.tid)
        self.scheduler.on_thread_created(state, child.tid, thread.tid)
        state.advance_thread(thread, child.name)
        if thread.finished:
            self.scheduler.on_thread_finished(state, thread.tid)

    def _exec_fence(self, state: ExecutionState, thread: ThreadState,
                    op: FenceOp) -> None:
        if is_communication_op(op):
            state.k_com += 1
        state.k += 1
        tid = thread.tid
        fence_sources: List[Event] = []
        if op.order.is_acquire:
            fence_sources = list(thread.pending_sync_sources)
            thread.pending_sync_sources.clear()
        clock = state.clocks[tid]
        for src in fence_sources:
            if not src.is_init:
                clock = clock_join(clock, src.clock)
        state.clocks[tid] = clock
        clock = self._tick(state, tid, None)
        event = state.graph.add_fence(tid, op.order)
        event.clock = clock
        self._commit(state, thread, event, op, None,
                     {"fence_sync_sources": fence_sources})

    def _exec_store(self, state: ExecutionState, thread: ThreadState,
                    op: StoreOp) -> None:
        # Second-hottest handler; ``_tick``, ``note_write`` and
        # ``_commit`` are inlined as in ``_exec_load``.
        order = op.order
        if order.is_seq_cst:
            state.k_com += 1
        state.k += 1
        tid = thread.tid
        loc = op.loc
        if loc not in self._locs:
            self._require_loc(loc)
        # Inlined _tick (stores never join another clock).
        bumped = list(state.clocks[tid])
        if len(bumped) <= tid:
            bumped.extend([0] * (tid + 1 - len(bumped)))
        bumped[tid] += 1
        clock = tuple(bumped)
        state.clocks[tid] = clock
        event = state.graph.add_write(tid, loc, op.value, order)
        event.clock = clock
        # Inlined visibility.note_write (seq_cst write floor).
        if order.is_seq_cst:
            sc_floor = state.visibility._sc_write_floor
            if event.mo_index > sc_floor[loc]:
                sc_floor[loc] = event.mo_index
        # Inlined _commit, with the race detector's atomic-only shortcut
        # folded in: an atomic access at a location with no non-atomic
        # history can't race, so only the last-access table is updated.
        races = state.races
        if races.fast and order.is_atomic and loc not in races._na_locs:
            races._last_write[loc][tid] = event
        else:
            races.on_access(event)
        if state.sanitizer is not None:
            state.sanitizer.on_event(event)
        scheduler = self.scheduler
        scheduler.on_event_executed(state, event, {"op": op})
        thread.advance(None)
        if thread.finished:
            state._enabled_cache = None
            state._unfinished -= 1
            scheduler.on_thread_finished(state, thread.tid)
        elif thread.pending_is_join:
            state._enabled_cache = None

    def _exec_load(self, state: ExecutionState, thread: ThreadState,
                   op: LoadOp) -> None:
        # The hottest handler in the engine (~3 of 4 steps on the bench
        # workloads are loads): the per-read helpers — the spin check,
        # ``_sync_sources``, ``_tick``, ``note_read`` and ``_commit`` —
        # are inlined, and the fast engine reuses one pooled ReadContext
        # instead of allocating one per read (contexts never outlive the
        # read: schedulers may keep the candidate *list* but not the
        # context object).
        state.k_com += 1
        state.k += 1
        tid = thread.tid
        loc = op.loc
        order = op.order
        if loc not in self._locs:
            self._require_loc(loc)
        spins = state.spins
        site_key = thread.site_key
        spinning = spins.is_spinning(site_key) if spins._hot else False
        scheduler = self.scheduler
        if self.fast:
            # Lazy candidates: schedulers that need only a fragment of the
            # visible set (the floor, the tail, the h-bounded suffix)
            # never materialize the full list.
            ctx = self._ctx
            ctx.tid = tid
            ctx.loc = loc
            ctx.order = order
            ctx.op = op
            ctx.spinning = spinning
            ctx.is_rmw = False
            ctx._candidates = None
            ctx._state = state
            ctx._floor = -1
            source = scheduler.choose_read_from(state, ctx)
            writes = state.graph.writes_by_loc[loc]
            index = source.mo_index
            # O(1) identity validation against the mo array: membership in
            # the visible suffix ⟺ the event sits at its mo slot and is at
            # or above the coherence floor.  The mo-maximal write is always
            # visible, so the floor is only computed (memoized on the
            # context) for non-maximal sources.
            nwrites = len(writes)
            if index < 0 or index >= nwrites \
                    or writes[index] is not source:
                raise ReproError(
                    f"{scheduler.name} chose rf source outside the "
                    f"visible set: {source!r}"
                )
            if index != nwrites - 1:
                floor = ctx._floor
                if floor < 0:
                    floor = ctx.floor_index()
                if index < floor:
                    raise ReproError(
                        f"{scheduler.name} chose rf source outside "
                        f"the visible set: {source!r}"
                    )
        else:
            candidates = state.visibility.visible_writes(
                tid, loc, state.clocks[tid], seq_cst=order.is_seq_cst
            )
            ctx = ReadContext(tid=tid, loc=loc, order=order,
                              candidates=candidates, op=op,
                              spinning=spinning)
            source = scheduler.choose_read_from(state, ctx)
            if source not in candidates:
                raise ReproError(
                    f"{scheduler.name} chose rf source outside the "
                    f"visible set: {source!r}"
                )
        # Commit the read (previously the separate ``_finish_read`` — the
        # load path is the hottest in the engine, so it is kept flat).
        result = source.wval
        # Inlined _sync_sources.
        sync_source = fence_source = None
        if not source.is_init:
            chain = source._release_chain
            if chain is _UNSTAMPED:
                chain = state.graph.release_source_reference(source)
            if chain is not None:
                if order.is_acquire:
                    sync_source = fence_source = chain
                else:
                    thread.pending_sync_sources.append(chain)
                    fence_source = chain
        # Inlined _tick.
        clock = state.clocks[tid]
        if sync_source is not None and not sync_source.is_init:
            clock = clock_join(clock, sync_source.clock)
        bumped = list(clock)
        if len(bumped) <= tid:
            bumped.extend([0] * (tid + 1 - len(bumped)))
        bumped[tid] += 1
        clock = tuple(bumped)
        state.clocks[tid] = clock
        event = state.graph.add_read(tid, loc, source, order)
        event.clock = clock
        # Inlined visibility.note_read: raise the read-coherence floor.
        read_floor = state.visibility._read_floor
        key = (tid, loc)
        if source.mo_index > read_floor[key]:
            read_floor[key] = source.mo_index
        spins.note(site_key, result)
        # Inlined _commit (race-detector shortcut as in _exec_store).
        races = state.races
        if races.fast and order.is_atomic and loc not in races._na_locs:
            races._last_read[loc][tid] = event
        else:
            races.on_access(event)
        if state.sanitizer is not None:
            state.sanitizer.on_event(event)
        scheduler.on_event_executed(state, event, {
            "op": op,
            "sync_source": sync_source,
            "release_chain_source": fence_source,
            "spinning": spinning,
        })
        thread.advance(result)
        if thread.finished:
            state._enabled_cache = None
            state._unfinished -= 1
            scheduler.on_thread_finished(state, thread.tid)
        elif thread.pending_is_join:
            state._enabled_cache = None

    def _rmw_commit(self, state: ExecutionState, thread: ThreadState,
                    source: Event, event: Event, old, result,
                    sync_source: Optional[Event],
                    fence_source: Optional[Event], op: Op,
                    tid: int) -> None:
        """Shared tail of the RMW/CAS handlers (read floor + commit)."""
        # Inlined visibility.note_read.
        read_floor = state.visibility._read_floor
        key = (tid, source.loc)
        if source.mo_index > read_floor[key]:
            read_floor[key] = source.mo_index
        state.spins.note(thread.site_key, old)
        # Same race-detector shortcut as _exec_store.
        races = state.races
        loc = source.loc
        if races.fast and event.is_atomic and loc not in races._na_locs:
            races._last_write[loc][tid] = event
            races._last_read[loc][tid] = event
        else:
            races.on_access(event)
        if state.sanitizer is not None:
            state.sanitizer.on_event(event)
        scheduler = self.scheduler
        scheduler.on_event_executed(state, event, {
            "op": op,
            "sync_source": sync_source,
            "release_chain_source": fence_source,
            "rmw": True,
        })
        thread.advance(result)
        if thread.finished:
            state._enabled_cache = None
            state._unfinished -= 1
            scheduler.on_thread_finished(state, thread.tid)
        elif thread.pending_is_join:
            state._enabled_cache = None

    def _exec_rmw(self, state: ExecutionState, thread: ThreadState,
                  op: RmwOp) -> None:
        state.k_com += 1
        state.k += 1
        tid = thread.tid
        loc = op.loc
        if loc not in self._locs:
            self._require_loc(loc)
        source = state.graph.writes_by_loc[loc][-1]
        old = source.wval
        new = op.update(old)
        order = op.order
        sync_source, fence_source = self._sync_sources(
            state, thread, source, order
        )
        clock = self._tick(state, tid, sync_source)
        event = state.graph.add_rmw(tid, loc, source, new, order)
        event.clock = clock
        if order.is_seq_cst:
            sc_floor = state.visibility._sc_write_floor
            if event.mo_index > sc_floor[loc]:
                sc_floor[loc] = event.mo_index
        self._rmw_commit(state, thread, source, event, old, old,
                         sync_source, fence_source, op, tid)

    def _exec_cas(self, state: ExecutionState, thread: ThreadState,
                  op: CasOp) -> None:
        state.k_com += 1
        state.k += 1
        tid = thread.tid
        loc = op.loc
        if loc not in self._locs:
            self._require_loc(loc)
        source = state.graph.writes_by_loc[loc][-1]
        old = source.wval
        success = old == op.expected
        order = op.success_order if success else op.failure_order
        sync_source, fence_source = self._sync_sources(
            state, thread, source, order
        )
        clock = self._tick(state, tid, sync_source)
        if success:
            event = state.graph.add_rmw(tid, loc, source, op.desired,
                                        op.success_order)
            if op.success_order.is_seq_cst:
                sc_floor = state.visibility._sc_write_floor
                if event.mo_index > sc_floor[loc]:
                    sc_floor[loc] = event.mo_index
        else:
            event = state.graph.add_read(tid, loc, source,
                                         op.failure_order)
        event.clock = clock
        self._rmw_commit(state, thread, source, event, old,
                         (success, old), sync_source, fence_source, op,
                         tid)

    def _sync_sources(self, state: ExecutionState, thread: ThreadState,
                      source: Event, order: MemoryOrder,
                      ) -> Tuple[Optional[Event], Optional[Event]]:
        """Resolve the sw consequences of reading from ``source``.

        Returns ``(sync_source, release_chain_source)``: the first is the
        event whose clock the reader joins *now* (acquire read of a release
        chain); the second is the chain source recorded for a later acquire
        fence (relaxed read of a release chain, the ``(po; [F])`` suffix of
        the sw definition).
        """
        if source.is_init:
            return None, None
        chain = state.graph.release_source(source)
        if chain is None:
            return None, None
        if order.is_acquire:
            return chain, chain
        thread.pending_sync_sources.append(chain)
        return None, chain

    def _require_loc(self, loc: str) -> None:
        if loc not in self.program.locations:
            raise ProgramDefinitionError(
                f"location {loc!r} is not declared in program "
                f"{self.program.name!r}"
            )

    #: Exact-type op dispatch (plain functions: ``_step`` passes ``self``
    #: explicitly).  Subclassed ops fall back to ``_dispatch_slow``.
    _DISPATCH = {
        YieldOp: _exec_yield,
        JoinOp: _exec_join,
        SpawnOp: _exec_spawn,
        LoadOp: _exec_load,
        StoreOp: _exec_store,
        RmwOp: _exec_rmw,
        CasOp: _exec_cas,
        FenceOp: _exec_fence,
    }


def run_once(program: Program, scheduler: Scheduler,
             max_steps: int = 20000, spin_threshold: int = 8,
             keep_graph: bool = True,
             wall_timeout_s: Optional[float] = None,
             sanitize: bool = False, engine: str = "fast") -> RunResult:
    """Convenience wrapper: build an executor and run a single test.

    ``wall_timeout_s`` bounds the run's wall-clock time: when the budget
    is exhausted the run stops at the next deadline check and is reported
    with ``timed_out=True`` (inconclusive, like ``limit_exceeded``).

    ``sanitize=True`` audits the generated execution against the
    Section-4 consistency axioms: an O(1)-per-event coherence check
    during the run plus the full :func:`repro.memory.axioms
    .check_consistency` audit at run end.  Violations land in
    ``result.violations`` (``result.inconsistent``) with a structured
    failure dump in ``result.diagnostics`` — they indicate a bug in the
    *engine*, not the program under test.

    ``engine`` selects the execution engine: ``"fast"`` (default) uses
    the incremental caches (release-chain stamps, memoized visibility
    floors, lazy read candidates, array-backed PCTWM views);
    ``"reference"`` recomputes every query from first principles.  Both
    engines make identical scheduling and reads-from choices for any
    seed — the differential suite (``tests/test_fastpath_differential``)
    enforces trace-for-trace equality.
    """
    executor = Executor(program, scheduler, max_steps=max_steps,
                        spin_threshold=spin_threshold, keep_graph=keep_graph,
                        wall_timeout_s=wall_timeout_s, sanitize=sanitize,
                        engine=engine)
    return executor.run()
