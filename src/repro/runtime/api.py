"""User-facing handles for writing DSL programs.

:class:`Atomic` and :class:`NonAtomic` wrap a location name and produce the
operation descriptors of :mod:`repro.runtime.ops`:

    x = program.atomic("X", 0)

    def reader():
        a = yield x.load(ACQ)
        ok, old = yield x.cas(expected=0, desired=1)
        yield fence(SC)

Every method *returns* an op to be ``yield``-ed; calling without yielding
performs nothing.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..memory.events import MemoryOrder
from .ops import (
    CasOp,
    FenceOp,
    JoinOp,
    LoadOp,
    Op,
    RmwOp,
    SpawnOp,
    StoreOp,
    YieldOp,
)


class Atomic:
    """Handle for a C11 atomic location."""

    def __init__(self, loc: str, default_order: MemoryOrder = MemoryOrder.SEQ_CST):
        self.loc = loc
        self.default_order = default_order

    def load(self, order: Optional[MemoryOrder] = None) -> LoadOp:
        return LoadOp(self.loc, order or self.default_order)

    def store(self, value: object, order: Optional[MemoryOrder] = None) -> StoreOp:
        return StoreOp(self.loc, value, order or self.default_order)

    def rmw(self, update: Callable[[object], object],
            order: Optional[MemoryOrder] = None) -> RmwOp:
        return RmwOp(self.loc, update, order or self.default_order)

    def fetch_add(self, delta: int = 1,
                  order: Optional[MemoryOrder] = None) -> RmwOp:
        return RmwOp(self.loc, lambda v, d=delta: v + d,
                     order or self.default_order)

    def fetch_sub(self, delta: int = 1,
                  order: Optional[MemoryOrder] = None) -> RmwOp:
        return RmwOp(self.loc, lambda v, d=delta: v - d,
                     order or self.default_order)

    def exchange(self, value: object,
                 order: Optional[MemoryOrder] = None) -> RmwOp:
        return RmwOp(self.loc, lambda _v, nv=value: nv,
                     order or self.default_order)

    def cas(self, expected: object, desired: object,
            success_order: Optional[MemoryOrder] = None,
            failure_order: MemoryOrder = MemoryOrder.RELAXED) -> CasOp:
        return CasOp(self.loc, expected, desired,
                     success_order or self.default_order, failure_order)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Atomic({self.loc!r})"


class NonAtomic:
    """Handle for a plain (non-atomic) location; races on it are bugs."""

    def __init__(self, loc: str):
        self.loc = loc

    def load(self) -> LoadOp:
        return LoadOp(self.loc, MemoryOrder.NA)

    def store(self, value: object) -> StoreOp:
        return StoreOp(self.loc, value, MemoryOrder.NA)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NonAtomic({self.loc!r})"


def fence(order: MemoryOrder = MemoryOrder.SEQ_CST) -> FenceOp:
    """A memory fence op (``Frel``, ``Facq``, or SC fence)."""
    return FenceOp(order)


def join(thread_name: str) -> JoinOp:
    """Block until the named thread finishes; yields its return value."""
    return JoinOp(thread_name)


def sched_yield() -> YieldOp:
    """A pure scheduling point (no memory event is generated)."""
    return YieldOp()


def spawn(body, *args, name=None) -> SpawnOp:
    """Create a thread at runtime; yields the child's name (joinable).

    ``body`` is a generator function like any static thread body.
    """
    return SpawnOp(body, args, name)


def spin_until(handle: Atomic, predicate, order: Optional[MemoryOrder] = None,
               max_spins: int = 60):
    """Bounded wait loop: re-load ``handle`` until ``predicate`` holds.

    Returns the satisfying value, or None when the bound is exhausted
    (callers treat that as starvation, not a bug).  Use with
    ``yield from``:

        value = yield from spin_until(flag, lambda v: v == 1, ACQ)

    The loop cooperates with the executor's livelock heuristics: each
    iteration is an ordinary load at a stable program site.
    """
    if max_spins < 1:
        raise ValueError("max_spins must be >= 1")
    for _ in range(max_spins):
        value = yield handle.load(order or handle.default_order)
        if predicate(value):
            return value
    return None
