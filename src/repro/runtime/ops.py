"""Operation descriptors yielded by DSL thread bodies.

A thread body is a Python generator; each shared-memory access is expressed
by yielding one of these descriptors, and the executor sends the operation's
result back into the generator:

    a = yield LoadOp("X", ACQ)        # -> value read
    yield StoreOp("X", 1, REL)        # -> None
    old = yield RmwOp("X", lambda v: v + 1, ACQ_REL)   # -> old value
    ok, old = yield CasOp("X", 0, 1, ACQ_REL, RLX)     # -> (success, old)
    yield FenceOp(SC)                 # -> None
    ret = yield JoinOp("worker")      # -> target thread's return value

Programs normally construct these through the handles in
:mod:`repro.runtime.api` rather than directly.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from ..memory.events import MemoryOrder

#: Process-wide monotonic op counter.  Never reused, unlike ``id()``,
#: which CPython recycles as soon as an op object is garbage-collected.
_op_uids = itertools.count(1)

_SC = MemoryOrder.SEQ_CST


class Op:
    """Base operation; identity is by instance (ops are single-use).

    Every op carries a ``uid`` — a process-wide monotonically increasing
    sequence number stamped at construction.  Schedulers that must
    remember "have I seen this pending op before?" (PCTWM's ``counted`` /
    ``reordered`` sets, POS's per-op priorities) key on ``op.uid``:
    keying on ``id(op)`` is unsound because ops are garbage-collected
    after they execute and CPython reuses their addresses, so a stale id
    could silently alias a brand-new op.

    Hand-rolled ``__slots__`` classes rather than dataclasses: one op is
    allocated per executed operation (and one per *iteration* of a spin
    loop), so the generated ``__init__`` -> ``__post_init__`` call pair
    was measurable campaign overhead.
    """

    __slots__ = ("uid",)

    #: Communication-sink classification, consulted twice per scheduler
    #: step (see :func:`is_communication_op`): ``True``/``False`` when the
    #: op kind decides alone, ``"store"``/``"fence"`` when the memory
    #: order matters.
    _comm = False

    def __init__(self) -> None:
        self.uid = next(_op_uids)

    def _fields(self):
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v!r}" for k, v in self._fields())
        return f"{type(self).__name__}({body})"


class LoadOp(Op):
    __slots__ = ("loc", "order")

    _comm = True

    def __init__(self, loc: str, order: MemoryOrder = _SC):
        self.uid = next(_op_uids)
        self.loc = loc
        self.order = order

    def _fields(self):
        return (("loc", self.loc), ("order", self.order))


class StoreOp(Op):
    __slots__ = ("loc", "value", "order")

    _comm = "store"

    def __init__(self, loc: str, value: object = None,
                 order: MemoryOrder = _SC):
        self.uid = next(_op_uids)
        self.loc = loc
        self.value = value
        self.order = order

    def _fields(self):
        return (("loc", self.loc), ("value", self.value),
                ("order", self.order))


class RmwOp(Op):
    """Unconditional atomic update: new value = ``update(old)``.

    Always succeeds; the event is a U event.  Per the atomicity axiom the
    read side observes the mo-maximal write.
    """

    __slots__ = ("loc", "update", "order")

    _comm = True

    def __init__(self, loc: str,
                 update: Callable[[object], object] = lambda v: v,
                 order: MemoryOrder = _SC):
        self.uid = next(_op_uids)
        self.loc = loc
        self.update = update
        self.order = order

    def _fields(self):
        return (("loc", self.loc), ("update", self.update),
                ("order", self.order))


class CasOp(Op):
    """Compare-and-swap.  Result is ``(success, old_value)``.

    On success it is a U event with ``success_order``; on failure it
    degenerates to a read with ``failure_order`` (paper Section 4).
    """

    __slots__ = ("loc", "expected", "desired", "success_order",
                 "failure_order")

    _comm = True

    def __init__(self, loc: str, expected: object = None,
                 desired: object = None,
                 success_order: MemoryOrder = _SC,
                 failure_order: MemoryOrder = _SC):
        self.uid = next(_op_uids)
        self.loc = loc
        self.expected = expected
        self.desired = desired
        self.success_order = success_order
        self.failure_order = failure_order

    def _fields(self):
        return (("loc", self.loc), ("expected", self.expected),
                ("desired", self.desired),
                ("success_order", self.success_order),
                ("failure_order", self.failure_order))


class FenceOp(Op):
    __slots__ = ("order",)

    _comm = "fence"

    def __init__(self, order: MemoryOrder = _SC):
        self.uid = next(_op_uids)
        self.order = order

    def _fields(self):
        return (("order", self.order),)


class SpawnOp(Op):
    """Create a new thread at runtime; result is the child's name.

    The child starts with the parent's happens-before knowledge (its
    initial clock is the parent's at the spawn point), matching
    ``pthread_create`` semantics.
    """

    __slots__ = ("body", "args", "name")

    def __init__(self, body: Callable[..., object] = lambda: iter(()),
                 args: tuple = (), name: Optional[str] = None):
        self.uid = next(_op_uids)
        self.body = body
        self.args = args
        self.name = name

    def _fields(self):
        return (("body", self.body), ("args", self.args),
                ("name", self.name))


class JoinOp(Op):
    """Block until the named thread finishes; result is its return value."""

    __slots__ = ("thread_name",)

    def __init__(self, thread_name: str = ""):
        self.uid = next(_op_uids)
        self.thread_name = thread_name

    def _fields(self):
        return (("thread_name", self.thread_name),)


class YieldOp(Op):
    """A pure scheduling point (no memory event)."""

    __slots__ = ()


def is_communication_op(op: Op) -> bool:
    """The ``isCommunicationEvent`` predicate of Algorithm 1, on pending ops.

    A communication event is an SC event, a read (including RMW/CAS), or an
    acquire fence — the possible *sinks* of a ``com`` relation
    (Definition 3).  Dispatches on the per-class ``_comm`` flag instead of
    an isinstance chain: schedulers consult this for every peeked op.
    """
    comm = op._comm
    if comm is True or comm is False:
        return comm
    order = op.order
    if comm == "store":
        return order.is_seq_cst
    return order.is_acquire or order.is_seq_cst
