"""Operation descriptors yielded by DSL thread bodies.

A thread body is a Python generator; each shared-memory access is expressed
by yielding one of these descriptors, and the executor sends the operation's
result back into the generator:

    a = yield LoadOp("X", ACQ)        # -> value read
    yield StoreOp("X", 1, REL)        # -> None
    old = yield RmwOp("X", lambda v: v + 1, ACQ_REL)   # -> old value
    ok, old = yield CasOp("X", 0, 1, ACQ_REL, RLX)     # -> (success, old)
    yield FenceOp(SC)                 # -> None
    ret = yield JoinOp("worker")      # -> target thread's return value

Programs normally construct these through the handles in
:mod:`repro.runtime.api` rather than directly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..memory.events import MemoryOrder

#: Process-wide monotonic op counter.  Never reused, unlike ``id()``,
#: which CPython recycles as soon as an op object is garbage-collected.
_op_uids = itertools.count(1)


@dataclass(eq=False)
class Op:
    """Base operation; identity is by instance (ops are single-use).

    Every op carries a ``uid`` — a process-wide monotonically increasing
    sequence number stamped at construction.  Schedulers that must
    remember "have I seen this pending op before?" (PCTWM's ``counted`` /
    ``reordered`` sets, POS's per-op priorities) key on ``op.uid``:
    keying on ``id(op)`` is unsound because ops are garbage-collected
    after they execute and CPython reuses their addresses, so a stale id
    could silently alias a brand-new op.
    """

    uid: int = field(init=False, repr=False, compare=False)

    #: Communication-sink classification, consulted twice per scheduler
    #: step (see :func:`is_communication_op`): ``True``/``False`` when the
    #: op kind decides alone, ``"order"`` when the memory order matters.
    _comm = False

    def __post_init__(self) -> None:
        self.uid = next(_op_uids)


@dataclass(eq=False)
class LoadOp(Op):
    loc: str
    order: MemoryOrder = MemoryOrder.SEQ_CST

    _comm = True


@dataclass(eq=False)
class StoreOp(Op):
    loc: str
    value: object = None
    order: MemoryOrder = MemoryOrder.SEQ_CST

    _comm = "store"


@dataclass(eq=False)
class RmwOp(Op):
    """Unconditional atomic update: new value = ``update(old)``.

    Always succeeds; the event is a U event.  Per the atomicity axiom the
    read side observes the mo-maximal write.
    """

    loc: str
    update: Callable[[object], object] = field(default=lambda v: v)
    order: MemoryOrder = MemoryOrder.SEQ_CST

    _comm = True


@dataclass(eq=False)
class CasOp(Op):
    """Compare-and-swap.  Result is ``(success, old_value)``.

    On success it is a U event with ``success_order``; on failure it
    degenerates to a read with ``failure_order`` (paper Section 4).
    """

    loc: str
    expected: object = None
    desired: object = None
    success_order: MemoryOrder = MemoryOrder.SEQ_CST
    failure_order: MemoryOrder = MemoryOrder.SEQ_CST

    _comm = True


@dataclass(eq=False)
class FenceOp(Op):
    order: MemoryOrder = MemoryOrder.SEQ_CST

    _comm = "fence"


@dataclass(eq=False)
class SpawnOp(Op):
    """Create a new thread at runtime; result is the child's name.

    The child starts with the parent's happens-before knowledge (its
    initial clock is the parent's at the spawn point), matching
    ``pthread_create`` semantics.
    """

    body: Callable[..., object] = field(default=lambda: iter(()))
    args: tuple = ()
    name: Optional[str] = None


@dataclass(eq=False)
class JoinOp(Op):
    """Block until the named thread finishes; result is its return value."""

    thread_name: str = ""


@dataclass(eq=False)
class YieldOp(Op):
    """A pure scheduling point (no memory event)."""


def is_communication_op(op: Op) -> bool:
    """The ``isCommunicationEvent`` predicate of Algorithm 1, on pending ops.

    A communication event is an SC event, a read (including RMW/CAS), or an
    acquire fence — the possible *sinks* of a ``com`` relation
    (Definition 3).  Dispatches on the per-class ``_comm`` flag instead of
    an isinstance chain: schedulers consult this for every peeked op.
    """
    comm = op._comm
    if comm is True or comm is False:
        return comm
    order = op.order
    if comm == "store":
        return order.is_seq_cst
    return order.is_acquire or order.is_seq_cst
