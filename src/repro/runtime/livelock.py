"""Livelock (spin-starvation) detection.

Priority-based schedulers can starve a wait loop forever: the spinning
thread keeps the highest priority, and — under PCTWM — keeps re-reading its
stale thread-local view, so it can never observe the value it waits for
(Section 6.2 discusses this for the seqlock benchmark).

The tracker flags a thread as *spinning* when the same program point has
re-executed more than ``threshold`` times while observing the same value.
Schedulers respond per the paper's heuristic: switch to a random thread
and/or allow the spinning read to read globally.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple


class SpinTracker:
    """Counts consecutive same-value executions per program point.

    Sites live in one ``site -> [count, last_value]`` dict (one lookup per
    note instead of three), and ``_hot`` counts sites currently above the
    threshold so :meth:`is_spinning` — consulted two or three times per
    scheduler step — is a single attribute check while nothing spins, the
    overwhelmingly common case.
    """

    def __init__(self, threshold: int = 8):
        if threshold < 1:
            raise ValueError("spin threshold must be >= 1")
        self.threshold = threshold
        self._sites: Dict[Tuple[int, int], list] = {}
        self._hot = 0

    def note(self, site: Tuple[int, int], value: Hashable) -> bool:
        """Record one execution of ``site`` observing ``value``.

        Returns True when the site has now exceeded the spin threshold.
        """
        entry = self._sites.get(site)
        if entry is None:
            self._sites[site] = [1, value]
            return False
        try:
            same = entry[1] == value
        except Exception:  # unhashable / incomparable values never spin
            same = False
        if same:
            entry[0] += 1
            if entry[0] == self.threshold + 1:
                self._hot += 1
        else:
            if entry[0] > self.threshold:
                self._hot -= 1
            entry[0] = 1
            entry[1] = value
        return entry[0] > self.threshold

    def is_spinning(self, site: Tuple[int, int]) -> bool:
        if not self._hot:
            return False
        entry = self._sites.get(site)
        return entry is not None and entry[0] > self.threshold

    def snapshot(self, limit: int = 8) -> list:
        """The hottest program points, for failure diagnostics.

        Returns up to ``limit`` ``{"tid", "site", "count", "spinning"}``
        entries, hottest first.
        """
        hottest = sorted(self._sites.items(), key=lambda kv: -kv[1][0])[:limit]
        return [
            {"tid": site[0], "site": site[1], "count": entry[0],
             "spinning": entry[0] > self.threshold}
            for site, entry in hottest
        ]

    def reset(self, site: Tuple[int, int]) -> None:
        entry = self._sites.pop(site, None)
        if entry is not None and entry[0] > self.threshold:
            self._hot -= 1

    def clear(self) -> None:
        """Forget every site (per-run reuse of the tracker)."""
        self._sites.clear()
        self._hot = 0


