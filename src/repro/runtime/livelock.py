"""Livelock (spin-starvation) detection.

Priority-based schedulers can starve a wait loop forever: the spinning
thread keeps the highest priority, and — under PCTWM — keeps re-reading its
stale thread-local view, so it can never observe the value it waits for
(Section 6.2 discusses this for the seqlock benchmark).

The tracker flags a thread as *spinning* when the same program point has
re-executed more than ``threshold`` times while observing the same value.
Schedulers respond per the paper's heuristic: switch to a random thread
and/or allow the spinning read to read globally.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple


class SpinTracker:
    """Counts consecutive same-value executions per program point."""

    def __init__(self, threshold: int = 8):
        if threshold < 1:
            raise ValueError("spin threshold must be >= 1")
        self.threshold = threshold
        self._counts: Dict[Tuple[int, int], int] = {}
        self._last_value: Dict[Tuple[int, int], Hashable] = {}

    def note(self, site: Tuple[int, int], value: Hashable) -> bool:
        """Record one execution of ``site`` observing ``value``.

        Returns True when the site has now exceeded the spin threshold.
        """
        try:
            same = self._last_value.get(site, _UNSET) == value
        except Exception:  # unhashable / incomparable values never spin
            same = False
        if same:
            self._counts[site] = self._counts.get(site, 0) + 1
        else:
            self._counts[site] = 1
            self._last_value[site] = value
        return self._counts[site] > self.threshold

    def is_spinning(self, site: Tuple[int, int]) -> bool:
        return self._counts.get(site, 0) > self.threshold

    def snapshot(self, limit: int = 8) -> list:
        """The hottest program points, for failure diagnostics.

        Returns up to ``limit`` ``{"tid", "site", "count", "spinning"}``
        entries, hottest first.
        """
        hottest = sorted(self._counts.items(), key=lambda kv: -kv[1])[:limit]
        return [
            {"tid": site[0], "site": site[1], "count": count,
             "spinning": count > self.threshold}
            for site, count in hottest
        ]

    def reset(self, site: Tuple[int, int]) -> None:
        self._counts.pop(site, None)
        self._last_value.pop(site, None)


class _Unset:
    def __eq__(self, other: object) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unset>"


_UNSET = _Unset()
