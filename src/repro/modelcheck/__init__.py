"""Exhaustive and bounded systematic exploration for tiny programs."""

from .bounded import BoundedReport, explore_bounded, preemption_ladder
from .explorer import ExplorationReport, explore

__all__ = [
    "BoundedReport",
    "ExplorationReport",
    "explore",
    "explore_bounded",
    "preemption_ladder",
]
