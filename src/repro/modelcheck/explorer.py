"""Exhaustive exploration of the execution space (CDSChecker-style).

The randomized algorithms *sample* executions; for tiny programs we can
instead *enumerate* them all: a DFS over every scheduling choice and every
coherence-visible reads-from choice, realized by replaying decision
prefixes (stateless model checking, as in CDSChecker — the paper's
reference [38]).

This provides ground truth for the test suite: the exact set of reachable
behaviours, whether a bug is reachable at all, and the fraction of buggy
executions — the denominator the randomized testers are up against.

    report = explore(store_buffering)
    report.executions     # 36 for SB: 6 interleavings x rf choices
    report.buggy          # how many violate the assertion
    report.signatures     # distinct reads-from behaviours
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set, Tuple

from ..harness.coverage import Signature, execution_signature
from ..memory.events import Event
from ..runtime.executor import RunResult, run_once
from ..runtime.program import Program
from ..runtime.scheduler import ReadContext, Scheduler

#: A decision: ("t", index-into-sorted-enabled) or ("r", candidate index).
Decision = Tuple[str, int]


class _EnumScheduler(Scheduler):
    """Follows a decision prefix, then takes first options while recording
    the arity of every decision met beyond the prefix."""

    name = "enumerate"

    def __init__(self, prefix: List[Decision]):
        super().__init__(seed=0)
        self.prefix = prefix
        self.taken: List[Decision] = []
        self.arities: List[int] = []

    def _decide(self, kind: str, arity: int) -> int:
        position = len(self.taken)
        if position < len(self.prefix):
            expected_kind, choice = self.prefix[position]
            if expected_kind != kind:
                raise RuntimeError(
                    f"exploration divergence at {position}: prefix has "
                    f"{expected_kind!r}, run asks {kind!r}"
                )
        else:
            choice = 0
        self.taken.append((kind, choice))
        self.arities.append(arity)
        return choice

    def choose_thread(self, state) -> int:
        enabled = sorted(state.enabled_tids())
        choice = self._decide("t", len(enabled))
        return enabled[choice]

    def choose_read_from(self, state, ctx: ReadContext) -> Event:
        choice = self._decide("r", len(ctx.candidates))
        return ctx.candidates[choice]


@dataclass
class ExplorationReport:
    """Exhaustive summary of a program's execution space."""

    program: str = ""
    executions: int = 0
    buggy: int = 0
    signatures: Set[Signature] = field(default_factory=set)
    buggy_signatures: Set[Signature] = field(default_factory=set)
    #: True when exploration stopped at the execution budget.
    truncated: bool = False
    #: One witness result for a buggy execution, if any was found.
    witness: Optional[RunResult] = None

    @property
    def bug_reachable(self) -> bool:
        return self.buggy > 0

    @property
    def bug_fraction(self) -> float:
        return self.buggy / self.executions if self.executions else 0.0


def explore(program_factory: Callable[[], Program],
            max_executions: int = 20000,
            max_steps: int = 2000) -> ExplorationReport:
    """Enumerate every (schedule x reads-from) execution of a program.

    DFS by prefix replay: each completed run reports the arity of every
    decision beyond its prefix; unexplored alternatives are pushed as new
    prefixes.  Suitable for litmus-sized programs — the space is the
    product of all choice arities.
    """
    report = ExplorationReport()
    stack: List[List[Decision]] = [[]]
    while stack:
        if report.executions >= max_executions:
            report.truncated = True
            break
        prefix = stack.pop()
        scheduler = _EnumScheduler(prefix)
        result = run_once(program_factory(), scheduler, max_steps=max_steps)
        report.program = result.program
        report.executions += 1
        signature = execution_signature(result.graph)
        report.signatures.add(signature)
        if result.bug_found:
            report.buggy += 1
            report.buggy_signatures.add(signature)
            if report.witness is None:
                report.witness = result
        # Branch on every post-prefix decision with unexplored options.
        for position in range(len(prefix), len(scheduler.taken)):
            kind, _chosen = scheduler.taken[position]
            for alternative in range(1, scheduler.arities[position]):
                stack.append(
                    scheduler.taken[:position] + [(kind, alternative)]
                )
    return report
