"""Bounded systematic exploration: iterative context bounding (ICB).

The paper's related work (Section 7) surveys systematic testing with
bounded schedules — notably iterative context bounding [Musuvathi &
Qadeer, PLDI 2007], which explores only executions with at most ``c``
*preemptive* context switches (switching away from a thread that is still
enabled).  Combined with exhaustive reads-from enumeration this gives a
weak-memory ICB: the scheduling dimension is preemption-bounded while the
rf dimension stays exhaustive.

Empirically (and per the ICB paper's thesis), small preemption bounds
already reach most scheduling-dependent bugs; the explorer reports how
the reachable behaviour set grows with the bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from ..harness.coverage import Signature, execution_signature
from ..memory.events import Event
from ..runtime.executor import RunResult, run_once
from ..runtime.program import Program
from ..runtime.scheduler import ReadContext, Scheduler
from .explorer import Decision


class _BoundedEnumScheduler(Scheduler):
    """Prefix replay with preemption accounting.

    A decision is *preemptive* when it switches away from the previously
    running thread while that thread is still enabled.  The scheduler
    reports, for each thread-choice point, which options are within the
    remaining preemption budget; alternatives beyond the budget are not
    offered for branching.
    """

    name = "icb"

    def __init__(self, prefix: List[Decision], bound: int):
        super().__init__(seed=0)
        self.prefix = prefix
        self.bound = bound
        self.taken: List[Decision] = []
        #: Per-decision list of *branchable* option counts (respecting the
        #: budget at that point).
        self.viable: List[List[int]] = []
        self._last_tid: Optional[int] = None
        self._preemptions = 0

    def _options_within_budget(self, enabled: List[int]) -> List[int]:
        if self._last_tid is None or self._last_tid not in enabled:
            # No running thread to preempt: every choice is free.
            return list(range(len(enabled)))
        viable = []
        for index, tid in enumerate(enabled):
            if tid == self._last_tid:
                viable.append(index)
            elif self._preemptions < self.bound:
                viable.append(index)
        return viable

    def choose_thread(self, state) -> int:
        enabled = sorted(state.enabled_tids())
        viable = self._options_within_budget(enabled)
        position = len(self.taken)
        if position < len(self.prefix):
            kind, choice = self.prefix[position]
            if kind != "t":
                raise RuntimeError("prefix divergence: expected thread")
        else:
            choice = viable[0]
        self.taken.append(("t", choice))
        self.viable.append(viable)
        tid = enabled[choice]
        if self._last_tid is not None and self._last_tid in enabled \
                and tid != self._last_tid:
            self._preemptions += 1
        self._last_tid = tid
        return tid

    def choose_read_from(self, state, ctx: ReadContext) -> Event:
        position = len(self.taken)
        if position < len(self.prefix):
            kind, choice = self.prefix[position]
            if kind != "r":
                raise RuntimeError("prefix divergence: expected read")
        else:
            choice = 0
        self.taken.append(("r", choice))
        self.viable.append(list(range(len(ctx.candidates))))
        return ctx.candidates[choice]

    def on_event_executed(self, state, event, info) -> None:
        pass


@dataclass
class BoundedReport:
    """Exploration summary at a given preemption bound."""

    program: str = ""
    bound: int = 0
    executions: int = 0
    buggy: int = 0
    signatures: Set[Signature] = field(default_factory=set)
    truncated: bool = False
    witness: Optional[RunResult] = None

    @property
    def bug_reachable(self) -> bool:
        return self.buggy > 0


def explore_bounded(program_factory: Callable[[], Program],
                    preemption_bound: int = 2,
                    max_executions: int = 20000,
                    max_steps: int = 2000) -> BoundedReport:
    """ICB exploration: schedules with ≤ ``preemption_bound`` preemptions,
    exhaustive over reads-from choices."""
    if preemption_bound < 0:
        raise ValueError("preemption bound must be >= 0")
    report = BoundedReport(bound=preemption_bound)
    stack: List[List[Decision]] = [[]]
    while stack:
        if report.executions >= max_executions:
            report.truncated = True
            break
        prefix = stack.pop()
        scheduler = _BoundedEnumScheduler(prefix, preemption_bound)
        result = run_once(program_factory(), scheduler, max_steps=max_steps)
        report.program = result.program
        report.executions += 1
        report.signatures.add(execution_signature(result.graph))
        if result.bug_found:
            report.buggy += 1
            if report.witness is None:
                report.witness = result
        for position in range(len(prefix), len(scheduler.taken)):
            kind, chosen = scheduler.taken[position]
            for alternative in scheduler.viable[position]:
                if alternative <= chosen:
                    continue
                stack.append(
                    scheduler.taken[:position] + [(kind, alternative)]
                )
    return report


def preemption_ladder(program_factory: Callable[[], Program],
                      max_bound: int = 3,
                      max_executions: int = 20000) -> Dict[int, BoundedReport]:
    """Reports for bounds 0..max_bound: ICB's iterative deepening."""
    return {
        bound: explore_bounded(program_factory, bound,
                               max_executions=max_executions)
        for bound in range(max_bound + 1)
    }
