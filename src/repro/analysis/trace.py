"""Human-readable rendering of execution graphs.

Produces textual traces like the paper's Figures 1-4: events in execution
order with their thread, label, rf source, and (optionally) a DOT dump of
the full relation structure for external visualization.
"""

from __future__ import annotations

from typing import List

from ..memory.events import Event
from ..memory.execution import ExecutionGraph


def format_event(event: Event) -> str:
    lab = event.label
    order = lab.order.name.lower()
    if event.is_fence:
        return f"F({order})"
    if event.is_rmw:
        return f"U({lab.loc}, {lab.rval}->{lab.wval}, {order})"
    if event.is_read:
        return f"R({lab.loc}, {lab.rval}, {order})"
    return f"W({lab.loc}, {lab.wval}, {order})"


def format_trace(graph: ExecutionGraph, include_init: bool = False) -> str:
    """One line per event in execution order, with rf provenance."""
    lines: List[str] = []
    for event in graph.events:
        if event.is_init and not include_init:
            continue
        rf = ""
        if event.reads_from is not None:
            src = event.reads_from
            origin = "init" if src.is_init else f"e{src.uid}(t{src.tid})"
            rf = f"  [rf <- {origin}]"
        tid = "init" if event.is_init else f"t{event.tid}"
        lines.append(f"e{event.uid:<4d} {tid:>4s}  {format_event(event)}{rf}")
    return "\n".join(lines)


def to_dot(graph: ExecutionGraph) -> str:
    """Graphviz DOT dump with po (solid), rf (dashed), mo (dotted) edges."""
    lines = ["digraph execution {", "  rankdir=TB;"]
    for event in graph.events:
        shape = "box" if event.is_write and not event.is_rmw else "ellipse"
        lines.append(
            f'  e{event.uid} [label="{format_event(event)}\\n'
            f't{event.tid}" shape={shape}];'
        )
    for tid, events in graph.events_by_tid.items():
        if tid < 0:
            continue
        for a, b in zip(events, events[1:]):
            lines.append(f"  e{a.uid} -> e{b.uid};")
    for event in graph.events:
        if event.reads_from is not None:
            lines.append(
                f'  e{event.reads_from.uid} -> e{event.uid} '
                f'[style=dashed label="rf"];'
            )
    for writes in graph.writes_by_loc.values():
        for a, b in zip(writes, writes[1:]):
            lines.append(
                f'  e{a.uid} -> e{b.uid} [style=dotted label="mo"];'
            )
    lines.append("}")
    return "\n".join(lines)
