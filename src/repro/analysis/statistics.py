"""Execution statistics: structural summaries of a run.

Complements the hit-rate metrics with per-execution structure — event-kind
counts, memory-order mix, communication topology — used by the harness's
reporting and handy when characterizing a new test subject.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..memory.events import EventKind, MemoryOrder
from ..memory.execution import ExecutionGraph


@dataclass
class ExecutionStats:
    """Structural summary of one execution graph."""

    events: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    by_order: Dict[str, int] = field(default_factory=dict)
    locations: int = 0
    threads: int = 0
    #: Reads whose source is another thread's write (excluding init).
    external_reads: int = 0
    #: Reads of the initial value.
    init_reads: int = 0
    #: Reads of the thread's own writes.
    own_reads: int = 0
    #: (source tid, sink tid) -> count of cross-thread rf edges.
    communication_matrix: Dict[Tuple[int, int], int] = \
        field(default_factory=dict)
    #: Maximum mo distance between a read's source and the mo-max at the
    #: time of the read's creation ordering (staleness indicator).
    max_staleness: int = 0

    def render(self) -> str:
        lines = [
            f"events: {self.events} across {self.threads} threads, "
            f"{self.locations} locations",
            "by kind: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.by_kind.items())
            ),
            "by order: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.by_order.items())
            ),
            f"reads: {self.external_reads} external, {self.own_reads} own, "
            f"{self.init_reads} initial; max staleness {self.max_staleness}",
        ]
        if self.communication_matrix:
            edges = ", ".join(
                f"t{a}->t{b}:{n}" for (a, b), n in
                sorted(self.communication_matrix.items())
            )
            lines.append(f"communication: {edges}")
        return "\n".join(lines)


def collect_stats(graph: ExecutionGraph) -> ExecutionStats:
    """Summarize an execution graph."""
    kinds: Counter = Counter()
    orders: Counter = Counter()
    comms: Counter = Counter()
    stats = ExecutionStats()
    max_mo_seen: Dict[str, int] = {}
    for event in graph.events:
        if event.is_init:
            continue
        stats.events += 1
        kinds[event.kind.value] += 1
        orders[event.order.name.lower()] += 1
        if event.is_write:
            loc = event.loc
            if event.mo_index > max_mo_seen.get(loc, 0):
                max_mo_seen[loc] = event.mo_index
        if event.reads_from is not None:
            source = event.reads_from
            if source.is_init:
                stats.init_reads += 1
            elif source.tid == event.tid:
                stats.own_reads += 1
            else:
                stats.external_reads += 1
                comms[(source.tid, event.tid)] += 1
            staleness = max_mo_seen.get(event.loc, 0) - source.mo_index
            if staleness > stats.max_staleness:
                stats.max_staleness = staleness
    stats.by_kind = dict(kinds)
    stats.by_order = dict(orders)
    stats.locations = len(list(graph.locations()))
    stats.threads = len(graph.thread_ids())
    stats.communication_matrix = dict(comms)
    return stats
