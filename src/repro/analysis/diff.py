"""Execution diffing: where did two runs diverge?

When a bug reproduces at one seed but not another, the first structural
difference between the two executions usually points at the decisive
scheduling or reads-from choice.  ``diff_executions`` aligns two graphs
event by event (in execution order) and reports the first divergence plus
per-thread rf differences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..memory.execution import ExecutionGraph
from .trace import format_event

#: Stable event identity across runs with matching control flow.
EventKey = Tuple[int, int]


@dataclass
class ExecutionDiff:
    """Structural comparison of two executions."""

    #: Index (in execution order) of the first differing event, or None.
    first_divergence: Optional[int] = None
    #: Human-readable description of the divergence.
    divergence: str = ""
    #: (tid, po_index) -> (source description in A, in B) where rf differs.
    rf_differences: Dict[EventKey, Tuple[str, str]] = field(
        default_factory=dict
    )
    #: Events present in only one execution (by stable key).
    only_in_a: List[EventKey] = field(default_factory=list)
    only_in_b: List[EventKey] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return (self.first_divergence is None
                and not self.rf_differences
                and not self.only_in_a and not self.only_in_b)

    def render(self) -> str:
        if self.identical:
            return "executions are identical"
        lines = []
        if self.first_divergence is not None:
            lines.append(
                f"first divergence at execution step "
                f"{self.first_divergence}: {self.divergence}"
            )
        for key, (a, b) in sorted(self.rf_differences.items()):
            lines.append(
                f"rf differs at t{key[0]}#{key[1]}: {a}  vs  {b}"
            )
        if self.only_in_a:
            lines.append(f"only in A: {sorted(self.only_in_a)}")
        if self.only_in_b:
            lines.append(f"only in B: {sorted(self.only_in_b)}")
        return "\n".join(lines)


def _source_label(event) -> str:
    source = event.reads_from
    if source is None:
        return "-"
    if source.is_init:
        return "init"
    return f"t{source.tid}#{source.po_index}({source.label.wval!r})"


def diff_executions(a: ExecutionGraph, b: ExecutionGraph) -> ExecutionDiff:
    """Compare two executions of (nominally) the same program."""
    diff = ExecutionDiff()
    events_a = [e for e in a.events if not e.is_init]
    events_b = [e for e in b.events if not e.is_init]

    for index, (ea, eb) in enumerate(zip(events_a, events_b)):
        if (ea.tid, ea.label) != (eb.tid, eb.label):
            diff.first_divergence = index
            diff.divergence = (
                f"A ran t{ea.tid} {format_event(ea)}; "
                f"B ran t{eb.tid} {format_event(eb)}"
            )
            break
    else:
        if len(events_a) != len(events_b):
            diff.first_divergence = min(len(events_a), len(events_b))
            diff.divergence = (
                f"A has {len(events_a)} events, B has {len(events_b)}"
            )

    reads_a = {
        (e.tid, e.po_index): e for e in events_a if e.reads_from is not None
    }
    reads_b = {
        (e.tid, e.po_index): e for e in events_b if e.reads_from is not None
    }
    for key in sorted(set(reads_a) & set(reads_b)):
        la, lb = _source_label(reads_a[key]), _source_label(reads_b[key])
        if la != lb:
            diff.rf_differences[key] = (la, lb)
    diff.only_in_a = sorted(set(reads_a) - set(reads_b))
    diff.only_in_b = sorted(set(reads_b) - set(reads_a))
    return diff
