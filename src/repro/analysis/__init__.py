"""Execution analysis: trace rendering and consistency auditing."""

from .audit import AuditReport, audit_graph, audit_run, count_external_reads
from .diff import ExecutionDiff, diff_executions
from .statistics import ExecutionStats, collect_stats
from .trace import format_event, format_trace, to_dot

__all__ = [
    "AuditReport",
    "ExecutionDiff",
    "ExecutionStats",
    "diff_executions",
    "collect_stats",
    "audit_graph",
    "audit_run",
    "count_external_reads",
    "format_event",
    "format_trace",
    "to_dot",
]
