"""Execution auditing: consistency axioms and communication accounting.

``audit_run`` re-checks a finished run's execution graph against the C11
axioms of Section 4 and reports the communication relations it contains —
the operational counterpart of Definition 4 (the number of ``com``
relations an execution used).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..memory.axioms import AxiomViolation, check_consistency
from ..memory.execution import ExecutionGraph
from ..runtime.executor import RunResult


@dataclass
class AuditReport:
    """Consistency + communication summary of one execution."""

    violations: List[AxiomViolation]
    #: Number of inter-thread com edges (Definition 2) in the graph.
    communication_edges: int
    #: Number of distinct sink events participating in com.
    communication_sinks: int
    events: int

    @property
    def consistent(self) -> bool:
        return not self.violations


def audit_graph(graph: ExecutionGraph) -> AuditReport:
    com = graph.com()
    sinks = {b.uid for _a, b in com.edges()}
    return AuditReport(
        violations=check_consistency(graph),
        communication_edges=len(com),
        communication_sinks=len(sinks),
        events=graph.size,
    )


def audit_run(result: RunResult) -> AuditReport:
    if result.graph is None:
        raise ValueError(
            "run was executed with keep_graph=False; nothing to audit"
        )
    return audit_graph(result.graph)


def count_external_reads(graph: ExecutionGraph) -> int:
    """Reads whose rf source is a write of another thread (not init).

    This is the narrowest notion of thread communication — the ``rf \\ po``
    component of Definition 2 — and the one PCTWM's ``d`` most directly
    bounds for non-synchronizing programs.
    """
    count = 0
    for event in graph.events:
        src = event.reads_from
        if src is None or src.is_init:
            continue
        if src.tid != event.tid:
            count += 1
    return count
