"""The x86-TSO backend for the generic scheduler stack.

:mod:`repro.tso.engine` drives TSO programs with its own action-based
scheduler API.  This module instead plugs TSO into the *generic*
execution pipeline (:class:`repro.runtime.executor.Executor`), so the
probabilistic schedulers — naive, PCT, PCTWM, POS — test TSO programs
unchanged.  The trick is to make the model's extra nondeterminism look
like thread nondeterminism:

* every thread ``i`` gets a *flush agent* — a pseudo-thread with tid
  ``n + i`` whose pending op is always a :class:`FlushOp` for the oldest
  entry of thread ``i``'s store buffer, enabled iff the buffer is
  non-empty;
* a store *issue* buffers the write (created via
  ``ExecutionGraph.issue_write`` with its declared order, so labels and
  release chains are right) and does **not** fire scheduler hooks — the
  event is not yet globally visible, and an uncommitted event
  (``mo_index == -1``) must never reach a ``FastView``;
* a flush *commit* is the communication event (``FlushOp._comm`` is
  True): it lands the write at the mo-tail via
  ``ExecutionGraph.commit_write`` and fires ``on_event_executed``, so
  PCTWM's priority-change and communication-sink logic delay *flushes*
  — exactly the W→R reordering TSO permits and nothing else;
* reads are deterministic under TSO (forward from the newest
  same-location own-buffer entry, else the committed mo-max), so
  ``choose_read_from`` is never consulted and recorded traces stay
  THREAD-choice-only — replay and bug artifacts work unchanged.

Fences and RMWs drain the issuing thread's buffer first (x86 ``MFENCE``
/ ``LOCK`` semantics); seq_cst stores drain right after issue (the
MOV+MFENCE mapping).  A join additionally waits for the target's buffer
to drain, so joined results are globally visible.

Sanitization relies on the end-of-run :func:`repro.memory.axioms
.check_consistency` audit: the *incremental* checker assumes writes
reach mo at creation and would misread buffer-forwarded rf sources
(``mo_index`` still ``-1`` at read time), so it is not attached.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..memory.events import Event, _UNSTAMPED, clock_join
from ..runtime.errors import (
    AssertionViolation,
    ProgramDefinitionError,
    ReproError,
)
from ..runtime.executor import ExecutionState, Executor, RunResult
from ..runtime.ops import (
    CasOp,
    FenceOp,
    JoinOp,
    LoadOp,
    Op,
    RmwOp,
    SpawnOp,
    StoreOp,
    YieldOp,
    _op_uids,
)
from ..runtime.program import Program
from ..runtime.scheduler import Scheduler

__all__ = ["FlushAgent", "FlushOp", "TsoExecutionState", "TsoExecutor",
           "run_once_tso"]


class FlushOp(Op):
    """Commit the oldest store-buffer entry of one thread.

    One FlushOp is created per issued store (a fresh ``uid``, so
    op-keyed scheduler state — PCTWM's ``counted``/``_reordered`` sets,
    POS's per-op priorities — treats every flush as a distinct
    schedulable event).  ``_comm = True``: a flush is the point a store
    becomes visible to other threads, i.e. the model's communication
    event; PCTWM may place a communication sink on it and delay it.
    """

    __slots__ = ("event",)

    _comm = True

    def __init__(self, event: Event):
        self.uid = next(_op_uids)
        self.event = event

    @property
    def loc(self) -> str:
        return self.event.loc

    def _fields(self):
        return (("loc", self.event.loc), ("tid", self.event.tid))


class FlushAgent:
    """Pseudo-thread that owns the flush actions of one real thread.

    Duck-types the slice of :class:`repro.runtime.thread.ThreadState`
    that schedulers and diagnostics touch (``tid``/``name``/``pending``/
    ``site_key``/``finished``/``events_executed``).  Never ``finished``:
    its enabledness is "owner's buffer non-empty", checked by
    :meth:`TsoExecutionState.enabled_tids`, and run termination counts
    non-empty buffers, not agent completion.
    """

    __slots__ = ("tid", "name", "pending", "pending_is_join",
                 "pending_site", "site_key", "finished", "result",
                 "pending_sync_sources", "events_executed")

    def __init__(self, tid: int, owner_name: str):
        self.tid = tid
        self.name = f"flush({owner_name})"
        self.pending: Optional[FlushOp] = None
        self.pending_is_join = False
        self.pending_site = -1
        self.site_key = (tid, -1)
        self.finished = False
        self.result = None
        self.pending_sync_sources: List[Event] = []
        self.events_executed = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FlushAgent {self.tid}:{self.name} pending={self.pending!r}>"


class TsoExecutionState(ExecutionState):
    """Execution state with per-thread store buffers and flush agents.

    ``threads`` holds the ``n`` real threads followed by ``n`` flush
    agents (tids ``n..2n-1``; agent ``n + i`` drains thread ``i``'s
    buffer), so priority-based schedulers assign priorities to flush
    agents exactly as to threads.  ``_unfinished`` counts live real
    threads *plus* non-empty buffers: zero means every thread returned
    and every store committed, the generic loop's termination test.
    """

    def __init__(self, program: Program, spin_threshold: int = 8,
                 fast: bool = True):
        super().__init__(program, spin_threshold, fast=fast)
        self._install_agents()

    def _install_agents(self) -> None:
        n = len(self.threads)
        self.n_real = n
        #: Per-thread FIFO of pending FlushOps (deque: flushes pop the head).
        self.buffers: List[Deque[FlushOp]] = [deque() for _ in range(n)]
        self.agents = [FlushAgent(n + i, self.threads[i].name)
                       for i in range(n)]
        self.threads.extend(self.agents)
        n2 = 2 * n
        self.clocks = [(0,) * n2 for _ in range(n2)]
        # Flush agents are deliberately absent from _by_name: joins may
        # only target real threads.

    def reset(self, program: Optional[Program] = None) -> None:
        super().reset(program)
        self._install_agents()

    def enabled_tids(self) -> List[int]:
        """Real threads that may step, plus agents with buffered stores.

        A join is additionally gated on the target's buffer being empty
        (the target's effects must be globally visible before the joiner
        proceeds — x86 thread exit implies a drained buffer).
        """
        if self.fast and self._enabled_cache is not None:
            return self._enabled_cache
        out: List[int] = []
        n = self.n_real
        buffers = self.buffers
        for t in self.threads[:n]:
            if t.finished:
                continue
            if t.pending_is_join:
                target = self._by_name.get(t.pending.thread_name)
                if target is None:
                    raise ProgramDefinitionError(
                        f"join target {t.pending.thread_name!r} does not exist"
                    )
                if not target.finished or buffers[target.tid]:
                    continue
            out.append(t.tid)
        for i, buffer in enumerate(buffers):
            if buffer:
                out.append(n + i)
        self._enabled_cache = out
        return out

    def all_finished(self) -> bool:
        if self.fast:
            return self._unfinished == 0
        return all(t.finished for t in self.threads[:self.n_real]) \
            and not any(self.buffers)


class TsoExecutor(Executor):
    """Generic-scheduler executor for x86-TSO programs."""

    def run(self, state: Optional[ExecutionState] = None) -> RunResult:
        if state is None:
            state = TsoExecutionState(self.program, self.spin_threshold,
                                      fast=self.fast)
        result = RunResult(self.program.name, self.scheduler.name,
                           engine=self.engine)
        # No incremental checker (module docstring); _finish still runs
        # the full check_consistency audit in sanitize mode.
        state.sanitizer = None
        self.scheduler.on_run_start(state)
        try:
            self._loop(state, result)
        except AssertionViolation as violation:
            result.bug_found = True
            result.bug_kind = "assertion"
            result.bug_message = str(violation)
        self._finish(state, result)
        return result

    def _run_final_checks(self, state: TsoExecutionState,
                          result: RunResult) -> None:
        results = {t.name: t.result
                   for t in state.threads[:state.n_real]}
        result.thread_results = results
        for check in self.program.final_checks:
            check(results)

    def _finish(self, state: TsoExecutionState, result: RunResult) -> None:
        if any(state.buffers):
            # Drain-or-mark: only truncated runs (step/wall budget) reach
            # here with buffered stores.  Commit them silently — graph
            # bookkeeping only, no scheduler hooks — so the recorded
            # graph has no rf source dangling outside writes_by_loc and
            # post-hoc analysis (fr, coherence audits) cannot crash.
            for buffer in state.buffers:
                while buffer:
                    state.graph.commit_write(buffer.popleft().event)
        super()._finish(state, result)

    # -- TSO op handlers -----------------------------------------------------

    def _exec_store(self, state: TsoExecutionState, thread, op: StoreOp,
                    ) -> None:
        """Issue: buffer the store; its flush agent becomes enabled."""
        state.k += 1
        tid = thread.tid
        loc = op.loc
        if loc not in self._locs:
            self._require_loc(loc)
        bumped = list(state.clocks[tid])
        bumped[tid] += 1
        clock = tuple(bumped)
        state.clocks[tid] = clock
        event = state.graph.issue_write(tid, loc, op.value, op.order)
        event.clock = clock
        races = state.races
        if races.fast and op.order.is_atomic and loc not in races._na_locs:
            races._last_write[loc][tid] = event
        else:
            races.on_access(event)
        buffer = state.buffers[tid]
        if not buffer:
            state._unfinished += 1
        flush_op = FlushOp(event)
        buffer.append(flush_op)
        state.threads[state.n_real + tid].pending = buffer[0]
        # No on_event_executed: the event is uncommitted (mo_index -1)
        # and must not reach scheduler views; its flush fires the hook.
        thread.advance(None)
        if thread.finished:
            state._unfinished -= 1
            self.scheduler.on_thread_finished(state, thread.tid)
        state._enabled_cache = None
        if op.order.is_seq_cst:
            # MOV + MFENCE: a seq_cst store publishes before the thread
            # proceeds.
            self._drain_own(state, tid)

    def _exec_flush(self, state: TsoExecutionState, agent: FlushAgent,
                    op: FlushOp) -> None:
        """Commit: the store reaches mo — the communication event."""
        real_tid = op.event.tid
        buffer = state.buffers[real_tid]
        if not buffer or buffer[0] is not op:
            raise ReproError(f"flush out of buffer order: {op!r}")
        buffer.popleft()
        event = state.graph.commit_write(op.event)
        state.k_com += 1
        agent.events_executed += 1
        if buffer:
            agent.pending = buffer[0]
        else:
            agent.pending = None
            state._unfinished -= 1
        state._enabled_cache = None
        self.scheduler.on_event_executed(state, event,
                                         {"op": op, "flush": True})

    def _drain_own(self, state: TsoExecutionState, tid: int) -> None:
        """Commit every buffered store of ``tid`` (fence/RMW/sc-store).

        The drain is part of the instruction's own step: commits fire
        scheduler hooks (the stores become visible) but cost no
        scheduling steps, mirroring the action-based engine.
        """
        buffer = state.buffers[tid]
        if not buffer:
            return
        agent = state.threads[state.n_real + tid]
        scheduler = self.scheduler
        while buffer:
            flush_op = buffer.popleft()
            event = state.graph.commit_write(flush_op.event)
            state.k_com += 1
            agent.events_executed += 1
            scheduler.on_event_executed(state, event,
                                        {"op": flush_op, "flush": True})
        agent.pending = None
        state._unfinished -= 1
        state._enabled_cache = None

    def _exec_load(self, state: TsoExecutionState, thread, op: LoadOp,
                   ) -> None:
        """TSO loads are deterministic: forward-or-committed-max.

        ``choose_read_from`` is never consulted — the model has no rf
        freedom, only flush timing — so traces stay THREAD-choice-only.
        """
        state.k_com += 1
        state.k += 1
        tid = thread.tid
        loc = op.loc
        order = op.order
        if loc not in self._locs:
            self._require_loc(loc)
        spins = state.spins
        site_key = thread.site_key
        spinning = spins.is_spinning(site_key) if spins._hot else False
        source: Optional[Event] = None
        for flush_op in reversed(state.buffers[tid]):
            if flush_op.event.loc == loc:
                source = flush_op.event
                break
        forwarded = source is not None
        if source is None:
            source = state.graph.writes_by_loc[loc][-1]
        result = source.wval
        # Forwarded reads are same-thread (po-ordered): no sw edge.  A
        # committed source synchronizes exactly as on the C11 path.
        sync_source = fence_source = None
        if not forwarded and not source.is_init:
            chain = source._release_chain
            if chain is _UNSTAMPED:
                chain = state.graph.release_source_reference(source)
            if chain is not None:
                if order.is_acquire:
                    sync_source = fence_source = chain
                else:
                    thread.pending_sync_sources.append(chain)
                    fence_source = chain
        clock = state.clocks[tid]
        if sync_source is not None and not sync_source.is_init:
            clock = clock_join(clock, sync_source.clock)
        bumped = list(clock)
        bumped[tid] += 1
        clock = tuple(bumped)
        state.clocks[tid] = clock
        event = state.graph.add_read(tid, loc, source, order)
        event.clock = clock
        if not forwarded:
            read_floor = state.visibility._read_floor
            key = (tid, loc)
            if source.mo_index > read_floor[key]:
                read_floor[key] = source.mo_index
        spins.note(site_key, result)
        races = state.races
        if races.fast and order.is_atomic and loc not in races._na_locs:
            races._last_read[loc][tid] = event
        else:
            races.on_access(event)
        scheduler = self.scheduler
        scheduler.on_event_executed(state, event, {
            "op": op,
            "sync_source": sync_source,
            "release_chain_source": fence_source,
            "spinning": spinning,
        })
        thread.advance(result)
        if thread.finished:
            state._enabled_cache = None
            state._unfinished -= 1
            scheduler.on_thread_finished(state, thread.tid)
        elif thread.pending_is_join:
            state._enabled_cache = None

    def _exec_fence(self, state: TsoExecutionState, thread, op: FenceOp,
                    ) -> None:
        self._drain_own(state, thread.tid)
        Executor._exec_fence(self, state, thread, op)

    def _exec_rmw(self, state: TsoExecutionState, thread, op: RmwOp,
                  ) -> None:
        # LOCK-prefixed: drains, then reads the committed mo-max — the
        # base handler's source choice is exactly right post-drain.
        self._drain_own(state, thread.tid)
        Executor._exec_rmw(self, state, thread, op)

    def _exec_cas(self, state: TsoExecutionState, thread, op: CasOp,
                  ) -> None:
        self._drain_own(state, thread.tid)
        Executor._exec_cas(self, state, thread, op)

    def _exec_spawn(self, state: TsoExecutionState, thread, op: SpawnOp,
                    ) -> None:
        raise ProgramDefinitionError(
            "SpawnOp is not supported under the TSO backend: flush "
            "agents are allocated per thread at run start"
        )

    _DISPATCH = {
        YieldOp: Executor._exec_yield,
        JoinOp: Executor._exec_join,
        SpawnOp: _exec_spawn,
        LoadOp: _exec_load,
        StoreOp: _exec_store,
        RmwOp: _exec_rmw,
        CasOp: _exec_cas,
        FenceOp: _exec_fence,
        FlushOp: _exec_flush,
    }


def run_once_tso(program: Program, scheduler: Scheduler,
                 max_steps: int = 20000, spin_threshold: int = 8,
                 keep_graph: bool = True,
                 wall_timeout_s: Optional[float] = None,
                 sanitize: bool = False, engine: str = "fast") -> RunResult:
    """Convenience wrapper: one generic-scheduler run under TSO."""
    executor = TsoExecutor(program, scheduler, max_steps=max_steps,
                           spin_threshold=spin_threshold,
                           keep_graph=keep_graph,
                           wall_timeout_s=wall_timeout_s,
                           sanitize=sanitize, engine=engine)
    return executor.run()
