"""Testing algorithms instantiated for the TSO engine.

Following the paper's memory-model-agnostic recipe (Section 5): identify
the model's *weakness choice points* and bound how many a test execution
exercises.  Under TSO the only weakness is store→load reordering via
delayed flushes, so:

* :class:`TsoNaiveScheduler` — uniform over all enabled actions (steps
  and flushes): the naive random baseline;
* :class:`TsoEagerScheduler` — flushes immediately whenever possible:
  produces only SC behaviours (the naive-SC analogue);
* :class:`TsoPCTScheduler` — PCT priorities over threads with d−1 change
  points; flushes happen eagerly *except* the scheduler may not flush
  another thread's buffer out of turn (classic PCT lifted to TSO actions);
* :class:`TsoDelayedWriteScheduler` — the PCTWM analogue: ``d`` randomly
  selected *stores* (out of the estimated ``k_writes``) have their flushes
  delayed as long as possible, every other store flushes eagerly.  The
  number of W→R reorderings in the execution is thus bounded by ``d``,
  and a given ``d``-delay configuration is sampled with probability
  ``1/C(k_writes, d)`` — the direct TSO analogue of Section 5.4.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..memory.events import Event
from .engine import Action, FLUSH, STEP, TsoScheduler, TsoState


class TsoNaiveScheduler(TsoScheduler):
    """Uniform random over steps and flushes."""

    name = "tso-naive"


class TsoEagerScheduler(TsoScheduler):
    """Always flush before stepping: sequential consistency only."""

    name = "tso-eager"

    def choose_action(self, state: TsoState,
                      actions: List[Action]) -> Action:
        flushes = [a for a in actions if a[0] == FLUSH]
        if flushes:
            return flushes[0]
        return self.rng.choice(actions)


class TsoPCTScheduler(TsoScheduler):
    """PCT priorities over threads; eager flushing of the running thread."""

    name = "tso-pct"

    def __init__(self, depth: int, k_events: int,
                 seed: Optional[int] = None):
        super().__init__(seed)
        if depth < 0 or k_events < 1:
            raise ValueError("need depth >= 0 and k_events >= 1")
        self.depth = depth
        self.k_events = k_events
        self._priorities = {}
        self._executed = 0
        self._changes = {}

    def on_run_start(self, state: TsoState) -> None:
        values = list(range(self.depth + 1,
                            self.depth + 1 + len(state.threads)))
        self.rng.shuffle(values)
        self._priorities = {t.tid: v for t, v in zip(state.threads, values)}
        self._executed = 0
        count = max(self.depth - 1, 0)
        universe = list(range(1, max(self.k_events, count) + 1))
        points = sorted(self.rng.sample(universe, count))
        self._changes = {p: self.depth - 1 - j
                         for j, p in enumerate(points)}

    def choose_action(self, state: TsoState,
                      actions: List[Action]) -> Action:
        # PCT is an SC algorithm: commit every store immediately, so the
        # schedule (priorities + change points) is the only freedom left.
        for action in actions:
            if action[0] == FLUSH:
                return action
        step_tids = [tid for kind, tid in actions if kind == STEP]
        while True:
            tid = max(step_tids, key=lambda t: (self._priorities[t], -t))
            point = self._executed + 1
            slot = self._changes.pop(point, None)
            if slot is not None:
                self._priorities[tid] = slot
                continue
            break
        self._executed += 1
        return (STEP, tid)


class TsoDelayedWriteScheduler(TsoScheduler):
    """The PCTWM analogue for TSO: d delayed stores, everything else SC.

    Parameters: ``depth`` is the number of stores whose flush is delayed
    as long as possible; ``k_writes`` the estimated number of stores.
    """

    name = "tso-delayed"

    def __init__(self, depth: int, k_writes: int,
                 seed: Optional[int] = None):
        super().__init__(seed)
        if depth < 0 or k_writes < 1:
            raise ValueError("need depth >= 0 and k_writes >= 1")
        self.depth = depth
        self.k_writes = k_writes
        self._selected: Set[int] = set()
        self._delayed_events: Set[int] = set()
        self._issued = 0
        self._priorities = {}

    def on_run_start(self, state: TsoState) -> None:
        universe = list(range(1, max(self.k_writes, self.depth) + 1))
        self._selected = set(self.rng.sample(universe, self.depth))
        self._delayed_events = set()
        self._issued = 0
        values = list(range(1, len(state.threads) + 1))
        self.rng.shuffle(values)
        self._priorities = {t.tid: v for t, v in zip(state.threads, values)}

    def on_write_issued(self, state: TsoState, event: Event) -> None:
        self._issued += 1
        if self._issued in self._selected:
            self._delayed_events.add(event.uid)

    def _flushable(self, state: TsoState, tid: int) -> bool:
        """A buffer may flush eagerly unless its head is a delayed store."""
        buffer = state.buffers[tid]
        return bool(buffer) and buffer[0].uid not in self._delayed_events

    def choose_action(self, state: TsoState,
                      actions: List[Action]) -> Action:
        # 1. Eagerly commit every non-delayed store.
        for kind, tid in actions:
            if kind == FLUSH and self._flushable(state, tid):
                return (kind, tid)
        # 2. Step threads by priority.
        step_tids = [tid for kind, tid in actions if kind == STEP]
        if step_tids:
            tid = max(step_tids, key=lambda t: (self._priorities[t], -t))
            return (STEP, tid)
        # 3. Only delayed flushes remain (threads blocked/finished):
        #    release the longest-delayed one.
        return actions[0]
