"""x86-TSO: store-buffer engine, schedulers, and the generic backend."""

from .backend import (
    FlushAgent,
    FlushOp,
    TsoExecutionState,
    run_once_tso,
)
from .backend import TsoExecutor as TsoBackendExecutor
from .engine import (
    Action,
    FLUSH,
    STEP,
    TsoExecutor,
    TsoRunResult,
    TsoScheduler,
    TsoState,
    run_tso,
)
from .schedulers import (
    TsoDelayedWriteScheduler,
    TsoEagerScheduler,
    TsoNaiveScheduler,
    TsoPCTScheduler,
)

__all__ = [
    "Action",
    "FLUSH",
    "FlushAgent",
    "FlushOp",
    "STEP",
    "TsoBackendExecutor",
    "TsoDelayedWriteScheduler",
    "TsoEagerScheduler",
    "TsoExecutionState",
    "TsoExecutor",
    "TsoNaiveScheduler",
    "TsoPCTScheduler",
    "TsoRunResult",
    "TsoScheduler",
    "TsoState",
    "run_once_tso",
    "run_tso",
]
