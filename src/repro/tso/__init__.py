"""x86-TSO engine and testing algorithms (memory-model-agnostic demo)."""

from .engine import (
    Action,
    FLUSH,
    STEP,
    TsoExecutor,
    TsoRunResult,
    TsoScheduler,
    TsoState,
    run_tso,
)
from .schedulers import (
    TsoDelayedWriteScheduler,
    TsoEagerScheduler,
    TsoNaiveScheduler,
    TsoPCTScheduler,
)

__all__ = [
    "Action",
    "FLUSH",
    "STEP",
    "TsoDelayedWriteScheduler",
    "TsoEagerScheduler",
    "TsoExecutor",
    "TsoNaiveScheduler",
    "TsoPCTScheduler",
    "TsoRunResult",
    "TsoScheduler",
    "TsoState",
    "run_tso",
]
