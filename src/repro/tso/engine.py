"""An x86-TSO execution engine (store-buffer semantics).

Section 5 of the paper claims PCTWM's construction is *memory-model
agnostic*: the algorithm needs only (i) a notion of communication events
and (ii) a thread-local-view mechanism, instantiated per model.  This
package instantiates the recipe for a second model — x86-TSO [Owens,
Sarkar, Sewell 2009] — to demonstrate the claim concretely.

TSO semantics implemented here:

* each thread owns a FIFO *store buffer*; a store is issued into the
  buffer and becomes globally visible only when *flushed* (committed to
  the per-location modification order);
* a load first forwards from the newest same-location entry of its own
  buffer; otherwise it reads the mo-maximal *committed* write — TSO is
  multi-copy atomic, so there are no stale reads, only delayed stores;
* fences (any order) and atomic RMWs drain the issuing thread's buffer
  first (x86 ``MFENCE`` / ``LOCK`` semantics);
* flushes are scheduler-visible actions, so testing algorithms control
  the reordering the model allows (W→R), and nothing else.

The engine reuses the event/graph vocabulary of :mod:`repro.memory`; a
write event exists from issue time but enters mo only at flush time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..memory.events import Event, EventKind, Label, MemoryOrder
from ..memory.execution import ExecutionGraph
from ..runtime.errors import AssertionViolation, ProgramDefinitionError, \
    ReproError
from ..runtime.ops import (
    CasOp,
    FenceOp,
    JoinOp,
    LoadOp,
    Op,
    RmwOp,
    StoreOp,
    YieldOp,
)
from ..runtime.program import Program
from ..runtime.thread import ThreadState

#: Scheduler actions: execute a thread's pending op, or flush the oldest
#: store-buffer entry of a thread.
STEP = "step"
FLUSH = "flush"
Action = Tuple[str, int]


@dataclass
class TsoRunResult:
    """Outcome of one TSO test execution."""

    program: str
    scheduler: str
    bug_found: bool = False
    bug_message: Optional[str] = None
    limit_exceeded: bool = False
    steps: int = 0
    #: Number of issued program events (loads+stores+rmws+fences).
    k: int = 0
    #: Number of issued store events (the delayed-write universe).
    k_writes: int = 0
    thread_results: Dict[str, Any] = field(default_factory=dict)
    graph: Optional[ExecutionGraph] = None

    def __bool__(self) -> bool:
        return self.bug_found


class TsoState:
    """Per-run state: threads, store buffers, and the execution graph."""

    def __init__(self, program: Program):
        self.program = program
        self.graph = ExecutionGraph()
        for loc, init in program.locations.items():
            self.graph.add_init_write(loc, init)
        self.threads: List[ThreadState] = program.instantiate()
        #: Per-thread FIFO of issued-but-uncommitted write events.
        self.buffers: List[List[Event]] = [[] for _ in self.threads]
        self.steps = 0
        self.k = 0
        self.k_writes = 0
        self._by_name = {t.name: t for t in self.threads}

    # -- queries ------------------------------------------------------------

    def enabled_actions(self) -> List[Action]:
        actions: List[Action] = []
        for t in self.threads:
            if not t.finished:
                if isinstance(t.pending, JoinOp):
                    target = self._by_name.get(t.pending.thread_name)
                    if target is None:
                        raise ProgramDefinitionError(
                            f"join target {t.pending.thread_name!r} missing"
                        )
                    # A thread joins only after the target finished AND
                    # its buffer drained (its effects are then global).
                    if target.finished and not self.buffers[target.tid]:
                        actions.append((STEP, t.tid))
                else:
                    actions.append((STEP, t.tid))
        for tid, buffer in enumerate(self.buffers):
            if buffer:
                actions.append((FLUSH, tid))
        return actions

    def peek(self, tid: int) -> Optional[Op]:
        return self.threads[tid].pending

    def all_done(self) -> bool:
        return all(t.finished for t in self.threads) \
            and not any(self.buffers)

    def buffered_value(self, tid: int, loc: str) -> Optional[Event]:
        """Newest same-location entry of the thread's own buffer."""
        for event in reversed(self.buffers[tid]):
            if event.loc == loc:
                return event
        return None

    def thread_by_name(self, name: str) -> ThreadState:
        return self._by_name[name]


class TsoScheduler:
    """Base TSO scheduler: uniform choice among enabled actions."""

    name = "tso-naive"

    def __init__(self, seed: Optional[int] = None):
        import random

        self.rng = random.Random(seed)

    def on_run_start(self, state: TsoState) -> None:
        pass

    def choose_action(self, state: TsoState,
                      actions: List[Action]) -> Action:
        return self.rng.choice(actions)

    def on_write_issued(self, state: TsoState, event: Event) -> None:
        pass


class TsoExecutor:
    """Drives a program under TSO store-buffer semantics."""

    def __init__(self, program: Program, scheduler: TsoScheduler,
                 max_steps: int = 20000, keep_graph: bool = True):
        self.program = program
        self.scheduler = scheduler
        self.max_steps = max_steps
        self.keep_graph = keep_graph

    def run(self) -> TsoRunResult:
        state = TsoState(self.program)
        result = TsoRunResult(self.program.name, self.scheduler.name)
        self.scheduler.on_run_start(state)
        try:
            self._loop(state, result)
        except AssertionViolation as violation:
            result.bug_found = True
            result.bug_message = str(violation)
        result.steps = state.steps
        result.k = state.k
        result.k_writes = state.k_writes
        if not result.thread_results:
            result.thread_results = {
                t.name: t.result for t in state.threads if t.finished
            }
        if self.keep_graph:
            result.graph = state.graph
        return result

    # -- main loop -----------------------------------------------------------

    def _loop(self, state: TsoState, result: TsoRunResult) -> None:
        while not state.all_done():
            if state.steps >= self.max_steps:
                result.limit_exceeded = True
                return
            actions = state.enabled_actions()
            if not actions:
                result.bug_found = True
                result.bug_message = "deadlock under TSO"
                return
            action = self.scheduler.choose_action(state, actions)
            if action not in actions:
                raise ReproError(
                    f"{self.scheduler.name} chose unavailable {action!r}"
                )
            self._apply(state, action)
        results = {t.name: t.result for t in state.threads}
        result.thread_results = results
        for check in self.program.final_checks:
            check(results)

    # -- actions -----------------------------------------------------------------

    def _apply(self, state: TsoState, action: Action) -> None:
        kind, tid = action
        state.steps += 1
        if kind == FLUSH:
            self._flush_one(state, tid)
            return
        thread = state.threads[tid]
        op = thread.pending
        if isinstance(op, YieldOp):
            thread.advance(None)
            return
        if isinstance(op, JoinOp):
            target = state.thread_by_name(op.thread_name)
            thread.advance(target.result)
            return
        state.k += 1
        if isinstance(op, StoreOp):
            self._issue_store(state, thread, op)
        elif isinstance(op, LoadOp):
            self._do_load(state, thread, op)
        elif isinstance(op, FenceOp):
            self._drain(state, tid)
            event = state.graph.add_fence(tid, op.order)
            del event
            thread.advance(None)
        elif isinstance(op, RmwOp):
            self._drain(state, tid)
            source = state.graph.mo_max(op.loc)
            old = source.label.wval
            state.graph.add_rmw(tid, op.loc, source, op.update(old),
                                MemoryOrder.SEQ_CST)
            thread.advance(old)
        elif isinstance(op, CasOp):
            self._drain(state, tid)
            source = state.graph.mo_max(op.loc)
            old = source.label.wval
            if old == op.expected:
                state.graph.add_rmw(tid, op.loc, source, op.desired,
                                    MemoryOrder.SEQ_CST)
                thread.advance((True, old))
            else:
                state.graph.add_read(tid, op.loc, source,
                                     MemoryOrder.SEQ_CST)
                thread.advance((False, old))
        else:
            raise ReproError(
                f"op {op!r} is not supported by the TSO engine"
            )

    def _issue_store(self, state: TsoState, thread: ThreadState,
                     op: StoreOp) -> None:
        if op.loc not in self.program.locations:
            raise ProgramDefinitionError(f"unknown location {op.loc!r}")
        # Create the event now (issue); it enters mo at flush time.
        event = Event(
            uid=state.graph._uid, tid=thread.tid,
            label=Label(EventKind.WRITE, MemoryOrder.RELAXED, op.loc,
                        wval=op.value),
        )
        state.graph._uid += 1
        event.po_index = len(state.graph.events_by_tid[thread.tid])
        state.graph.events_by_tid[thread.tid].append(event)
        state.graph.events.append(event)
        state.buffers[thread.tid].append(event)
        state.k_writes += 1
        self.scheduler.on_write_issued(state, event)
        if op.order.is_seq_cst:
            # The standard C11-to-x86 mapping compiles a seq_cst store to
            # MOV + MFENCE: the buffer drains before the thread proceeds
            # (rel/acq/relaxed stores are plain MOVs and stay buffered).
            self._drain(state, thread.tid)
        thread.advance(None)

    def _do_load(self, state: TsoState, thread: ThreadState,
                 op: LoadOp) -> None:
        if op.loc not in self.program.locations:
            raise ProgramDefinitionError(f"unknown location {op.loc!r}")
        forwarded = state.buffered_value(thread.tid, op.loc)
        source = forwarded if forwarded is not None \
            else state.graph.mo_max(op.loc)
        # Buffer-forwarded reads reference the uncommitted write; the
        # graph read still records rf to it (mo position comes later).
        event = Event(
            uid=state.graph._uid, tid=thread.tid,
            label=Label(EventKind.READ, MemoryOrder.RELAXED, op.loc,
                        rval=source.label.wval),
        )
        state.graph._uid += 1
        event.po_index = len(state.graph.events_by_tid[thread.tid])
        event.reads_from = source
        state.graph.events_by_tid[thread.tid].append(event)
        state.graph.events.append(event)
        thread.advance(source.label.wval)

    def _flush_one(self, state: TsoState, tid: int) -> None:
        buffer = state.buffers[tid]
        if not buffer:
            raise ReproError(f"flush of empty buffer (t{tid})")
        event = buffer.pop(0)
        event.mo_index = len(state.graph.writes_by_loc[event.loc])
        state.graph.writes_by_loc[event.loc].append(event)

    def _drain(self, state: TsoState, tid: int) -> None:
        while state.buffers[tid]:
            self._flush_one(state, tid)


def run_tso(program: Program, scheduler: TsoScheduler,
            max_steps: int = 20000, keep_graph: bool = True) -> TsoRunResult:
    """Convenience wrapper: one TSO test run."""
    return TsoExecutor(program, scheduler, max_steps=max_steps,
                       keep_graph=keep_graph).run()
