"""An x86-TSO execution engine (store-buffer semantics).

Section 5 of the paper claims PCTWM's construction is *memory-model
agnostic*: the algorithm needs only (i) a notion of communication events
and (ii) a thread-local-view mechanism, instantiated per model.  This
package instantiates the recipe for a second model — x86-TSO [Owens,
Sarkar, Sewell 2009] — to demonstrate the claim concretely.

TSO semantics implemented here:

* each thread owns a FIFO *store buffer*; a store is issued into the
  buffer and becomes globally visible only when *flushed* (committed to
  the per-location modification order);
* a load first forwards from the newest same-location entry of its own
  buffer; otherwise it reads the mo-maximal *committed* write — TSO is
  multi-copy atomic, so there are no stale reads, only delayed stores;
* fences (any order) and atomic RMWs drain the issuing thread's buffer
  first (x86 ``MFENCE`` / ``LOCK`` semantics);
* flushes are scheduler-visible actions, so testing algorithms control
  the reordering the model allows (W→R), and nothing else.

The engine reuses the event/graph vocabulary of :mod:`repro.memory`: a
write event exists from issue time (``ExecutionGraph.issue_write``, with
the op's *declared* memory order) and enters mo only at flush time
(``ExecutionGraph.commit_write`` — the ``_append_mo`` path, so dense
location ids, mo-tail arrays and SC-order membership are maintained
exactly as on the C11 path).

Two drivers share these semantics:

* this module's :class:`TsoExecutor` / :func:`run_tso` — the original
  action-based driver for the TSO-specific schedulers in
  :mod:`repro.tso.schedulers`;
* :mod:`repro.tso.backend` — the :class:`repro.memory.model.MemoryModel`
  backend that exposes flushes as schedulable pseudo-threads so the
  generic probabilistic schedulers (naive/pct/pctwm/pos) drive TSO runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..memory.events import Event
from ..memory.execution import ExecutionGraph
from ..runtime.errors import AssertionViolation, ProgramDefinitionError, \
    ReproError
from ..runtime.ops import (
    CasOp,
    FenceOp,
    JoinOp,
    LoadOp,
    Op,
    RmwOp,
    StoreOp,
    YieldOp,
)
from ..runtime.program import Program
from ..runtime.thread import ThreadState

#: Scheduler actions: execute a thread's pending op, or flush the oldest
#: store-buffer entry of a thread.
STEP = "step"
FLUSH = "flush"
Action = Tuple[str, int]


@dataclass
class TsoRunResult:
    """Outcome of one TSO test execution."""

    program: str
    scheduler: str
    bug_found: bool = False
    bug_message: Optional[str] = None
    limit_exceeded: bool = False
    steps: int = 0
    #: Number of issued program events (loads+stores+rmws+fences).
    k: int = 0
    #: Number of issued store events (the delayed-write universe).
    k_writes: int = 0
    thread_results: Dict[str, Any] = field(default_factory=dict)
    graph: Optional[ExecutionGraph] = None

    def __bool__(self) -> bool:
        return self.bug_found


def read_source(state, tid: int, loc: str) -> Event:
    """The unique TSO rf source for a load: forward-or-committed-max.

    A thread first forwards from the newest same-location entry of its
    *own* store buffer; with no buffered entry it reads the mo-maximal
    committed write (TSO is multi-copy atomic: every thread agrees on
    the committed state, there is no stale-read freedom).  Shared by the
    action-based driver and the generic-scheduler backend.
    """
    for event in reversed(state.buffers[tid]):
        if event.loc == loc:
            return event
    return state.graph.mo_max(loc)


def commit_flush(state, tid: int) -> Event:
    """Pop the oldest buffered store of thread ``tid`` and commit it.

    Commits through the graph's mo-insertion path (``commit_write`` →
    ``_append_mo``), so dense lids, mo-tail arrays, SC-order membership
    and the per-location write vectors stay coherent — the fast-path
    views and the consistency sanitizer read all of them.
    """
    buffer = state.buffers[tid]
    if not buffer:
        raise ReproError(f"flush of empty buffer (t{tid})")
    event = buffer.popleft()
    state.graph.commit_write(event)
    return event


def drain_buffers(state, tids=None) -> List[Event]:
    """Commit every remaining buffered store (in buffer order).

    Used by fences/RMWs (one thread) and by the drain-on-truncation path
    (all threads): a run abandoned at ``max_steps`` must not leave read
    events whose ``reads_from`` points at writes absent from
    ``writes_by_loc`` — downstream coherence analysis indexes mo arrays
    by ``mo_index`` and would crash on the dangling ``-1`` entries.
    """
    committed: List[Event] = []
    if tids is None:
        tids = range(len(state.buffers))
    for tid in tids:
        while state.buffers[tid]:
            committed.append(commit_flush(state, tid))
    return committed


class TsoState:
    """Per-run state: threads, store buffers, and the execution graph."""

    def __init__(self, program: Program):
        self.program = program
        self.graph = ExecutionGraph()
        self.init_writes: Dict[str, Event] = {}
        for loc, init in program.locations.items():
            self.init_writes[loc] = self.graph.add_init_write(loc, init)
        self.threads: List[ThreadState] = program.instantiate()
        #: Per-thread FIFO of issued-but-uncommitted write events.  A
        #: deque: flushes pop from the head, and ``list.pop(0)`` is O(n).
        self.buffers: List[Deque[Event]] = [deque() for _ in self.threads]
        self.steps = 0
        self.k = 0
        self.k_writes = 0
        self._by_name = {t.name: t for t in self.threads}

    # -- queries ------------------------------------------------------------

    def enabled_actions(self) -> List[Action]:
        actions: List[Action] = []
        for t in self.threads:
            if not t.finished:
                if isinstance(t.pending, JoinOp):
                    target = self._by_name.get(t.pending.thread_name)
                    if target is None:
                        raise ProgramDefinitionError(
                            f"join target {t.pending.thread_name!r} missing"
                        )
                    # A thread joins only after the target finished AND
                    # its buffer drained (its effects are then global).
                    if target.finished and not self.buffers[target.tid]:
                        actions.append((STEP, t.tid))
                else:
                    actions.append((STEP, t.tid))
        for tid, buffer in enumerate(self.buffers):
            if buffer:
                actions.append((FLUSH, tid))
        return actions

    def peek(self, tid: int) -> Optional[Op]:
        return self.threads[tid].pending

    def all_done(self) -> bool:
        return all(t.finished for t in self.threads) \
            and not any(self.buffers)

    def buffered_value(self, tid: int, loc: str) -> Optional[Event]:
        """Newest same-location entry of the thread's own buffer."""
        for event in reversed(self.buffers[tid]):
            if event.loc == loc:
                return event
        return None

    def thread_by_name(self, name: str) -> ThreadState:
        return self._by_name[name]


class TsoScheduler:
    """Base TSO scheduler: uniform choice among enabled actions."""

    name = "tso-naive"

    def __init__(self, seed: Optional[int] = None):
        import random

        self.rng = random.Random(seed)

    def on_run_start(self, state: TsoState) -> None:
        pass

    def choose_action(self, state: TsoState,
                      actions: List[Action]) -> Action:
        return self.rng.choice(actions)

    def on_write_issued(self, state: TsoState, event: Event) -> None:
        pass


class TsoExecutor:
    """Drives a program under TSO store-buffer semantics."""

    def __init__(self, program: Program, scheduler: TsoScheduler,
                 max_steps: int = 20000, keep_graph: bool = True):
        self.program = program
        self.scheduler = scheduler
        self.max_steps = max_steps
        self.keep_graph = keep_graph

    def run(self) -> TsoRunResult:
        state = TsoState(self.program)
        result = TsoRunResult(self.program.name, self.scheduler.name)
        self.scheduler.on_run_start(state)
        try:
            self._loop(state, result)
        except AssertionViolation as violation:
            result.bug_found = True
            result.bug_message = str(violation)
        result.steps = state.steps
        result.k = state.k
        result.k_writes = state.k_writes
        if not result.thread_results:
            result.thread_results = {
                t.name: t.result for t in state.threads if t.finished
            }
        if self.keep_graph:
            result.graph = state.graph
        return result

    # -- main loop -----------------------------------------------------------

    def _loop(self, state: TsoState, result: TsoRunResult) -> None:
        while not state.all_done():
            if state.steps >= self.max_steps:
                result.limit_exceeded = True
                # Drain-or-mark: the run is inconclusive, but the graph
                # must stay analyzable — commit the abandoned buffered
                # stores so no read's rf source dangles outside mo.
                drain_buffers(state)
                return
            actions = state.enabled_actions()
            if not actions:
                result.bug_found = True
                result.bug_message = "deadlock under TSO"
                return
            action = self.scheduler.choose_action(state, actions)
            if action not in actions:
                raise ReproError(
                    f"{self.scheduler.name} chose unavailable {action!r}"
                )
            self._apply(state, action)
        results = {t.name: t.result for t in state.threads}
        result.thread_results = results
        for check in self.program.final_checks:
            check(results)

    # -- actions -----------------------------------------------------------------

    def _apply(self, state: TsoState, action: Action) -> None:
        kind, tid = action
        state.steps += 1
        if kind == FLUSH:
            commit_flush(state, tid)
            return
        thread = state.threads[tid]
        op = thread.pending
        if isinstance(op, YieldOp):
            thread.advance(None)
            return
        if isinstance(op, JoinOp):
            target = state.thread_by_name(op.thread_name)
            thread.advance(target.result)
            return
        state.k += 1
        if isinstance(op, StoreOp):
            self._issue_store(state, thread, op)
        elif isinstance(op, LoadOp):
            self._do_load(state, thread, op)
        elif isinstance(op, FenceOp):
            drain_buffers(state, (tid,))
            state.graph.add_fence(tid, op.order)
            thread.advance(None)
        elif isinstance(op, RmwOp):
            drain_buffers(state, (tid,))
            source = state.graph.mo_max(op.loc)
            old = source.wval
            state.graph.add_rmw(tid, op.loc, source, op.update(old),
                                op.order)
            thread.advance(old)
        elif isinstance(op, CasOp):
            drain_buffers(state, (tid,))
            source = state.graph.mo_max(op.loc)
            old = source.wval
            if old == op.expected:
                state.graph.add_rmw(tid, op.loc, source, op.desired,
                                    op.success_order)
                thread.advance((True, old))
            else:
                state.graph.add_read(tid, op.loc, source,
                                     op.failure_order)
                thread.advance((False, old))
        else:
            raise ReproError(
                f"op {op!r} is not supported by the TSO engine"
            )

    def _issue_store(self, state: TsoState, thread: ThreadState,
                     op: StoreOp) -> None:
        if op.loc not in self.program.locations:
            raise ProgramDefinitionError(f"unknown location {op.loc!r}")
        # Create the event now (issue), carrying the op's *declared*
        # order — seq_cst stores must reach the SC order at commit time
        # and artifacts/diagnostics must see the program's real orders.
        # It enters mo at flush time.
        event = state.graph.issue_write(thread.tid, op.loc, op.value,
                                        op.order)
        state.buffers[thread.tid].append(event)
        state.k_writes += 1
        self.scheduler.on_write_issued(state, event)
        if op.order.is_seq_cst:
            # The standard C11-to-x86 mapping compiles a seq_cst store to
            # MOV + MFENCE: the buffer drains before the thread proceeds
            # (rel/acq/relaxed stores are plain MOVs and stay buffered).
            drain_buffers(state, (thread.tid,))
        thread.advance(None)

    def _do_load(self, state: TsoState, thread: ThreadState,
                 op: LoadOp) -> None:
        if op.loc not in self.program.locations:
            raise ProgramDefinitionError(f"unknown location {op.loc!r}")
        # Buffer-forwarded reads reference the uncommitted write; the
        # graph read still records rf to it (mo position comes later).
        source = read_source(state, thread.tid, op.loc)
        state.graph.add_read(thread.tid, op.loc, source, op.order)
        thread.advance(source.wval)


def run_tso(program: Program, scheduler: TsoScheduler,
            max_steps: int = 20000, keep_graph: bool = True) -> TsoRunResult:
    """Convenience wrapper: one TSO test run."""
    return TsoExecutor(program, scheduler, max_steps=max_steps,
                       keep_graph=keep_graph).run()
