#!/usr/bin/env python
"""Regenerate the committed fuzz regression corpus (``tests/corpus/``).

Runs the full ``generate → campaign → shrink → corpus`` pipeline over a
fixed grid of (model, base seed, generator config) cells and rewrites
``tests/corpus/*.json``.  Every entry is replay-validated before it is
written, and the pipeline is bit-deterministic, so rerunning this script
on an unchanged engine reproduces the corpus byte-for-byte.

Regenerate (and review the diff!) only when a change is *supposed* to
alter scheduling, generation, or shrinking behaviour:

    PYTHONPATH=src python scripts/regen_corpus.py

``tests/test_corpus.py`` replays the committed entries in tier-1.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.fuzz import FuzzConfig, corpus_files, run_fuzz  # noqa: E402

CORPUS_DIR = REPO_ROOT / "tests" / "corpus"

#: The corpus grid.  C11 cells lean on the message-passing assertion
#: oracle; the TSO cell needs racy non-atomics because TSO preserves
#: store→store order and the MP oracle can never fire there.
CELLS = [
    dict(model="c11", base_seed=0, count=50, config=FuzzConfig()),
    dict(model="c11", base_seed=0xC0FFEE, count=30,
         config=FuzzConfig(allow_nonatomic=True, oracle="always")),
    dict(model="tso", base_seed=5, count=40,
         config=FuzzConfig(allow_nonatomic=True)),
]


def main() -> int:
    CORPUS_DIR.mkdir(parents=True, exist_ok=True)
    for stale in CORPUS_DIR.glob("*.json"):
        stale.unlink()
    total = 0
    for cell in CELLS:
        start = time.monotonic()
        report = run_fuzz(
            base_seed=cell["base_seed"],
            count=cell["count"],
            model=cell["model"],
            config=cell["config"],
            corpus_dir=str(CORPUS_DIR),
        )
        found = sum(len(p.findings) for p in report.programs)
        total += found
        print(f"[{cell['model']} seed={cell['base_seed']:#x} "
              f"count={cell['count']}] {found} finding(s) "
              f"in {time.monotonic() - start:.1f}s", file=sys.stderr)
    entries = corpus_files(str(CORPUS_DIR))
    print(f"wrote {len(entries)} corpus entries ({total} findings) "
          f"to {CORPUS_DIR}", file=sys.stderr)
    if len(entries) < 10:
        print("ERROR: corpus smaller than the 10-entry floor",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
