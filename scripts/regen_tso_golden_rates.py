#!/usr/bin/env python
"""Regenerate the golden TSO litmus hit-rate file.

The x86-TSO twin of ``regen_golden_rates.py``: runs the probabilistic
schedulers over the SB/MP/LB litmus shapes on the TSO backend with fixed
seeds and records the *exact* hit counts in
``tests/golden/tso_litmus_rates.json``.  Under TSO only W->R reordering
exists, so SB's weak outcome must be reachable (delayed flushes) while
MP's and LB's must not — the golden file pins both the reachability
facts and the exact per-seed counts.

Two sections:

* ``rates``  — PCTWM hit counts over the (d, h) grid, per litmus;
* ``schedulers`` — SB hit counts for every TSO-supported scheduler,
  pinning that each one can schedule flush delays into the SB window.

Regenerate (and review the diff!) only when a change is *supposed* to
alter TSO scheduling behaviour:

    PYTHONPATH=src python scripts/regen_tso_golden_rates.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import (  # noqa: E402
    NaiveRandomScheduler,
    PCTScheduler,
    PCTWMScheduler,
)
from repro.core.pos import POSScheduler  # noqa: E402
from repro.litmus import ALL_LITMUS  # noqa: E402
from repro.memory import resolve_model  # noqa: E402

GOLDEN_PATH = REPO_ROOT / "tests" / "golden" / "tso_litmus_rates.json"

#: The shapes whose TSO verdicts matter most: SB exhibits the one
#: reordering x86 allows; MP and LB require reorderings it forbids.
PROGRAMS = ("SB", "MP", "LB")
DEPTHS = (1, 2, 3)
HISTORIES = (1, 2, 3)
K_COM = 8
TRIALS = 40
MAX_STEPS = 2000

#: Every scheduler the TSO model supports, on SB.
SCHEDULER_MAKERS = {
    "naive": lambda seed: NaiveRandomScheduler(seed=seed),
    "pct": lambda seed: PCTScheduler(2, 16, seed=seed),
    "pctwm": lambda seed: PCTWMScheduler(2, K_COM, 2, seed=seed),
    "pos": lambda seed: POSScheduler(seed=seed),
}
SCHEDULER_TRIALS = 60


def compute_golden() -> dict:
    """Exact TSO hit counts over the fixed grids (deterministic)."""
    model = resolve_model("tso")
    rates: dict = {}
    for name in PROGRAMS:
        factory = ALL_LITMUS[name]
        cells: dict = {}
        for depth in DEPTHS:
            for history in HISTORIES:
                hits = sum(
                    model.run_once(
                        factory(),
                        PCTWMScheduler(depth, K_COM, history, seed=seed),
                        max_steps=MAX_STEPS, keep_graph=False,
                    ).bug_found
                    for seed in range(TRIALS)
                )
                cells[f"d={depth},h={history}"] = hits
        rates[name] = cells
    sb_factory = ALL_LITMUS["SB"]
    schedulers = {
        sched_name: sum(
            model.run_once(
                sb_factory(), make(seed),
                max_steps=MAX_STEPS, keep_graph=False,
            ).bug_found
            for seed in range(SCHEDULER_TRIALS)
        )
        for sched_name, make in SCHEDULER_MAKERS.items()
    }
    return {
        "meta": {
            "model": "tso",
            "scheduler": "pctwm",
            "k_com": K_COM,
            "trials": TRIALS,
            "max_steps": MAX_STEPS,
            "seeds": f"range({TRIALS})",
            "scheduler_trials": SCHEDULER_TRIALS,
        },
        "rates": rates,
        "schedulers": schedulers,
    }


def main() -> None:
    golden = compute_golden()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    for name, cells in golden["rates"].items():
        row = " ".join(f"{cell}:{hits}" for cell, hits in cells.items())
        print(f"  {name}: {row}")
    row = " ".join(f"{name}:{hits}"
                   for name, hits in golden["schedulers"].items())
    print(f"  SB per scheduler: {row}")


if __name__ == "__main__":
    main()
