#!/bin/sh
# Mirrors the artifact's result_pctwm.sh: PCTWM's tables and figures.
# Usage: scripts/result_pctwm.sh [trials]   (paper scale: 1000)
TRIALS="${1:-200}"
set -e
python -m repro table1
python -m repro table2 --trials "$TRIALS"
python -m repro table3 --trials "$TRIALS"
