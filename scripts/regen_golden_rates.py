#!/usr/bin/env python
"""Regenerate the golden litmus hit-rate file.

Runs PCTWM over a fixed (litmus, d, h) grid with fixed seeds and records
the *exact* hit counts in ``tests/golden/litmus_rates.json``.  The counts
are deterministic: any engine or scheduler change that alters a single
RNG draw, priority decision or candidate set shows up as a diff here —
the regression test (``tests/test_golden_rates.py``) recomputes the grid
and demands byte-exact agreement.

Regenerate (and review the diff!) only when a change is *supposed* to
alter scheduling behaviour:

    PYTHONPATH=src python scripts/regen_golden_rates.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import PCTWMScheduler  # noqa: E402
from repro.litmus import ALL_LITMUS  # noqa: E402
from repro.runtime import run_once  # noqa: E402

GOLDEN_PATH = REPO_ROOT / "tests" / "golden" / "litmus_rates.json"

#: The paper's four headline shapes (Figure 4 / Section 6.1).
PROGRAMS = ("SB", "MP", "LB", "IRIW")
DEPTHS = (1, 2, 3)
HISTORIES = (1, 2, 3)
K_COM = 8
TRIALS = 40
MAX_STEPS = 2000


def compute_golden() -> dict:
    """Exact PCTWM hit counts over the fixed grid (deterministic)."""
    rates: dict = {}
    for name in PROGRAMS:
        factory = ALL_LITMUS[name]
        cells: dict = {}
        for depth in DEPTHS:
            for history in HISTORIES:
                hits = sum(
                    run_once(
                        factory(),
                        PCTWMScheduler(depth, K_COM, history, seed=seed),
                        max_steps=MAX_STEPS, keep_graph=False,
                    ).bug_found
                    for seed in range(TRIALS)
                )
                cells[f"d={depth},h={history}"] = hits
        rates[name] = cells
    return {
        "meta": {
            "scheduler": "pctwm",
            "k_com": K_COM,
            "trials": TRIALS,
            "max_steps": MAX_STEPS,
            "seeds": f"range({TRIALS})",
        },
        "rates": rates,
    }


def main() -> None:
    golden = compute_golden()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    for name, cells in golden["rates"].items():
        row = " ".join(f"{cell}:{hits}" for cell, hits in cells.items())
        print(f"  {name}: {row}")


if __name__ == "__main__":
    main()
