#!/bin/sh
# Mirrors the artifact's result_pct.sh: the comparative figures where the
# PCT baseline appears.
TRIALS="${1:-200}"
set -e
python -m repro figure5 --trials "$TRIALS"
python -m repro figure6 --trials "$TRIALS"
