#!/bin/sh
# Mirrors the artifact's run_all.sh: every table and figure plus the
# application overhead measurements, then a generated markdown report.
TRIALS="${1:-200}"
set -e
python -m repro all --trials "$TRIALS"
python -m repro report --trials "$TRIALS" --out evaluation_report.md
echo "wrote evaluation_report.md"
