"""Tests for execution statistics collection."""

from repro.analysis import collect_stats
from repro.core import C11TesterScheduler, PCTWMScheduler
from repro.litmus import mp1, mp2, store_buffering
from repro.runtime import run_once


class TestCollectStats:
    def test_counts_match_program_shape(self):
        result = run_once(store_buffering(), C11TesterScheduler(seed=0))
        stats = collect_stats(result.graph)
        assert stats.events == 4
        assert stats.by_kind == {"W": 2, "R": 2}
        assert stats.by_order == {"relaxed": 4}
        assert stats.threads == 2
        assert stats.locations == 2

    def test_read_classification_sums(self):
        result = run_once(mp2(), C11TesterScheduler(seed=5))
        stats = collect_stats(result.graph)
        reads = stats.by_kind.get("R", 0) + stats.by_kind.get("U", 0)
        assert stats.init_reads + stats.own_reads + stats.external_reads \
            == reads

    def test_d0_run_has_no_external_reads(self):
        result = run_once(store_buffering(), PCTWMScheduler(0, 4, 1, seed=0))
        stats = collect_stats(result.graph)
        assert stats.external_reads == 0
        assert stats.init_reads == 2
        assert not stats.communication_matrix

    def test_communication_matrix_records_edges(self):
        for seed in range(200):
            result = run_once(mp2(), PCTWMScheduler(2, 3, 1, seed=seed))
            stats = collect_stats(result.graph)
            if result.bug_found:
                assert stats.communication_matrix.get((0, 1)) == 1
                assert stats.communication_matrix.get((1, 2)) == 1
                return
        raise AssertionError("no buggy MP2 run found")

    def test_fences_counted(self):
        result = run_once(mp1(), C11TesterScheduler(seed=0))
        stats = collect_stats(result.graph)
        assert stats.by_kind.get("F") == 2

    def test_staleness_indicator(self):
        from repro.litmus import p1
        from repro.memory.events import RLX
        # Staleness is measured at read time, so it only registers when
        # the writer runs before the reader; scan seeds for that order.
        values = []
        for seed in range(10):
            result = run_once(p1(5, order=RLX),
                              PCTWMScheduler(0, 1, 1, seed=seed))
            values.append(collect_stats(result.graph).max_staleness)
        # Writer-first runs: the d=0 reader reads init behind 5 writes.
        assert max(values) == 5
        # Reader-first runs: no staleness to observe yet.
        assert min(values) == 0

    def test_render_is_readable(self):
        result = run_once(mp2(), C11TesterScheduler(seed=1))
        text = collect_stats(result.graph).render()
        assert "events:" in text
        assert "by kind:" in text


class TestCliUtilities:
    def test_depth_command(self, capsys):
        from repro.harness.cli import main
        assert main(["depth", "barrier", "--trials", "40"]) == 0
        out = capsys.readouterr().out
        assert "empirical bug depth" in out

    def test_hunt_command(self, capsys, tmp_path):
        from repro.harness.cli import main
        out_file = tmp_path / "trace.json"
        assert main(["hunt", "msqueue", "--attempts", "30",
                     "--out", str(out_file)]) == 0
        assert out_file.exists()
        from repro.replay import Trace, replay_run
        from repro.workloads import msqueue
        replayed = replay_run(msqueue(),
                              Trace.from_json(out_file.read_text()))
        assert replayed.bug_found

    def test_hunt_reports_failure(self, capsys):
        from repro.harness.cli import main
        # The fixed variant has no bug; hunting the buggy name at an
        # impossible depth (0 on a depth-1 bug) must fail fast.
        assert main(["hunt", "barrier", "--attempts", "5",
                     "--depth", "0"]) == 1
