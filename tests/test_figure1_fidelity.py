"""Byte-level fidelity test for the paper's Figure 1 (MP1 walkthrough).

Figure 1 annotates the MP1 execution `a = 1, b = 1` with the thread view
after every event and the bags communicated along rf/sw edges:

    e1: W(X,1)rlx   -> T1 view {(X,e1),(Y,iy)}
    e2: Frel        -> T1 view unchanged; e2.bag = {(X,e1),(Y,iy)}
    e3: W(Y,1)rlx   -> T1 view {(X,e1),(Y,e3)}
    e4: R(Y,1)rlx   -> T2 view {(X,ix),(Y,e3)}  (relaxed: only Y joins)
    e5: Facq        -> sw with e2; T2 view {(X,e1),(Y,e3)}
    e6: R(X,1)      -> reads 1 (from the view), whether local or global

This test drives PCTWM into exactly that execution (d=1 selecting e4 as
the communication sink, T1 at higher priority) and asserts every view/bag
against the figure.
"""

from repro.core import PCTWMScheduler
from repro.litmus import mp1
from repro.runtime import Executor


class _PinnedPCTWM(PCTWMScheduler):
    """PCTWM with deterministic priorities/selection for the walkthrough:
    T1 (writer, tid 0) runs first; the single change point selects the
    first communication event encountered — e4, the reader's Y load."""

    def on_run_start(self, state) -> None:
        super().on_run_start(state)
        # Writer above reader; change point pinned at comm event #1.
        self._priorities = {0: 3, 1: 2}
        self._slot_by_count = {1: 0}


def run_figure1():
    program = mp1()
    scheduler = _PinnedPCTWM(depth=1, k_com=1, history=1, seed=0)
    executor = Executor(program, scheduler)
    result = executor.run()
    return result, scheduler


def label_views(graph, scheduler):
    """Map event uid -> {loc: source-uid} from the recorded bags."""
    out = {}
    for event in graph.events:
        bag = scheduler._bags.get(event.uid)
        if bag is None:
            continue
        out[event.uid] = {
            loc: bag.get(loc).uid for loc in ("X", "Y")
        }
    return out


class TestFigure1:
    def test_execution_matches_figure(self):
        result, scheduler = run_figure1()
        graph = result.graph
        events = [e for e in graph.events if not e.is_init]
        # Execution order: e1, e2, e3 (T1), then e4, e5, e6 (T2).
        kinds = [(e.tid, e.kind.value, e.loc) for e in events]
        assert kinds == [
            (0, "W", "X"), (0, "F", None), (0, "W", "Y"),
            (1, "R", "Y"), (1, "F", None), (1, "R", "X"),
        ]
        e1, e2, e3, e4, e5, e6 = events

        # rf edges of the figure: e4 reads e3; e6 reads e1.
        assert e4.reads_from is e3
        assert e6.reads_from is e1
        assert result.thread_results["reader"] == (1, 1)
        assert not result.bug_found

        init_x = graph.writes_by_loc["X"][0]
        views = label_views(graph, scheduler)

        # e1's bag: {(X, e1), (Y, iy)}.
        assert views[e1.uid]["X"] == e1.uid
        assert views[e1.uid]["Y"] == graph.writes_by_loc["Y"][0].uid
        # e2 (Frel): unchanged view snapshot.
        assert views[e2.uid] == views[e1.uid]
        # e3: {(X, e1), (Y, e3)}.
        assert views[e3.uid] == {"X": e1.uid, "Y": e3.uid}
        # e4 (relaxed read of Y): only Y joins -> {(X, ix), (Y, e3)}.
        assert views[e4.uid] == {"X": init_x.uid, "Y": e3.uid}
        # e5 (Facq): sw with e2 delivers e2's bag -> {(X, e1), (Y, e3)}.
        assert views[e5.uid] == {"X": e1.uid, "Y": e3.uid}
        # e6 reads X = 1 from the updated view.
        assert e6.label.rval == 1

    def test_sw_edge_is_fence_to_fence(self):
        result, _scheduler = run_figure1()
        sw = result.graph.sw()
        events = [e for e in result.graph.events if not e.is_init]
        e2, e5 = events[1], events[4]
        assert sw(e2, e5), "Figure 1's sw(e2, e5) edge missing"

    def test_outcome_a1_b0_impossible_here(self):
        """The figure's point: once a = 1, the fences force b = 1."""
        for seed in range(50):
            scheduler = _PinnedPCTWM(depth=1, k_com=1, history=1,
                                     seed=seed)
            result = Executor(mp1(), scheduler).run()
            a, b = result.thread_results["reader"]
            assert (a, b) != (1, 0)
