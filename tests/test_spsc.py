"""Tests for the Lamport SPSC ring benchmark (pure load/store bug)."""

import pytest

from repro.core import (
    C11TesterScheduler,
    NaiveRandomScheduler,
    PCTWMScheduler,
)
from repro.memory.axioms import is_consistent
from repro.runtime import run_once
from repro.workloads import spsc
from tests.helpers import hit_count


class TestSpscBuggy:
    def test_depth_one(self):
        """The bug needs exactly one communication (the tail read)."""
        assert hit_count(spsc,
                         lambda s: PCTWMScheduler(0, 8, 1, seed=s),
                         100) == 0
        assert hit_count(spsc,
                         lambda s: PCTWMScheduler(1, 8, 1, seed=s),
                         200) > 0

    def test_naive_sc_never_finds_it(self):
        """Pure load/store weak bug: invisible to SC interleavings."""
        assert hit_count(spsc,
                         lambda s: NaiveRandomScheduler(seed=s), 200) == 0

    def test_c11tester_finds_it(self):
        assert hit_count(spsc,
                         lambda s: C11TesterScheduler(seed=s), 200) > 0

    def test_executions_consistent(self):
        for seed in range(5):
            result = run_once(spsc(), C11TesterScheduler(seed=seed))
            assert is_consistent(result.graph)

    def test_validation(self):
        with pytest.raises(ValueError):
            spsc(capacity=1)
        with pytest.raises(ValueError):
            spsc(items=0)


class TestSpscFixed:
    @pytest.mark.parametrize("depth", [0, 1, 2, 3])
    def test_never_flags_under_pctwm(self, depth):
        assert hit_count(lambda: spsc(fixed=True),
                         lambda s: PCTWMScheduler(depth, 8, 2, seed=s),
                         60) == 0

    def test_never_flags_under_random(self):
        assert hit_count(lambda: spsc(fixed=True),
                         lambda s: C11TesterScheduler(seed=s), 150) == 0

    def test_fifo_when_complete(self):
        """Whenever the consumer drains everything, order is FIFO."""
        for seed in range(40):
            result = run_once(spsc(fixed=True),
                              C11TesterScheduler(seed=seed))
            got = result.thread_results["consumer"]
            if len(got) == 3:
                assert got == [100, 101, 102]
                return
        pytest.fail("consumer never drained the ring in 40 runs")

    def test_wraparound(self):
        """More items than capacity forces index wraparound."""
        for seed in range(40):
            result = run_once(spsc(capacity=2, items=4, fixed=True),
                              C11TesterScheduler(seed=seed))
            assert not result.bug_found
            got = result.thread_results["consumer"]
            assert got == [100 + i for i in range(len(got))]
