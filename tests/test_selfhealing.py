"""Self-healing runtime: watchdog preemption, fault rig, SIGTERM drain.

The contract under test: a campaign survives a *wedged* worker (one
that stops heartbeating inside native-ish code where the cooperative
trial timeout cannot fire), survives leaking workers via the RSS
ceiling, treats SIGTERM exactly like SIGINT (journal flushed, interrupt
event appended, partial result returned), and every preemption feeds
the existing retry path so results stay bit-identical.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core import SchedulerSpec
from repro.harness import run_campaign, run_campaign_parallel
from repro.harness.campaign import CampaignAccumulator
from repro.harness.cli import main as cli_main
from repro.harness.parallel import (
    RETRY_BACKOFF_CAP_S,
    _ShardSupervisor,
    _sigterm_as_interrupt,
)
from repro.harness import faultrig
from repro.harness import watchdog as watchdog_mod
from repro.harness.watchdog import (
    IDLE,
    HeartbeatBoard,
    Watchdog,
    WatchdogStats,
    read_rss_mb,
)
from repro.workloads import ProgramSpec


def agg_key(result):
    return (result.hits, result.inconclusive, result.total_steps,
            result.total_events)


def sb_program():
    return ProgramSpec("SB", kind="litmus")


@pytest.fixture(autouse=True)
def clean_fault_env(monkeypatch):
    """Tests inject faults explicitly; never inherit them."""
    monkeypatch.delenv(faultrig.FAULT_ENV, raising=False)
    faultrig._DIRECTIVES = None
    yield
    faultrig._DIRECTIVES = None


# -- watchdog unit behavior ----------------------------------------------------


class RecordingKills:
    def __init__(self):
        self.pids = []

    def __call__(self, pid):
        self.pids.append(pid)
        return True


@pytest.fixture
def no_real_kills(monkeypatch):
    kills = RecordingKills()
    monkeypatch.setattr(Watchdog, "_kill", staticmethod(kills))
    return kills


def make_board(slots=2):
    return HeartbeatBoard(multiprocessing.get_context(), slots=slots)


class TestWatchdogScan:
    def test_requires_a_limit(self):
        with pytest.raises(ValueError, match="hang timeout or a memory"):
            Watchdog(make_board(), live_pids=list)

    def test_stale_busy_slot_is_killed(self, no_real_kills):
        board = make_board()
        hb = board.claim()
        hb.beat()
        board._stamps[hb.slot] = time.monotonic() - 10.0  # ancient
        stats = WatchdogStats()
        dog = Watchdog(board, live_pids=lambda: [os.getpid()],
                       hang_timeout_s=1.0, stats=stats)
        dog.scan()
        assert no_real_kills.pids == [os.getpid()]
        assert stats.hang_kills == 1
        assert stats.scans == 1

    def test_idle_slot_is_never_killed(self, no_real_kills):
        board = make_board()
        hb = board.claim()
        hb.idle()
        dog = Watchdog(board, live_pids=lambda: [os.getpid()],
                       hang_timeout_s=0.001)
        time.sleep(0.01)
        dog.scan()
        assert no_real_kills.pids == []
        assert dog.stats.hang_kills == 0

    def test_fresh_busy_slot_survives(self, no_real_kills):
        board = make_board()
        hb = board.claim()
        hb.beat()
        dog = Watchdog(board, live_pids=lambda: [os.getpid()],
                       hang_timeout_s=60.0)
        dog.scan()
        assert no_real_kills.pids == []
        assert dog.stats.busy_heartbeat_ages != []

    def test_dead_pool_pids_are_ignored(self, no_real_kills):
        """A stale slot whose pid the pool no longer owns is skipped."""
        board = make_board()
        hb = board.claim()
        board._stamps[hb.slot] = time.monotonic() - 10.0
        dog = Watchdog(board, live_pids=lambda: [],
                       hang_timeout_s=1.0)
        dog.scan()
        assert no_real_kills.pids == []

    def test_rss_ceiling_recycles(self, no_real_kills, monkeypatch):
        board = make_board()
        hb = board.claim()
        hb.idle()  # RSS applies to idle workers too: leaks persist
        monkeypatch.setattr(watchdog_mod, "read_rss_mb",
                            lambda pid: 512.0)
        stats = WatchdogStats()
        dog = Watchdog(board, live_pids=lambda: [os.getpid()],
                       memory_limit_mb=256.0, stats=stats)
        dog.scan()
        assert no_real_kills.pids == [os.getpid()]
        assert stats.rss_kills == 1
        assert stats.preemptions == 1

    def test_poll_derives_from_hang_timeout(self):
        assert Watchdog(make_board(), live_pids=list,
                        hang_timeout_s=2.0).poll_s == 0.5
        assert Watchdog(make_board(), live_pids=list,
                        hang_timeout_s=0.2).poll_s == pytest.approx(0.05)
        assert Watchdog(make_board(), live_pids=list,
                        memory_limit_mb=100.0).poll_s == 0.5

    def test_snapshot_is_json_ready(self):
        stats = WatchdogStats()
        snap = stats.snapshot()
        json.dumps(snap)
        assert snap["scans"] == 0
        assert snap["last_scan_age_s"] is None

    def test_board_claims_distinct_slots(self):
        board = make_board(slots=2)
        assert board.claim().slot != board.claim().slot

    def test_board_needs_a_slot(self):
        with pytest.raises(ValueError):
            HeartbeatBoard(multiprocessing.get_context(), slots=0)

    def test_read_rss_mb_self(self):
        rss = read_rss_mb(os.getpid())
        if rss is None:
            pytest.skip("/proc not available on this platform")
        assert rss > 1.0

    def test_read_rss_mb_dead_pid(self):
        assert read_rss_mb(2 ** 30) is None


# -- fault rig -----------------------------------------------------------------


class TestFaultRig:
    def test_parse_directives(self):
        parsed = faultrig.load_directives(
            "wedge-once:/tmp/w:3.5, kill-once:/tmp/k")
        assert parsed == [("wedge-once", "/tmp/w", 3.5),
                          ("kill-once", "/tmp/k", None)]

    def test_empty_env_is_no_directives(self):
        assert faultrig.load_directives("") == []
        faultrig.maybe_inject()  # must be a no-op, not a crash

    @pytest.mark.parametrize("bad", [
        "explode-once:/tmp/x",       # unknown action
        "wedge-once",                # no sentinel
        "wedge-once::",              # empty sentinel
        "wedge-once:/tmp/x:soon",    # non-numeric arg
    ])
    def test_malformed_directive_raises(self, bad):
        with pytest.raises(ValueError, match="directive"):
            faultrig.load_directives(bad)

    def test_directive_fires_exactly_once(self, tmp_path):
        sentinel = str(tmp_path / "leak")
        faultrig.load_directives(f"leak-once:{sentinel}:1")
        before = len(faultrig._LEAKED)
        faultrig.maybe_inject()
        faultrig.maybe_inject()
        assert os.path.exists(sentinel)
        assert len(faultrig._LEAKED) == before + 1
        faultrig._LEAKED.clear()


# -- preemption end-to-end -----------------------------------------------------


class TestPreemption:
    def test_wedged_worker_preempted_bit_identical(self, tmp_path,
                                                   monkeypatch):
        """A worker wedged outside the step loop (heartbeats stop) is
        hard-killed by the watchdog and its shard retried; the campaign
        finishes bit-identical to a serial run."""
        sentinel = str(tmp_path / "wedged")
        # Bounded wedge: if the watchdog were broken the test would fail
        # on the identity assertions after 30s, not hang CI.
        monkeypatch.setenv(faultrig.FAULT_ENV,
                           f"wedge-once:{sentinel}:30")
        sched = SchedulerSpec("naive")
        faulted = run_campaign_parallel(
            sb_program(), sched, trials=30, base_seed=5, jobs=2,
            max_retries=3, retry_backoff_s=0.01,
            hang_timeout_s=0.5, watchdog_poll_s=0.05)
        serial = run_campaign(sb_program(), sched, trials=30, base_seed=5)
        assert os.path.exists(sentinel)
        assert faulted.hang_preemptions >= 1
        assert faulted.completed == 30
        assert not faulted.interrupted
        assert agg_key(faulted) == agg_key(serial)

    def test_faultrig_kill_recovers_without_watchdog(self, tmp_path,
                                                     monkeypatch):
        sentinel = str(tmp_path / "killed")
        monkeypatch.setenv(faultrig.FAULT_ENV, f"kill-once:{sentinel}")
        sched = SchedulerSpec("naive")
        faulted = run_campaign_parallel(
            sb_program(), sched, trials=24, base_seed=9, jobs=2,
            max_retries=3, retry_backoff_s=0.01)
        serial = run_campaign(sb_program(), sched, trials=24, base_seed=9)
        assert os.path.exists(sentinel)
        assert faulted.hang_preemptions == 0  # no watchdog configured
        assert agg_key(faulted) == agg_key(serial)

    def test_leaky_worker_recycled_by_rss_ceiling(self, tmp_path,
                                                  monkeypatch):
        if read_rss_mb(os.getpid()) is None:
            pytest.skip("/proc not available on this platform")
        # The same worker claims both directives: it leaks ~300 MiB and
        # then stalls busy for a second, giving the sampler a window.
        monkeypatch.setenv(
            faultrig.FAULT_ENV,
            f"leak-once:{tmp_path}/leak:300,stall-once:{tmp_path}/stall:1")
        sched = SchedulerSpec("naive")
        faulted = run_campaign_parallel(
            sb_program(), sched, trials=30, base_seed=4, jobs=2,
            max_retries=3, retry_backoff_s=0.01,
            memory_limit_mb=128.0, watchdog_poll_s=0.05)
        serial = run_campaign(sb_program(), sched, trials=30, base_seed=4)
        assert faulted.rss_recycles >= 1
        assert agg_key(faulted) == agg_key(serial)


# -- SIGTERM drains like SIGINT ------------------------------------------------


class SigtermAfterShards:
    """Progress hook that delivers a real SIGTERM to this process."""

    def __init__(self, shards: int):
        self.shards = shards
        self.calls = 0

    def __call__(self, progress):
        self.calls += 1
        if self.calls == self.shards:
            os.kill(os.getpid(), signal.SIGTERM)


class TestSigterm:
    def test_sigterm_journals_and_resumes_bit_identical(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        sched = SchedulerSpec("naive")
        partial = run_campaign_parallel(
            sb_program(), sched, trials=48, base_seed=11, jobs=2,
            checkpoint=path, progress=SigtermAfterShards(2))
        assert partial.interrupted
        assert 0 < partial.completed < 48

        with open(path) as fh:
            lines = [json.loads(line) for line in fh if line.strip()]
        events = [obj for obj in lines if obj.get("kind") == "interrupt"]
        assert len(events) == 1
        assert events[0]["signal"] == "SIGTERM"
        assert events[0]["completed"] == partial.completed

        resumed = run_campaign_parallel(
            sb_program(), sched, trials=48, base_seed=11, jobs=2,
            checkpoint=path, resume=True)
        serial = run_campaign(sb_program(), sched, trials=48, base_seed=11)
        assert not resumed.interrupted
        assert resumed.resumed_trials == partial.completed
        assert agg_key(resumed) == agg_key(serial)

    def test_sigint_interrupt_event_says_sigint(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")

        def interrupt_soon(progress):
            raise KeyboardInterrupt

        run_campaign_parallel(
            sb_program(), SchedulerSpec("naive"), trials=20, base_seed=1,
            jobs=2, checkpoint=path, progress=interrupt_soon)
        with open(path) as fh:
            events = [json.loads(line) for line in fh
                      if '"interrupt"' in line]
        assert events and events[0]["signal"] == "SIGINT"

    def test_clean_finish_writes_no_interrupt_event(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        run_campaign_parallel(sb_program(), SchedulerSpec("naive"),
                              trials=10, base_seed=2, jobs=2,
                              checkpoint=path)
        with open(path) as fh:
            assert not any('"interrupt"' in line for line in fh)

    def test_previous_handler_restored(self):
        marker = lambda signum, frame: None  # noqa: E731
        previous = signal.signal(signal.SIGTERM, marker)
        try:
            run_campaign_parallel(sb_program(), SchedulerSpec("naive"),
                                  trials=6, base_seed=0, jobs=2)
            assert signal.getsignal(signal.SIGTERM) is marker
        finally:
            signal.signal(signal.SIGTERM, previous)

    def test_context_is_inert_off_main_thread(self):
        import threading

        seen = {}

        def run():
            with _sigterm_as_interrupt() as term_seen:
                seen["handler"] = signal.getsignal(signal.SIGTERM)
                seen["yielded"] = term_seen

        before = signal.getsignal(signal.SIGTERM)
        t = threading.Thread(target=run)
        t.start()
        t.join()
        assert seen["handler"] is before  # nothing was installed
        assert seen["yielded"] == {}

    def test_subprocess_sigterm_exits_130_and_resumes(self, tmp_path):
        """The real thing: SIGTERM a campaign process mid-run, get exit
        code 130 and a resumable journal."""
        path = str(tmp_path / "journal.jsonl")
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign", "seqlock",
             "--scheduler", "naive", "--trials", "4000", "--jobs", "2",
             "--seed", "21", "--checkpoint", path],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True)
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if os.path.exists(path) and sum(
                    1 for _ in open(path)) > 40:
                break
            time.sleep(0.1)
        else:
            proc.kill()
            pytest.fail("campaign never journaled any shards")
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60)
        assert rc == 130

        rc = cli_main(["campaign", "seqlock", "--scheduler", "naive",
                       "--trials", "4000", "--jobs", "2", "--seed", "21",
                       "--checkpoint", path, "--resume"])
        assert rc == 0
        with open(path) as fh:
            trials = [json.loads(line) for line in fh
                      if '"kind": "trial"' in line]
        assert len(trials) == 4000
        assert len({obj["index"] for obj in trials}) == 4000


# -- retry backoff -------------------------------------------------------------


def make_supervisor(**kwargs):
    defaults = dict(
        shards=[], jobs=1, ctx=None, max_retries=2,
        retry_backoff_s=kwargs.pop("retry_backoff_s", 0.1),
        journal=None, on_progress=lambda outcome: None,
        accumulator=CampaignAccumulator(),
        worker_config=None)
    defaults.update(kwargs)
    return _ShardSupervisor(**defaults)


class TestBackoff:
    def test_delay_doubles_then_caps(self):
        sup = make_supervisor(retry_backoff_s=1.0)
        assert sup._backoff_delay(1) == 1.0
        assert sup._backoff_delay(2) == 2.0
        assert sup._backoff_delay(3) == 4.0
        assert sup._backoff_delay(4) == RETRY_BACKOFF_CAP_S
        assert sup._backoff_delay(10) == RETRY_BACKOFF_CAP_S

    def test_wait_honours_deadline(self):
        sup = make_supervisor()
        t0 = time.monotonic()
        sup._backoff_wait(0.12)
        assert 0.1 <= time.monotonic() - t0 < 1.0

    def test_wait_interrupted_by_stop(self):
        sup = make_supervisor()
        sup._stop.set()
        t0 = time.monotonic()
        sup._backoff_wait(10.0)
        assert time.monotonic() - t0 < 0.5


# -- API validation ------------------------------------------------------------


class TestWatchdogParamValidation:
    def test_nonpositive_hang_timeout_rejected(self):
        with pytest.raises(ValueError, match="hang_timeout_s"):
            run_campaign_parallel(sb_program(), SchedulerSpec("naive"),
                                  trials=2, hang_timeout_s=0.0)

    def test_nonpositive_memory_limit_rejected(self):
        with pytest.raises(ValueError, match="memory_limit_mb"):
            run_campaign_parallel(sb_program(), SchedulerSpec("naive"),
                                  trials=2, memory_limit_mb=-1.0)

    def test_hang_budget_must_exceed_trial_budget(self):
        with pytest.raises(ValueError, match="must exceed"):
            run_campaign_parallel(sb_program(), SchedulerSpec("naive"),
                                  trials=2, trial_timeout_s=5.0,
                                  hang_timeout_s=5.0)

    def test_serial_campaign_reports_zero_preemptions(self):
        result = run_campaign_parallel(sb_program(), SchedulerSpec("naive"),
                                       trials=4, jobs=1)
        assert result.hang_preemptions == 0
        assert result.rss_recycles == 0


# -- CLI wiring ----------------------------------------------------------------


class TestCliSelfHealingFlags:
    def test_subquantum_trial_timeout_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["campaign", "dekker", "--trial-timeout", "0.0001"])
        assert excinfo.value.code == 2
        assert "quantum" in capsys.readouterr().err

    def test_zero_hang_timeout_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["campaign", "dekker", "--hang-timeout", "0"])
        assert "must be > 0" in capsys.readouterr().err

    def test_negative_memory_limit_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["campaign", "dekker", "--memory-limit-mb", "-5"])
        assert "must be > 0" in capsys.readouterr().err

    def test_negative_max_retries_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["campaign", "dekker", "--max-retries", "-1"])
        assert "must be >= 0" in capsys.readouterr().err

    def test_hang_not_exceeding_trial_budget_is_clean_error(self, capsys):
        rc = cli_main(["campaign", "dekker", "--trials", "2",
                       "--scheduler", "naive", "--trial-timeout", "5",
                       "--hang-timeout", "5"])
        assert rc == 2
        assert "must exceed" in capsys.readouterr().out

    def test_campaign_runs_with_watchdog_flags(self, capsys):
        rc = cli_main(["campaign", "dekker", "--trials", "8",
                       "--scheduler", "naive", "--jobs", "2",
                       "--hang-timeout", "30",
                       "--memory-limit-mb", "4096"])
        assert rc == 0
        assert "errors=0" in capsys.readouterr().out
