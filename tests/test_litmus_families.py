"""Tests for the parameterized litmus families."""

import pytest

from repro.core import C11TesterScheduler, NaiveRandomScheduler, \
    PCTWMScheduler
from repro.litmus.families import (
    coherence_chain,
    mp_chain,
    sb_family,
    staleness_gauge,
)
from repro.runtime import run_once
from tests.helpers import hit_count


class TestSbFamily:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_depth_zero_for_any_ring_size(self, n):
        hits = hit_count(lambda: sb_family(n),
                         lambda s: PCTWMScheduler(0, 2 * n, 1, seed=s), 40)
        assert hits == 40

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_sc_forbids_it(self, n):
        assert hit_count(lambda: sb_family(n),
                         lambda s: NaiveRandomScheduler(seed=s), 100) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            sb_family(1)


class TestMpChain:
    def test_zero_hops_is_plain_mp(self):
        hits = hit_count(lambda: mp_chain(0),
                         lambda s: PCTWMScheduler(1, 3, 1, seed=s), 200)
        assert hits > 0

    def test_longer_chains_need_more_depth(self):
        """With hops=1 the bug needs 2 communications: invisible at d=1."""
        assert hit_count(lambda: mp_chain(1),
                         lambda s: PCTWMScheduler(1, 5, 1, seed=s),
                         150) == 0
        assert hit_count(lambda: mp_chain(1),
                         lambda s: PCTWMScheduler(2, 5, 1, seed=s),
                         400) > 0

    def test_chain_runs_under_random(self):
        result = run_once(mp_chain(2), C11TesterScheduler(seed=0))
        assert not result.limit_exceeded

    def test_validation(self):
        with pytest.raises(ValueError):
            mp_chain(-1)


class TestCoherenceChain:
    @pytest.mark.parametrize("writes", [1, 4, 10])
    def test_never_violated(self, writes):
        for make in (lambda s: C11TesterScheduler(seed=s),
                      lambda s: PCTWMScheduler(2, 4, 3, seed=s)):
            assert hit_count(lambda: coherence_chain(writes), make,
                             100) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            coherence_chain(0)


class TestStalenessGauge:
    def test_target_initial_value_is_depth_zero(self):
        hits = hit_count(lambda: staleness_gauge(5, target=0),
                         lambda s: PCTWMScheduler(0, 1, 1, seed=s), 50)
        assert hits == 50

    def test_target_latest_needs_one_com_h1(self):
        hits = hit_count(lambda: staleness_gauge(5, target=5),
                         lambda s: PCTWMScheduler(1, 1, 1, seed=s), 50)
        assert hits == 50

    def test_target_middle_needs_matching_history(self):
        """Hitting mo position w-1 requires h >= 2 (and gets ~1/h)."""
        h1 = hit_count(lambda: staleness_gauge(5, target=4),
                       lambda s: PCTWMScheduler(1, 1, 1, seed=s), 200)
        h2 = hit_count(lambda: staleness_gauge(5, target=4),
                       lambda s: PCTWMScheduler(1, 1, 2, seed=s), 200)
        assert h1 == 0
        assert 50 <= h2 <= 150  # ~50%

    def test_uniform_rf_dilutes_with_writes(self):
        few = hit_count(lambda: staleness_gauge(2, target=0),
                        lambda s: C11TesterScheduler(seed=s), 300)
        many = hit_count(lambda: staleness_gauge(12, target=0),
                         lambda s: C11TesterScheduler(seed=s), 300)
        assert few > many  # the Figure 6 mechanism in isolation

    def test_validation(self):
        with pytest.raises(ValueError):
            staleness_gauge(0)
        with pytest.raises(ValueError):
            staleness_gauge(3, target=9)
