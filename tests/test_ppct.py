"""Tests for the PPCT extension baseline."""

import pytest

from repro.core import PPCTScheduler
from repro.litmus import corr, load_buffering, mp2, store_buffering
from repro.runtime import run_once
from repro.workloads import BENCHMARKS
from tests.helpers import hit_count


class TestPPCT:
    def test_finds_weak_sb(self):
        assert hit_count(store_buffering,
                         lambda s: PPCTScheduler(1, 5, seed=s), 200) > 0

    def test_finds_mp2(self):
        assert hit_count(mp2, lambda s: PPCTScheduler(2, 6, seed=s),
                         400) > 0

    def test_respects_coherence_and_oota(self):
        assert hit_count(corr, lambda s: PPCTScheduler(2, 8, seed=s),
                         200) == 0
        assert hit_count(load_buffering,
                         lambda s: PPCTScheduler(2, 8, seed=s), 200) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PPCTScheduler(-1, 5)
        with pytest.raises(ValueError):
            PPCTScheduler(1, 0)

    def test_reproducible(self):
        a = run_once(mp2(), PPCTScheduler(2, 6, seed=4))
        b = run_once(mp2(), PPCTScheduler(2, 6, seed=4))
        assert a.thread_results == b.thread_results

    def test_runs_all_benchmarks(self):
        for name, info in BENCHMARKS.items():
            result = run_once(info.build(), PPCTScheduler(2, 30, seed=1))
            assert not result.limit_exceeded, name

    def test_demotion_points_count(self):
        sched = PPCTScheduler(depth=4, k_events=20, seed=2)
        run_once(store_buffering(), sched)
        # d-1 = 3 change points were sampled (consumed or not).
        total = len(sched._changes) + len(sched._lowered)
        assert total <= 3
