"""Unit tests for the append-only trial journal (checkpoint/resume)."""

import json

import pytest

from repro.harness import TrialJournal, TrialRecord, load_journal
from repro.harness.checkpoint import JOURNAL_VERSION, check_compatible

META = {"program": "SB", "scheduler": "naive", "base_seed": 3,
        "trials": 20, "max_steps": 20000}


def make_record(index, **kwargs):
    defaults = dict(bug_found=False, limit_exceeded=False, steps=4, k=4,
                    elapsed_s=0.001 * (index + 1))
    defaults.update(kwargs)
    return TrialRecord(index=index, **defaults)


class TestJournalRoundtrip:
    def test_records_roundtrip_exactly(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        records = [
            make_record(0, bug_found=True, elapsed_s=0.123456789012345),
            make_record(1, limit_exceeded=True, operations=7),
            make_record(2, timed_out=True),
            make_record(3, error="RuntimeError: boom @ wl.py:9"),
        ]
        journal = TrialJournal(path)
        assert journal.start(META) == {}
        journal.append(records)
        journal.close()

        header, loaded = load_journal(path)
        assert header["version"] == JOURNAL_VERSION
        assert header["program"] == "SB"
        assert sorted(loaded) == [0, 1, 2, 3]
        for record in records:
            assert loaded[record.index] == record  # exact, floats included

    def test_start_truncates_without_resume(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = TrialJournal(path)
        journal.start(META)
        journal.append([make_record(0)])
        journal.close()
        journal = TrialJournal(path)
        assert journal.start(META) == {}  # fresh run: old records dropped
        journal.close()
        _, loaded = load_journal(path)
        assert loaded == {}

    def test_start_resume_returns_done_records(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = TrialJournal(path)
        journal.start(META)
        journal.append([make_record(0), make_record(5)])
        journal.close()
        journal = TrialJournal(path)
        done = journal.start(META, resume=True)
        assert sorted(done) == [0, 5]
        journal.append([make_record(7)])
        journal.close()
        _, loaded = load_journal(path)
        assert sorted(loaded) == [0, 5, 7]

    def test_resume_missing_file_starts_fresh(self, tmp_path):
        journal = TrialJournal(str(tmp_path / "absent.jsonl"))
        assert journal.start(META, resume=True) == {}
        journal.close()

    def test_append_before_start_raises(self, tmp_path):
        journal = TrialJournal(str(tmp_path / "j.jsonl"))
        with pytest.raises(ValueError):
            journal.append([make_record(0)])


class TestJournalRobustness:
    def test_torn_last_line_is_skipped(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = TrialJournal(path)
        journal.start(META)
        journal.append([make_record(0), make_record(1)])
        journal.close()
        with open(path, "a") as fh:
            fh.write('{"kind": "trial", "index": 2, "bug_fo')  # SIGKILL tear
        header, loaded = load_journal(path)
        assert header is not None
        assert sorted(loaded) == [0, 1]

    def test_garbage_lines_are_skipped(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w") as fh:
            fh.write("not json at all\n")
            fh.write(json.dumps({"kind": "trial", "index": 0,
                                 "bug_found": True, "limit_exceeded": False,
                                 "steps": 4, "k": 4,
                                 "elapsed_s": 0.5}) + "\n")
            fh.write("[1, 2, 3]\n")
        header, loaded = load_journal(path)
        assert header is None
        assert list(loaded) == [0]
        assert loaded[0].bug_found

    def test_duplicate_index_keeps_last(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = TrialJournal(path)
        journal.start(META)
        journal.append([make_record(0, steps=4), make_record(0, steps=9)])
        journal.close()
        _, loaded = load_journal(path)
        assert loaded[0].steps == 9

    def test_missing_file_load(self, tmp_path):
        header, loaded = load_journal(str(tmp_path / "absent.jsonl"))
        assert header is None
        assert loaded == {}


class TestCompatibility:
    def test_matching_meta_passes(self):
        check_compatible(dict(META), dict(META))

    @pytest.mark.parametrize("field,value", [
        ("program", "seqlock"),
        ("scheduler", "pctwm"),
        ("base_seed", 99),
        ("trials", 21),
        ("max_steps", 1),
    ])
    def test_each_field_is_checked(self, field, value):
        header = dict(META)
        header[field] = value
        with pytest.raises(ValueError, match=field):
            check_compatible(header, dict(META))

    def test_header_missing_field_is_tolerated(self):
        header = dict(META)
        del header["max_steps"]  # older journal: absent fields not compared
        check_compatible(header, dict(META))
