"""Tests for parameter estimation and empirical bug-depth search."""

import pytest

from repro.core.depth import empirical_bug_depth, estimate_parameters
from repro.litmus import mp1, mp2, store_buffering
from repro.memory.events import RLX
from repro.litmus import p1


class TestEstimateParameters:
    def test_counts_match_program_shape(self):
        est = estimate_parameters(store_buffering(), runs=3, seed=0)
        # SB: 2 stores + 2 loads = 4 events; the 2 loads are comm events.
        assert est.k == 4
        assert est.k_com == 2

    def test_p1_counts(self):
        est = estimate_parameters(p1(k=5, order=RLX), runs=3, seed=0)
        assert est.k == 6       # 5 stores + 1 load
        assert est.k_com == 1   # only the load

    def test_requires_at_least_one_run(self):
        with pytest.raises(ValueError):
            estimate_parameters(store_buffering(), runs=0)

    def test_estimates_are_positive(self):
        est = estimate_parameters(mp2(), runs=3, seed=1)
        assert est.k >= 1 and est.k_com >= 1


class TestEmpiricalBugDepth:
    def test_sb_has_depth_zero(self):
        assert empirical_bug_depth(store_buffering(), max_depth=2,
                                   trials=20, seed=0) == 0

    def test_mp2_has_depth_two(self):
        assert empirical_bug_depth(mp2(), max_depth=3,
                                   trials=120, seed=0, k_com=3) == 2

    def test_p1_has_depth_one(self):
        assert empirical_bug_depth(p1(k=3, order=RLX), max_depth=2,
                                   trials=40, seed=0, k_com=1) == 1

    def test_bug_free_program_returns_none(self):
        assert empirical_bug_depth(mp1(), max_depth=2,
                                   trials=40, seed=0) is None
