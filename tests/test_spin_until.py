"""Tests for the spin_until DSL helper."""

import pytest

from repro.core import C11TesterScheduler, PCTWMScheduler
from repro.memory.events import ACQ, REL, RLX
from repro.runtime import Program, run_once, spin_until


def make_program(max_spins=60, wait_order=ACQ, set_order=REL):
    p = Program("spin-until")
    flag = p.atomic("FLAG", 0)
    data = p.atomic("DATA", 0)

    def setter():
        yield data.store(5, RLX)
        yield flag.store(1, set_order)

    def waiter():
        got = yield from spin_until(flag, lambda v: v == 1, wait_order,
                                    max_spins=max_spins)
        if got is None:
            return None
        return (yield data.load(RLX))

    p.add_thread(setter)
    p.add_thread(waiter)
    return p


class TestSpinUntil:
    def test_returns_satisfying_value(self):
        for seed in range(20):
            result = run_once(make_program(), C11TesterScheduler(seed=seed))
            assert result.thread_results["waiter"] == 5

    def test_acquire_spin_synchronizes(self):
        """rel/acq through spin_until delivers the data everywhere."""
        for seed in range(30):
            result = run_once(make_program(),
                              PCTWMScheduler(1, 5, 1, seed=seed),
                              spin_threshold=5)
            value = result.thread_results["waiter"]
            assert value in (5, None)
            if value is not None:
                assert value == 5

    def test_starvation_returns_none(self):
        """A tiny bound with d=0 (no communication) starves out."""
        program = make_program(max_spins=3, wait_order=RLX, set_order=RLX)
        result = run_once(program, PCTWMScheduler(0, 5, 1, seed=0),
                          spin_threshold=50)
        assert result.thread_results["waiter"] is None

    def test_invalid_bound(self):
        p = Program("bad")
        flag = p.atomic("F", 0)

        def t():
            yield from spin_until(flag, bool, RLX, max_spins=0)

        p.add_thread(t)
        with pytest.raises(Exception):
            run_once(p, C11TesterScheduler(seed=0))

    def test_predicate_flexibility(self):
        p = Program("pred")
        counter = p.atomic("C", 0)

        def bumper():
            for _ in range(5):
                yield counter.fetch_add(1, RLX)

        def watcher():
            got = yield from spin_until(counter, lambda v: v >= 3, RLX,
                                        max_spins=100)
            return got

        p.add_thread(bumper)
        p.add_thread(watcher)
        result = run_once(p, C11TesterScheduler(seed=2), spin_threshold=4)
        value = result.thread_results["watcher"]
        assert value is None or value >= 3
