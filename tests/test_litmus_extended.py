"""Tests for the extended litmus gallery."""

import pytest

from repro.core import (
    C11TesterScheduler,
    NaiveRandomScheduler,
    PCTScheduler,
    PCTWMScheduler,
    POSScheduler,
)
from repro.litmus import EXTENDED_LITMUS, coww, cowr, isa2, r_shape, wrc
from repro.memory.events import ACQ, REL
from repro.runtime import run_once
from tests.helpers import hit_count

ALL_SCHEDULERS = [
    lambda s: NaiveRandomScheduler(seed=s),
    lambda s: C11TesterScheduler(seed=s),
    lambda s: PCTScheduler(2, 10, seed=s),
    lambda s: PCTWMScheduler(2, 8, 2, seed=s),
    lambda s: POSScheduler(seed=s),
]


class TestGalleryRuns:
    @pytest.mark.parametrize("name", sorted(EXTENDED_LITMUS))
    def test_runs_under_every_scheduler(self, name):
        factory = EXTENDED_LITMUS[name]
        for make in ALL_SCHEDULERS:
            result = run_once(factory(), make(3))
            assert not result.limit_exceeded


class TestCoherenceShapes:
    """CoWW / CoWR are forbidden under every scheduler."""

    @pytest.mark.parametrize("make", ALL_SCHEDULERS)
    def test_coww_never_fires(self, make):
        assert hit_count(coww, make, 150) == 0

    @pytest.mark.parametrize("make", ALL_SCHEDULERS)
    def test_cowr_never_fires(self, make):
        assert hit_count(cowr, make, 150) == 0


class TestCausalityShapes:
    def test_wrc_relaxed_is_weak(self):
        """Relaxed WRC: T3 can see Y=1, X=0 (a depth-2 outcome)."""
        hits = hit_count(wrc,
                         lambda s: PCTWMScheduler(2, 4, 1, seed=s), 400)
        hits += hit_count(wrc, lambda s: C11TesterScheduler(seed=s), 400)
        assert hits > 0

    def test_wrc_fully_synchronized_is_causal(self):
        """With release on both writes and acquire on both observations,
        hb chains from T1's write to T3's read: forbidden everywhere."""
        strong = lambda: wrc(flag_order=REL, observe_order=ACQ,
                             data_order=REL)
        for make in ALL_SCHEDULERS:
            assert hit_count(strong, make, 150) == 0

    def test_wrc_partial_sync_still_weak_axiomatically(self):
        """rel/acq on Y alone does NOT forbid the outcome in C11 (rf on a
        relaxed write gives no hb) — the visibility-based schedulers can
        produce it..."""
        partial = lambda: wrc(flag_order=REL, observe_order=ACQ)
        hits = hit_count(partial, lambda s: C11TesterScheduler(seed=s),
                         600)
        assert hits > 0

    def test_wrc_partial_sync_invisible_to_views_at_h1(self):
        """...but PCTWM's bags are causally cumulative (Algorithm 2 line
        16 carries the source's entry), so at h=1 — where readLocal uses
        the joined view and readGlobal takes the mo-maximal write — the
        view-based scheduler never samples it.  At h >= 2 a selected sink
        may still pick the stale write from its history window, which is
        exactly the axiomatically-legal behaviour."""
        partial = lambda: wrc(flag_order=REL, observe_order=ACQ)
        for d in (1, 2, 3):
            assert hit_count(
                partial, lambda s: PCTWMScheduler(d, 4, 1, seed=s), 150,
            ) == 0

    @pytest.mark.parametrize("make", ALL_SCHEDULERS)
    def test_isa2_chain_never_fails(self, make):
        assert hit_count(isa2, make, 150) == 0


class TestObservationalShapes:
    def test_r_shape_final_state_valid(self):
        for make in ALL_SCHEDULERS:
            result = run_once(r_shape(), make(5))
            final_y = result.graph.mo_max("Y").label.wval
            assert final_y in (1, 2)


class TestCoRR2:
    """Cross-reader coherence: both readers must agree on mo."""

    @pytest.mark.parametrize("make", ALL_SCHEDULERS)
    def test_never_disagree(self, make):
        from repro.litmus import corr2
        assert hit_count(corr2, make, 200) == 0

    def test_exhaustively_safe(self):
        from repro.litmus import corr2
        from repro.modelcheck import explore
        report = explore(corr2, max_executions=30000)
        assert not report.truncated
        assert report.buggy == 0
