"""Tests for preemption-bounded (ICB) systematic exploration."""

import pytest

from repro.litmus import mp1, mp2, p1, store_buffering
from repro.memory.events import RLX
from repro.modelcheck import explore, explore_bounded, preemption_ladder


class TestBoundedExploration:
    def test_ladder_is_monotone(self):
        """Raising the bound never shrinks the explored behaviour set."""
        ladder = preemption_ladder(store_buffering, 3)
        for low, high in zip(range(3), range(1, 4)):
            assert ladder[low].signatures <= ladder[high].signatures
            assert ladder[low].executions <= ladder[high].executions

    def test_converges_to_full_exploration(self):
        full = explore(store_buffering)
        bounded = explore_bounded(store_buffering, preemption_bound=4)
        assert bounded.signatures == full.signatures
        assert bounded.buggy == full.buggy

    def test_weak_bug_reachable_without_preemptions(self):
        """SB's weak outcome needs zero preemptions: it lives in the
        reads-from dimension, not the scheduling dimension — the paper's
        Section 3 point, demonstrated systematically."""
        report = explore_bounded(store_buffering, preemption_bound=0)
        assert report.bug_reachable

    def test_scheduling_bug_needs_no_preemption_either(self):
        """P1's bug only needs the right thread *order* (no preemption
        mid-thread), so bound 0 finds it too."""
        report = explore_bounded(lambda: p1(3, order=RLX),
                                 preemption_bound=0)
        assert report.bug_reachable

    def test_mp1_safe_at_every_bound(self):
        for bound, report in preemption_ladder(mp1, 2).items():
            assert report.buggy == 0, f"bound {bound}"

    def test_mp2_bug_found_within_small_bound(self):
        report = explore_bounded(mp2, preemption_bound=2)
        assert report.bug_reachable
        assert report.witness is not None

    def test_bound_zero_is_serial_schedules_only(self):
        """With no preemptions, the number of schedules collapses to the
        thread orderings (times rf choices)."""
        b0 = explore_bounded(store_buffering, preemption_bound=0)
        full = explore(store_buffering)
        assert b0.executions < full.executions

    def test_budget_truncation_flag(self):
        report = explore_bounded(mp2, preemption_bound=2,
                                 max_executions=2)
        assert report.truncated

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            explore_bounded(store_buffering, preemption_bound=-1)
