"""Validation of the view-coherence design claim.

`PCTWMScheduler._read_local` clamps defensively to the coherence floor
"in case a program mixes paradigms the view does not model (e.g. values
learned through thread join)".  The design claim is that for pure atomic
programs — no joins, no spawns — the clamp NEVER fires: every view join
is accompanied by the corresponding clock join, so the thread view is
always coherence-visible.  This suite instruments the scheduler and
checks the claim over randomized programs and the entire workload suite,
plus one join-based program where the clamp legitimately fires.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PCTWMScheduler
from repro.memory.events import ACQ, ACQ_REL, REL, RLX, SC as SEQ
from repro.runtime import Program, fence, join, run_once
from repro.runtime.scheduler import ReadContext
from repro.workloads import BENCHMARKS


class ClampCountingPCTWM(PCTWMScheduler):
    """PCTWM that counts defensive readLocal clamps."""

    name = "pctwm-counting"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.clamps = 0

    def _read_local(self, view, ctx: ReadContext):
        entry = view.get(ctx.loc)
        floor = ctx.candidates[0]
        if entry.mo_index < floor.mo_index:
            self.clamps += 1
        return super()._read_local(view, ctx)


LOCS = ("X", "Y", "Z")
ORDERS = (RLX, ACQ, REL, ACQ_REL, SEQ)

op_spec = st.one_of(
    st.tuples(st.just("store"), st.sampled_from(LOCS),
              st.integers(0, 3), st.sampled_from(ORDERS)),
    st.tuples(st.just("load"), st.sampled_from(LOCS),
              st.sampled_from(ORDERS)),
    st.tuples(st.just("faa"), st.sampled_from(LOCS),
              st.sampled_from(ORDERS)),
    st.tuples(st.just("fence"), st.sampled_from((ACQ, REL, SEQ))),
)

program_spec = st.lists(st.lists(op_spec, min_size=1, max_size=6),
                        min_size=2, max_size=3)


def build(spec) -> Program:
    p = Program("clamp-check")
    handles = {loc: p.atomic(loc, 0) for loc in LOCS}

    def make_body(ops):
        def body():
            for op in ops:
                if op[0] == "store":
                    yield handles[op[1]].store(op[2], op[3])
                elif op[0] == "load":
                    yield handles[op[1]].load(op[2])
                elif op[0] == "faa":
                    yield handles[op[1]].fetch_add(1, op[2])
                else:
                    yield fence(op[1])

        return body

    for ops in spec:
        p.add_thread(make_body(ops))
    return p


@settings(max_examples=50, deadline=None)
@given(program_spec, st.integers(0, 3), st.integers(1, 4),
       st.integers(0, 500))
def test_clamp_never_fires_on_pure_atomic_programs(spec, depth, history,
                                                   seed):
    scheduler = ClampCountingPCTWM(depth, 10, history, seed=seed)
    run_once(build(spec), scheduler, max_steps=2000)
    assert scheduler.clamps == 0, (
        "view fell below the coherence floor on a pure atomic program"
    )


def test_clamp_never_fires_on_the_benchmark_suite():
    for name, info in BENCHMARKS.items():
        for seed in range(15):
            scheduler = ClampCountingPCTWM(
                info.measured_depth, info.paper_k_com,
                info.best_history, seed=seed,
            )
            run_once(info.build(), scheduler)
            assert scheduler.clamps == 0, name


def test_clamp_fires_with_thread_join():
    """Joins create hb the views do not track: the clamp is the safety
    net that keeps readLocal coherent."""
    p = Program("join-clamp")
    x = p.atomic("X", 0)

    def worker():
        yield x.store(1, RLX)
        yield x.store(2, RLX)

    def waiter():
        yield join("worker")
        # The join raised this thread's coherence floor to X=2, but its
        # PCTWM view still holds the initial write.
        return (yield x.load(RLX))

    p.add_thread(worker)
    p.add_thread(waiter)
    fired = 0
    for seed in range(20):
        scheduler = ClampCountingPCTWM(0, 4, 1, seed=seed)
        result = run_once(p, scheduler)
        fired += scheduler.clamps
        # And the clamp keeps the value coherent: never the stale 0 or 1.
        assert result.thread_results["waiter"] == 2
    assert fired > 0
