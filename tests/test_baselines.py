"""Tests for the C11Tester and naive random baselines."""

from repro.core import C11TesterScheduler, NaiveRandomScheduler
from repro.litmus import corr, load_buffering, mp2, p1, store_buffering
from repro.memory.events import RLX
from tests.helpers import hit_count


class TestNaiveRandom:
    """Section 2.2's naive algorithm: uniform interleavings, SC reads."""

    def test_never_finds_weak_outcomes(self):
        assert hit_count(store_buffering,
                         lambda s: NaiveRandomScheduler(seed=s), 300) == 0

    def test_finds_interleaving_bugs_rarely(self):
        """P1 under SC: naive hits with probability about 1/2^k."""
        hits = hit_count(lambda: p1(k=2),
                         lambda s: NaiveRandomScheduler(seed=s), 600)
        # ~1/8 for k=2 (three scheduling points must favor the writer).
        assert 20 <= hits <= 160

    def test_deeper_interleaving_bugs_get_harder(self):
        shallow = hit_count(lambda: p1(k=1),
                            lambda s: NaiveRandomScheduler(seed=s), 400)
        deep = hit_count(lambda: p1(k=6),
                         lambda s: NaiveRandomScheduler(seed=s), 400)
        assert shallow > deep

    def test_reads_always_latest_visible(self):
        from repro.runtime import run_once
        result = run_once(p1(k=3, order=RLX), NaiveRandomScheduler(seed=4))
        for event in result.graph.events:
            if event.reads_from is None or event.is_rmw:
                continue
            loc_writes = result.graph.writes_by_loc[event.loc]
            later = [w for w in loc_writes
                     if w.mo_index > event.reads_from.mo_index
                     and w.uid < event.uid]
            # Any mo-later write that already existed must have been
            # invisible (which for naive means hb-hidden) — there is none
            # in this unsynchronized program.
            assert not later or all(w.tid == event.tid for w in later)


class TestC11Tester:
    def test_finds_weak_sb_outcome(self):
        hits = hit_count(store_buffering,
                         lambda s: C11TesterScheduler(seed=s), 300)
        assert hits > 100  # uniform over two independent 50% reads

    def test_finds_mp2(self):
        assert hit_count(mp2, lambda s: C11TesterScheduler(seed=s),
                         400) > 0

    def test_never_violates_coherence(self):
        assert hit_count(corr, lambda s: C11TesterScheduler(seed=s),
                         400) == 0

    def test_never_out_of_thin_air(self):
        assert hit_count(load_buffering,
                         lambda s: C11TesterScheduler(seed=s), 400) == 0

    def test_explores_more_than_naive(self):
        """C11Tester samples weak behaviours naive cannot reach."""
        weak = hit_count(store_buffering,
                         lambda s: C11TesterScheduler(seed=s), 200)
        sc_only = hit_count(store_buffering,
                            lambda s: NaiveRandomScheduler(seed=s), 200)
        assert weak > sc_only == 0
