"""Tests for the campaign fast path.

Three contracts:

* **Record-on-failure is invisible.**  ``record_mode="on_failure"``
  (the default) runs trials without a recording scheduler and
  deterministically re-executes failures to capture the trace; the
  artifacts it writes must be byte-identical to ``record_mode="always"``
  for every failure outcome (bug, error, timeout, inconsistent), and a
  re-recorded artifact must still replay.
* **Warm state is invisible.**  A :class:`TrialRunner` reusing its
  scheduler/program/executor/execution-state across trials (registry
  specs declare ``supports_reuse``) must produce trial records identical
  to cold per-trial construction, seed for seed, across all nine
  benchmark workloads and all five schedulers.
* **Bounded aggregation is exact.**  ``CampaignResult.run_times_s`` is a
  capped sample, but the average and RSD are computed from running sums
  and stay exact at any campaign length.
"""

import dataclasses
import math
import os

from repro.core.factory import SchedulerSpec
from repro.harness.artifact import load_artifact, replay_artifact
from repro.harness.campaign import (
    ERROR_SAMPLE_LIMIT,
    RUN_TIME_SAMPLE_LIMIT,
    CampaignAccumulator,
    CampaignResult,
    TrialRecord,
    TrialRunner,
    run_campaign,
)
from repro.memory.events import RLX
from repro.memory.visibility import VisibilityTracker
from repro.runtime.program import Program
from repro.workloads import BENCHMARKS
from repro.workloads.registry import ProgramSpec

MSQUEUE_SPEC = ProgramSpec("msqueue")
PCTWM_SPEC = SchedulerSpec("pctwm", {"depth": 0, "k_com": 31, "history": 1})

SCHEDULER_SPECS = {
    "naive": SchedulerSpec("naive"),
    "c11tester": SchedulerSpec("c11tester"),
    "pct": SchedulerSpec("pct", {"depth": 2, "k_events": 120}),
    "pctwm": SchedulerSpec("pctwm", {"depth": 2, "k_com": 100,
                                     "history": 2}),
    "pos": SchedulerSpec("pos"),
}


def _crashing_program() -> Program:
    p = Program("crasher")
    x = p.atomic("X", 0)

    def t0():
        yield x.store(1, RLX)
        raise RuntimeError("injected workload crash")

    p.add_thread(t0)
    return p


def _store_store_load() -> Program:
    p = Program("ssl")
    x = p.atomic("X", 0)

    def t0():
        yield x.store(1, RLX)
        yield x.store(2, RLX)
        got = yield x.load(RLX)
        return got

    p.add_thread(t0)
    return p


def _artifact_bytes(directory) -> dict:
    out = {}
    for name in sorted(os.listdir(directory)):
        with open(os.path.join(directory, name), "rb") as fh:
            out[name] = fh.read()
    return out


def _campaign_aggregates(result: CampaignResult) -> tuple:
    return (result.trials, result.completed, result.hits, result.errors,
            result.timeouts, result.inconsistent, result.inconclusive,
            result.total_steps, result.total_events,
            result.error_samples, result.violation_samples)


class TestRecordOnFailureIdentity:
    """on_failure artifacts are byte-identical to always-record ones."""

    def _both_modes(self, tmp_path, program_factory, scheduler_factory,
                    trials, **kwargs):
        results = {}
        for mode in ("always", "on_failure"):
            directory = tmp_path / mode
            directory.mkdir()
            results[mode] = run_campaign(
                program_factory, scheduler_factory, trials=trials,
                base_seed=3, artifact_dir=str(directory),
                record_mode=mode, **kwargs)
        assert _campaign_aggregates(results["always"]) == \
            _campaign_aggregates(results["on_failure"])
        always = _artifact_bytes(tmp_path / "always")
        on_failure = _artifact_bytes(tmp_path / "on_failure")
        assert list(always) == list(on_failure)
        for name in always:
            assert always[name] == on_failure[name], name
        return results["on_failure"], on_failure

    def test_bug_outcome(self, tmp_path):
        result, artifacts = self._both_modes(
            tmp_path, MSQUEUE_SPEC, PCTWM_SPEC, trials=10)
        assert result.hits > 0
        assert len(artifacts) == result.hits

    def test_error_outcome(self, tmp_path):
        result, artifacts = self._both_modes(
            tmp_path, _crashing_program, PCTWM_SPEC, trials=2)
        assert result.errors == 2
        assert len(artifacts) == 2

    def test_timeout_outcome(self, tmp_path):
        # trial_timeout_s=0.0 deterministically times out before the
        # first step in both modes (the deadline is checked at step 0),
        # so the re-recorded trace is empty exactly like the live one.
        result, artifacts = self._both_modes(
            tmp_path, ProgramSpec("dekker"), PCTWM_SPEC, trials=2,
            trial_timeout_s=0.0)
        assert result.timeouts == 2
        assert len(artifacts) == 2
        artifact = load_artifact(result.artifacts[0])
        assert artifact.outcome == "timeout"
        assert artifact.steps == 0
        assert len(artifact.trace) == 0

    def test_inconsistent_outcome(self, tmp_path, monkeypatch):
        def evil(self, tid, loc, clock, seq_cst=False):
            return self._graph.writes_by_loc[loc][:1]

        monkeypatch.setattr(VisibilityTracker, "visible_writes", evil)
        result, artifacts = self._both_modes(
            tmp_path, _store_store_load, SchedulerSpec("c11tester"),
            trials=2, sanitize="all")
        assert result.inconsistent == 2
        assert len(artifacts) == 2
        assert load_artifact(result.artifacts[0]).outcome == "inconsistent"

    def test_rerecorded_artifact_replays(self, tmp_path):
        result = run_campaign(
            MSQUEUE_SPEC, PCTWM_SPEC, trials=10, base_seed=3,
            artifact_dir=str(tmp_path), record_mode="on_failure")
        assert result.hits > 0
        artifact = load_artifact(result.artifacts[0])
        assert artifact.outcome == "bug"
        report = replay_artifact(artifact)
        assert report.matched, report.mismatch
        assert report.result.bug_message == artifact.bug_message

    def test_results_match_without_artifacts(self):
        # Even with no artifact dir the two modes must agree on every
        # aggregate: recording wraps the scheduler but consumes no
        # randomness, so first-run outcomes are mode-independent.
        kwargs = dict(trials=12, base_seed=3)
        always = run_campaign(MSQUEUE_SPEC, PCTWM_SPEC,
                              record_mode="always", **kwargs)
        on_failure = run_campaign(MSQUEUE_SPEC, PCTWM_SPEC,
                                  record_mode="on_failure", **kwargs)
        assert _campaign_aggregates(always) == \
            _campaign_aggregates(on_failure)


def _strip_timing(record: TrialRecord) -> dict:
    obj = dataclasses.asdict(record)
    obj.pop("elapsed_s")
    return obj


class TestWarmStateEquivalence:
    """Warm reuse is seed-for-seed identical to cold construction."""

    def test_all_workloads_all_schedulers(self):
        trials = 2
        for workload in BENCHMARKS:
            program_spec = ProgramSpec(workload)
            for name, scheduler_spec in SCHEDULER_SPECS.items():
                # Plain closures never declare supports_reuse, so the
                # cold runner rebuilds everything each trial.
                cold = TrialRunner(
                    (lambda spec=program_spec: spec.build()),
                    (lambda seed, spec=scheduler_spec: spec(seed)),
                    base_seed=7, max_steps=8000)
                warm = TrialRunner(program_spec, scheduler_spec,
                                   base_seed=7, max_steps=8000)
                assert not cold._reuse_scheduler and not cold._reuse_program
                assert warm._reuse_scheduler and warm._reuse_program
                for index in range(trials):
                    a = _strip_timing(cold.run(index))
                    b = _strip_timing(warm.run(index))
                    assert a == b, (workload, name, index)

    def test_warm_runner_matches_run_campaign(self):
        runner = TrialRunner(MSQUEUE_SPEC, PCTWM_SPEC, base_seed=3)
        records = [_strip_timing(runner.run(i)) for i in range(8)]
        result = run_campaign(MSQUEUE_SPEC, PCTWM_SPEC, trials=8,
                              base_seed=3)
        assert sum(1 for r in records if r["bug_found"]) == result.hits
        assert sum(r["steps"] for r in records) == result.total_steps


class TestBoundedAggregation:
    """Sample caps never distort the exact aggregate statistics."""

    @staticmethod
    def _record(index, elapsed, error=None):
        return TrialRecord(index=index, bug_found=False,
                           limit_exceeded=False, steps=5, k=5,
                           elapsed_s=elapsed, error=error)

    def test_run_time_samples_capped_stats_exact(self):
        n = RUN_TIME_SAMPLE_LIMIT + 500
        elapsed = [1.0 + (i % 17) * 0.25 for i in range(n)]
        acc = CampaignAccumulator()
        for i, t in enumerate(elapsed):
            acc.add(self._record(i, t))
        result = CampaignResult(program="p", scheduler="s", trials=n)
        acc.finalize(result)
        assert result.completed == n
        assert len(result.run_times_s) == RUN_TIME_SAMPLE_LIMIT
        assert set(result.run_times_s) <= set(elapsed)
        mean = sum(elapsed) / n
        var = sum((t - mean) ** 2 for t in elapsed) / n
        assert math.isclose(result.avg_run_time_s, mean)
        assert math.isclose(result.run_time_rsd_pct,
                            math.sqrt(var) / mean * 100.0)

    def test_small_campaigns_keep_every_sample(self):
        acc = CampaignAccumulator()
        for i in range(60):
            acc.add(self._record(i, float(i)))
        result = CampaignResult(program="p", scheduler="s", trials=60)
        acc.finalize(result)
        assert result.run_times_s == [float(i) for i in range(60)]

    def test_error_samples_are_first_by_index(self):
        acc = CampaignAccumulator()
        # Fold out of order, as parallel shards do.
        for i in reversed(range(20)):
            acc.add(self._record(i, 0.0, error=f"boom {i}"))
        result = CampaignResult(program="p", scheduler="s", trials=20)
        acc.finalize(result)
        assert result.errors == 20
        assert result.error_samples == \
            [f"trial {i}: boom {i}" for i in range(ERROR_SAMPLE_LIMIT)]

    def test_fold_order_independent(self):
        records = [self._record(i, 0.5 + i * 0.01) for i in range(50)]
        forward, backward = CampaignAccumulator(), CampaignAccumulator()
        for r in records:
            forward.add(r)
        for r in reversed(records):
            backward.add(r)
        a = CampaignResult(program="p", scheduler="s", trials=50)
        b = CampaignResult(program="p", scheduler="s", trials=50)
        forward.finalize(a)
        backward.finalize(b)
        # The retained sample is exactly order-independent; the running
        # sums commute only up to float rounding.
        assert a.run_times_s == b.run_times_s
        assert math.isclose(a.time_sum_s, b.time_sum_s, rel_tol=1e-12)
        assert math.isclose(a.time_sq_sum_s, b.time_sq_sum_s,
                            rel_tol=1e-12)
