"""Tests for the nine Table 1 data-structure benchmarks.

For each benchmark: it builds and runs under every scheduler, its bug is
invisible below the measured depth and reachable at it, and its generated
executions satisfy the consistency axioms.
"""

import pytest

from repro.core import C11TesterScheduler, PCTWMScheduler
from repro.core.depth import estimate_parameters
from repro.memory.axioms import is_consistent
from repro.runtime import run_once
from repro.workloads import BENCHMARKS, BENCHMARK_ORDER
from tests.helpers import hit_count

#: Trials for statistical assertions (kept modest; benches go bigger).
TRIALS = 150


@pytest.fixture(params=BENCHMARK_ORDER)
def info(request):
    return BENCHMARKS[request.param]


class TestBenchmarkBasics:
    def test_registry_is_complete(self):
        assert BENCHMARK_ORDER == [
            "dekker", "msqueue", "barrier", "cldeque", "mcslock",
            "mpmcqueue", "linuxrwlocks", "rwlock", "seqlock",
        ]

    def test_builds_a_fresh_program(self, info):
        a = info.build()
        b = info.build()
        assert a is not b
        assert a.name == info.name

    def test_runs_under_c11tester(self, info):
        result = run_once(info.build(), C11TesterScheduler(seed=0))
        assert result.steps > 0
        assert not result.limit_exceeded

    def test_runs_under_pctwm(self, info):
        result = run_once(
            info.build(),
            PCTWMScheduler(info.measured_depth, info.paper_k_com,
                           info.best_history, seed=0),
        )
        assert result.steps > 0
        assert not result.limit_exceeded

    def test_races_not_counted_as_bugs(self, info):
        assert not info.build().races_are_bugs

    def test_generated_executions_are_consistent(self, info):
        for seed in range(5):
            result = run_once(info.build(), C11TesterScheduler(seed=seed))
            assert is_consistent(result.graph), info.name

    def test_inserted_writes_accepted(self, info):
        result = run_once(info.build(inserted_writes=3),
                          C11TesterScheduler(seed=0))
        assert result.steps > 0


class TestBugDepths:
    def kcom(self, info):
        return estimate_parameters(info.build(), runs=3, seed=0).k_com

    @pytest.mark.parametrize("name", [
        n for n in BENCHMARK_ORDER if BENCHMARKS[n].measured_depth > 0
    ])
    def test_invisible_below_measured_depth(self, name):
        info = BENCHMARKS[name]
        k_com = self.kcom(info)
        depth = info.measured_depth - 1
        hits = hit_count(
            info.build,
            lambda s: PCTWMScheduler(depth, k_com, info.best_history,
                                     seed=s),
            60,
        )
        assert hits == 0, f"{name} hit below its measured depth"

    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_reachable_at_measured_depth(self, name):
        info = BENCHMARKS[name]
        k_com = self.kcom(info)
        trials = TRIALS if info.measured_depth < 3 else 4 * TRIALS
        hits = hit_count(
            info.build,
            lambda s: PCTWMScheduler(info.measured_depth, k_com,
                                     info.best_history, seed=s),
            trials,
        )
        assert hits > 0, f"{name} unreachable at its measured depth"

    def test_depth_zero_benchmarks_hit_always(self):
        for name in ("dekker", "msqueue"):
            info = BENCHMARKS[name]
            k_com = self.kcom(info)
            hits = hit_count(
                info.build,
                lambda s: PCTWMScheduler(0, k_com, 1, seed=s), 50,
            )
            assert hits == 50, f"{name} must hit on every d=0 run"


class TestShapeClaims:
    """The headline comparative claims of Figure 5, at test scale."""

    def kcom(self, info):
        return estimate_parameters(info.build(), runs=3, seed=0).k_com

    @pytest.mark.parametrize("name", [
        "dekker", "msqueue", "barrier", "cldeque", "mpmcqueue",
        "linuxrwlocks", "rwlock",
    ])
    def test_pctwm_beats_or_matches_c11tester(self, name):
        info = BENCHMARKS[name]
        k_com = self.kcom(info)
        c11 = hit_count(info.build,
                        lambda s: C11TesterScheduler(seed=s), TRIALS)
        best_wm = max(
            hit_count(
                info.build,
                lambda s: PCTWMScheduler(d, k_com, info.best_history,
                                         seed=s),
                TRIALS,
            )
            for d in (info.measured_depth, info.measured_depth + 1)
        )
        # Allow statistical slack: PCTWM must not lose by more than a
        # few trials on its best configuration.
        assert best_wm >= c11 - TRIALS // 10, (
            f"{name}: pctwm {best_wm} vs c11tester {c11}"
        )

    def test_seqlock_is_the_exception(self):
        """Section 6.2: the wait-loop benchmark favors random testing."""
        info = BENCHMARKS["seqlock"]
        k_com = self.kcom(info)
        c11 = hit_count(info.build,
                        lambda s: C11TesterScheduler(seed=s), TRIALS)
        wm = hit_count(
            info.build,
            lambda s: PCTWMScheduler(info.measured_depth, k_com,
                                     info.best_history, seed=s),
            TRIALS,
        )
        assert c11 > wm
