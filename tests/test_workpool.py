"""Tests for the work-pool extension application (spawn + dynamic workers)."""

import pytest

from repro.core import (
    C11TesterScheduler,
    NaiveRandomScheduler,
    PCTScheduler,
    PCTWMScheduler,
    POSScheduler,
)
from repro.runtime import run_once
from repro.workloads.apps import EXTENSION_APPLICATIONS, workpool

SCHEDULERS = [
    lambda s: NaiveRandomScheduler(seed=s),
    lambda s: C11TesterScheduler(seed=s),
    lambda s: PCTScheduler(2, 80, seed=s),
    lambda s: PCTWMScheduler(2, 40, 2, seed=s),
    lambda s: POSScheduler(seed=s),
]


class TestWorkpool:
    def test_registered_as_extension_app(self):
        assert EXTENSION_APPLICATIONS["workpool"] is workpool

    @pytest.mark.parametrize("make", SCHEDULERS)
    def test_buggy_variant_races(self, make):
        raced = sum(
            bool(run_once(workpool(), make(seed), keep_graph=False,
                          max_steps=100000).races)
            for seed in range(15)
        )
        assert raced >= 14  # essentially every run

    @pytest.mark.parametrize("make", SCHEDULERS)
    def test_fixed_variant_is_race_free(self, make):
        for seed in range(15):
            result = run_once(workpool(fixed=True), make(seed),
                              keep_graph=False, max_steps=100000)
            assert not result.races, seed
            assert not result.limit_exceeded

    def test_fixed_variant_computes_correct_total(self):
        """Whenever the workers drain the queue, the sum is exact."""
        expected = sum(10 + i for i in range(6))  # tasks=6 payloads
        seen_full_run = False
        for seed in range(40):
            result = run_once(workpool(fixed=True),
                              C11TesterScheduler(seed=seed),
                              max_steps=100000)
            completed, total = result.thread_results["pool"]
            if completed == 6:
                assert total == expected
                seen_full_run = True
        assert seen_full_run

    def test_buggy_variant_loses_payloads(self):
        """The racy pool misreads at least one payload in some run."""
        expected = sum(10 + i for i in range(6))
        for seed in range(40):
            result = run_once(workpool(), C11TesterScheduler(seed=seed),
                              max_steps=100000)
            completed, total = result.thread_results["pool"]
            if completed == 6 and total != expected:
                return
        pytest.fail("racy pool never misread a payload in 40 runs")

    def test_scales_with_parameters(self):
        small = run_once(workpool(workers=1, tasks=2),
                         C11TesterScheduler(seed=0), max_steps=100000)
        large = run_once(workpool(workers=3, tasks=10),
                         C11TesterScheduler(seed=0), max_steps=100000)
        assert large.k > small.k
