"""Tests for campaigns, statistics, and table/figure generation."""

import pytest

from repro.harness import (
    c11tester_factory,
    figure5,
    figure6,
    mean,
    naive_factory,
    pct_factory,
    pctwm_factory,
    relative_stdev_pct,
    render_figure5,
    render_figure6,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    run_campaign,
    stdev,
    table1,
    table2,
    table3,
    table4,
    wilson_interval,
)
from repro.litmus import store_buffering


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stdev_constant_is_zero(self):
        assert stdev([5, 5, 5]) == 0

    def test_rsd(self):
        assert relative_stdev_pct([5, 5, 5]) == 0
        assert relative_stdev_pct([0, 0]) == 0
        assert relative_stdev_pct([1, 3]) == pytest.approx(50.0)

    def test_wilson_contains_point_estimate(self):
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high

    def test_wilson_extremes(self):
        low, high = wilson_interval(0, 100)
        assert low == 0.0 and high < 0.1
        low, high = wilson_interval(100, 100)
        assert low > 0.9 and high == pytest.approx(1.0)

    def test_wilson_narrower_with_more_trials(self):
        low_small, high_small = wilson_interval(5, 10)
        low_big, high_big = wilson_interval(500, 1000)
        assert (high_big - low_big) < (high_small - low_small)

    def test_wilson_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)


class TestCampaign:
    def test_aggregates_hits(self):
        result = run_campaign(store_buffering, pctwm_factory(0, 4, 1),
                              trials=20)
        assert result.trials == 20
        assert result.hits == 20
        assert result.hit_rate == 100.0

    def test_records_timing(self):
        result = run_campaign(store_buffering, c11tester_factory(),
                              trials=10)
        assert result.elapsed_s > 0
        assert len(result.run_times_s) == 10
        assert result.avg_time_ms > 0

    def test_seeds_make_it_deterministic(self):
        a = run_campaign(store_buffering, c11tester_factory(), trials=30,
                         base_seed=5)
        b = run_campaign(store_buffering, c11tester_factory(), trials=30,
                         base_seed=5)
        assert a.hits == b.hits

    def test_trials_validation(self):
        with pytest.raises(ValueError):
            run_campaign(store_buffering, naive_factory(), trials=0)

    def test_operation_counting(self):
        result = run_campaign(
            store_buffering, naive_factory(), trials=5,
            count_operations=lambda run: run.k,
        )
        assert result.operations == 5 * 4  # SB has 4 events per run

    def test_factories_produce_named_schedulers(self):
        assert pctwm_factory(1, 5, 2)(0).name == "pctwm"
        assert pct_factory(1, 5)(0).name == "pct"
        assert c11tester_factory()(0).name == "c11tester"
        assert naive_factory()(0).name == "naive"


class TestTables:
    def test_table1_rows(self):
        rows = table1(estimation_runs=2)
        assert len(rows) == 9
        for row in rows:
            assert row.measured_k >= 1
            assert row.measured_k_com >= 1
        text = render_table1(rows)
        assert "dekker" in text and "seqlock" in text

    def test_table2_structure(self):
        rows = table2(trials=10, histories=(1,), offsets=(0, 1),
                      benchmarks=["dekker"])
        assert len(rows) == 1
        row = rows[0]
        assert set(row.rates) == {0, 1}
        assert render_table2(rows)

    def test_table3_structure(self):
        rows = table3(trials=10, histories=(1, 2), benchmarks=["barrier"])
        assert set(rows[0].rates) == {1, 2}
        assert "barrier" in render_table3(rows)

    def test_table4_structure(self):
        rows = table4(runs=2)
        assert len(rows) == 6  # 3 apps x {single, multiple}
        apps = {r.application for r in rows}
        assert apps == {"iris", "mabain", "silo"}
        silo_rows = [r for r in rows if r.application == "silo"]
        assert all(r.metric == "ops/sec" for r in silo_rows)
        assert all(r.c11tester_races == 2 for r in rows)
        assert "iris" in render_table4(rows)


class TestFigures:
    def test_figure5_structure(self):
        bars = figure5(trials=10, benchmarks=["dekker"],
                       pct_depths=(1,), histories=(1,),
                       pctwm_depth_offsets=(0,))
        assert len(bars) == 1
        assert bars[0].pctwm == 100.0  # dekker d=0 always hits
        assert "dekker" in render_figure5(bars)

    def test_figure6_structure(self):
        series = figure6(trials=10, insert_counts=(0, 2),
                         benchmarks=["dekker"])
        s = series["dekker"]
        assert s.inserted == [0, 2]
        assert len(s.pctwm) == 2
        assert "dekker" in render_figure6(series)

    def test_figure6_defaults_to_paper_subset(self):
        series = figure6(trials=2, insert_counts=(0,))
        assert set(series) == {"dekker", "cldeque", "mpmcqueue", "rwlock"}


class TestSignificance:
    def test_z_positive_when_a_better(self):
        from repro.harness import two_proportion_z
        assert two_proportion_z(90, 100, 50, 100) > 0
        assert two_proportion_z(50, 100, 90, 100) < 0

    def test_z_zero_for_equal_rates(self):
        from repro.harness import two_proportion_z
        assert abs(two_proportion_z(50, 100, 50, 100)) < 1e-9

    def test_degenerate_pools(self):
        from repro.harness import two_proportion_z
        assert two_proportion_z(0, 100, 0, 100) == 0.0
        assert two_proportion_z(100, 100, 100, 100) == 0.0

    def test_significantly_greater(self):
        from repro.harness import significantly_greater
        assert significantly_greater(95, 100, 40, 100)
        assert not significantly_greater(52, 100, 50, 100)

    def test_validation(self):
        from repro.harness import two_proportion_z
        with pytest.raises(ValueError):
            two_proportion_z(1, 0, 1, 10)
        with pytest.raises(ValueError):
            two_proportion_z(11, 10, 1, 10)

    def test_headline_claim_is_significant(self):
        """PCTWM vs C11Tester on dekker: significant at modest trials."""
        from repro.harness import (
            c11tester_factory,
            pctwm_factory,
            run_campaign,
            significantly_greater,
        )
        from repro.workloads import BENCHMARKS
        build = BENCHMARKS["dekker"].build
        wm = run_campaign(build, pctwm_factory(0, 5, 1), trials=80)
        c11 = run_campaign(build, c11tester_factory(), trials=80)
        assert significantly_greater(wm.hits, wm.trials,
                                     c11.hits, c11.trials)
