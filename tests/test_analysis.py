"""Tests for execution analysis: traces, DOT dumps, audits."""

import pytest

from repro.analysis import (
    audit_graph,
    audit_run,
    count_external_reads,
    format_event,
    format_trace,
    to_dot,
)
from repro.core import C11TesterScheduler, PCTWMScheduler
from repro.litmus import mp1, mp2, store_buffering
from repro.runtime import run_once


class TestFormatting:
    def test_format_event_kinds(self):
        result = run_once(mp1(), C11TesterScheduler(seed=0))
        rendered = [format_event(e) for e in result.graph.events]
        assert any(r.startswith("W(") for r in rendered)
        assert any(r.startswith("R(") for r in rendered)
        assert any(r.startswith("F(") for r in rendered)

    def test_trace_shows_rf_provenance(self):
        result = run_once(store_buffering(), C11TesterScheduler(seed=0))
        text = format_trace(result.graph)
        assert "rf <-" in text
        assert "init" in text

    def test_trace_hides_init_by_default(self):
        result = run_once(store_buffering(), C11TesterScheduler(seed=0))
        assert "tinit" not in format_trace(result.graph)
        with_init = format_trace(result.graph, include_init=True)
        assert len(with_init.splitlines()) \
            > len(format_trace(result.graph).splitlines())

    def test_dot_output_wellformed(self):
        result = run_once(mp2(), C11TesterScheduler(seed=0))
        dot = to_dot(result.graph)
        assert dot.startswith("digraph execution {")
        assert dot.rstrip().endswith("}")
        assert 'label="rf"' in dot
        assert 'label="mo"' in dot


class TestAudit:
    def test_generated_runs_are_consistent(self):
        for seed in range(10):
            result = run_once(mp2(), C11TesterScheduler(seed=seed))
            report = audit_run(result)
            assert report.consistent, report.violations

    def test_audit_counts_communication(self):
        # MP2's buggy execution has exactly 2 com sinks (e2 and e4).
        for seed in range(400):
            result = run_once(mp2(), PCTWMScheduler(2, 3, 1, seed=seed))
            if result.bug_found:
                report = audit_run(result)
                assert report.communication_edges >= 2
                return
        pytest.fail("no buggy MP2 execution found")

    def test_audit_requires_graph(self):
        result = run_once(mp2(), C11TesterScheduler(seed=0),
                          keep_graph=False)
        with pytest.raises(ValueError):
            audit_run(result)

    def test_external_reads_zero_at_d0(self):
        result = run_once(store_buffering(), PCTWMScheduler(0, 4, 1, seed=0))
        assert count_external_reads(result.graph) == 0

    def test_external_reads_counts_cross_thread_rf(self):
        result = run_once(mp2(), PCTWMScheduler(2, 3, 1, seed=6))
        graph = result.graph
        manual = sum(
            1 for e in graph.events
            if e.reads_from is not None and not e.reads_from.is_init
            and e.reads_from.tid != e.tid
        )
        assert count_external_reads(graph) == manual

    def test_audit_graph_event_count(self):
        result = run_once(store_buffering(), C11TesterScheduler(seed=1))
        report = audit_graph(result.graph)
        assert report.events == result.graph.size
