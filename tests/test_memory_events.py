"""Unit tests for events, memory orders, and vector clocks."""

import pytest

from repro.memory.events import (
    ACQ,
    ACQ_REL,
    Event,
    EventKind,
    INIT_TID,
    Label,
    MemoryOrder,
    NA,
    REL,
    RLX,
    SC,
    clock_join,
    clock_leq,
    happens_before,
)


class TestMemoryOrder:
    def test_acquire_family(self):
        assert ACQ.is_acquire
        assert ACQ_REL.is_acquire
        assert SC.is_acquire
        assert not REL.is_acquire
        assert not RLX.is_acquire
        assert not NA.is_acquire

    def test_release_family(self):
        assert REL.is_release
        assert ACQ_REL.is_release
        assert SC.is_release
        assert not ACQ.is_release
        assert not RLX.is_release
        assert not NA.is_release

    def test_seq_cst(self):
        assert SC.is_seq_cst
        assert not any(
            o.is_seq_cst for o in (NA, RLX, ACQ, REL, ACQ_REL)
        )

    def test_atomicity_flag(self):
        assert not NA.is_atomic
        assert all(o.is_atomic for o in (RLX, ACQ, REL, ACQ_REL, SC))

    def test_strength_ordering(self):
        assert NA < RLX < ACQ < REL < ACQ_REL < SC


def make_event(uid=0, tid=0, kind=EventKind.WRITE, order=RLX, loc="X",
               rval=None, wval=None, clock=()):
    e = Event(uid=uid, tid=tid,
              label=Label(kind, order, loc, rval=rval, wval=wval))
    e.clock = clock
    return e


class TestEventPredicates:
    def test_read_includes_rmw(self):
        assert make_event(kind=EventKind.READ).is_read
        assert make_event(kind=EventKind.RMW).is_read
        assert not make_event(kind=EventKind.WRITE).is_read
        assert not make_event(kind=EventKind.FENCE, loc=None).is_read

    def test_write_includes_rmw(self):
        assert make_event(kind=EventKind.WRITE).is_write
        assert make_event(kind=EventKind.RMW).is_write
        assert not make_event(kind=EventKind.READ).is_write

    def test_fence_kinds(self):
        acq_fence = make_event(kind=EventKind.FENCE, order=ACQ, loc=None)
        rel_fence = make_event(kind=EventKind.FENCE, order=REL, loc=None)
        sc_fence = make_event(kind=EventKind.FENCE, order=SC, loc=None)
        assert acq_fence.is_acquire_fence and not acq_fence.is_release_fence
        assert rel_fence.is_release_fence and not rel_fence.is_acquire_fence
        assert sc_fence.is_acquire_fence and sc_fence.is_release_fence

    def test_init_flag(self):
        assert make_event(tid=INIT_TID).is_init
        assert not make_event(tid=0).is_init

    def test_sc_flag(self):
        assert make_event(order=SC).is_sc
        assert not make_event(order=RLX).is_sc

    def test_identity_not_structural(self):
        a = make_event(uid=1)
        b = make_event(uid=1)
        assert a != b  # dataclass with eq=False: identity semantics


class TestClocks:
    def test_leq_reflexive(self):
        assert clock_leq((1, 2, 3), (1, 2, 3))

    def test_leq_pointwise(self):
        assert clock_leq((1, 2), (1, 3))
        assert not clock_leq((2, 2), (1, 3))

    def test_leq_ragged_lengths(self):
        assert clock_leq((1,), (1, 5))
        assert clock_leq((1, 0, 0), (1, 0))
        assert not clock_leq((1, 0, 1), (1, 0))

    def test_join_pointwise_max(self):
        assert clock_join((1, 5), (3, 2)) == (3, 5)

    def test_join_ragged(self):
        assert clock_join((1,), (0, 4)) == (1, 4)
        assert clock_join((0, 4), (1,)) == (1, 4)

    def test_join_commutative(self):
        a, b = (2, 0, 7), (1, 9)
        assert clock_join(a, b) == clock_join(b, a)


class TestHappensBefore:
    def test_init_before_everything(self):
        init = make_event(uid=0, tid=INIT_TID)
        later = make_event(uid=5, tid=0, clock=(1,))
        assert happens_before(init, later)
        assert not happens_before(later, init)

    def test_init_order_among_inits(self):
        i1 = make_event(uid=0, tid=INIT_TID)
        i2 = make_event(uid=1, tid=INIT_TID)
        assert happens_before(i1, i2)
        assert not happens_before(i2, i1)

    def test_same_thread_program_order(self):
        a = make_event(uid=1, tid=0, clock=(1, 0))
        b = make_event(uid=2, tid=0, clock=(2, 0))
        assert happens_before(a, b)
        assert not happens_before(b, a)

    def test_unsynchronized_cross_thread(self):
        a = make_event(uid=1, tid=0, clock=(1, 0))
        b = make_event(uid=2, tid=1, clock=(0, 1))
        assert not happens_before(a, b)
        assert not happens_before(b, a)

    def test_synchronized_cross_thread(self):
        a = make_event(uid=1, tid=0, clock=(1, 0))
        b = make_event(uid=2, tid=1, clock=(1, 1))  # joined a's clock
        assert happens_before(a, b)
        assert not happens_before(b, a)

    def test_irreflexive(self):
        a = make_event(uid=1, tid=0, clock=(1,))
        assert not happens_before(a, a)


class TestLabel:
    def test_fence_label_fields(self):
        lab = Label(EventKind.FENCE, ACQ)
        assert lab.loc is None and lab.rval is None and lab.wval is None

    def test_label_is_frozen(self):
        lab = Label(EventKind.WRITE, RLX, "X", wval=1)
        with pytest.raises(AttributeError):
            lab.wval = 2
